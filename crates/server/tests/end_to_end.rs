//! End-to-end tests of the naplet space: whole journeys through the
//! discrete-event runtime, covering migration, directory modes, the
//! post-office protocol, security denials, resource control and
//! strong-mobility VM agents.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Guard, Itinerary, Pattern};
use naplet_core::message::{ControlVerb, Payload};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel, TrafficClass};
use naplet_server::{
    LocationMode, Matcher, MonitorPolicy, NapletStatus, Permission, Policy, RunState,
    SecurityManager, ServerConfig, SimRuntime,
};

const CODEBASE: &str = "naplet://code/collector.jar";
const CODE_SIZE: u64 = 4096;

/// Collector behaviour: appends the current host to state["visits"],
/// drains its mailbox into state["inbox"], and optionally flags
/// state["found"] when it reaches state["target"].
struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host.clone()));
        ctx.state().set("visits", Value::List(visits));

        let mut inbox = match ctx.state().get("inbox") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        while let Some(m) = ctx.get_message()? {
            if let Payload::User(v) = m.payload {
                inbox.push(v);
            }
        }
        ctx.state().set("inbox", Value::List(inbox));

        if let Ok(target) = ctx.state().get("target").as_str().map(str::to_string) {
            if target == host {
                ctx.state().set("found", true);
            }
        }
        Ok(())
    }

    fn on_interrupt(&mut self, ctx: &mut dyn NapletContext, verb: &ControlVerb) -> Result<()> {
        if let ControlVerb::Callback = verb {
            let visits = ctx.state().get("visits");
            ctx.report_home(Value::map([("callback", visits)]))?;
        }
        Ok(())
    }
}

fn registry() -> CodebaseRegistry {
    let mut r = CodebaseRegistry::new();
    r.register(CODEBASE, CODE_SIZE, || Collector);
    r
}

fn key() -> SigningKey {
    SigningKey::new("czxu", b"campus-secret")
}

/// Build a world: home server + n worker servers s0..s(n-1).
fn world(mode: LocationMode, n: usize) -> SimRuntime {
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), 42);
    let mut rt = SimRuntime::new(fabric);
    let reg = registry();
    let mk = |host: &str| {
        let mut cfg = ServerConfig::open(host, mode.clone());
        cfg.codebase = reg.clone();
        cfg
    };
    rt.add_server(mk("home"));
    for i in 0..n {
        let cfg = mk(&format!("s{i}"));
        rt.add_server(cfg);
    }
    rt
}

fn hosts(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("s{i}")).collect()
}

fn make_naplet(itinerary: Itinerary, ts: u64) -> Naplet {
    Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(ts),
        CODEBASE,
        AgentKind::Native,
        itinerary,
        vec![("role".into(), "test".into())],
    )
    .unwrap()
}

fn visits_from_report(report: &Value) -> Vec<String> {
    report
        .get("visits")
        .as_list()
        .unwrap_or(&[])
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect()
}

// ===========================================================================
// journeys
// ===========================================================================

#[test]
fn sequential_journey_visits_in_order_and_reports_home() {
    for mode in [
        LocationMode::CentralDirectory("home".into()),
        LocationMode::HomeManagers,
        LocationMode::ForwardingTrace,
    ] {
        let mut rt = world(mode.clone(), 3);
        let hs = hosts(3);
        let refs: Vec<&str> = hs.iter().map(String::as_str).collect();
        let it = Itinerary::new(Pattern::seq_of_hosts(&refs, None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        rt.launch(make_naplet(it, 1)).unwrap();
        rt.run_to_quiescence(100_000);

        let reports = rt.drain_reports("home");
        assert_eq!(reports.len(), 1, "mode {mode:?}");
        assert_eq!(visits_from_report(&reports[0].1), hs, "mode {mode:?}");

        // home learned about completion
        let entry = rt
            .server("home")
            .unwrap()
            .manager
            .table_entry(&reports[0].0)
            .unwrap();
        assert_eq!(entry.status, NapletStatus::Completed, "mode {mode:?}");
    }
}

#[test]
fn parallel_broadcast_spawns_clones_that_each_report() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 4);
    let hs = hosts(4);
    let refs: Vec<&str> = hs.iter().map(String::as_str).collect();
    let it = Itinerary::new(Pattern::par_singletons(&refs, Some(ActionSpec::ReportHome))).unwrap();
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 4);
    let mut seen: Vec<String> = reports
        .iter()
        .flat_map(|(_, r)| visits_from_report(r))
        .collect();
    seen.sort();
    assert_eq!(seen, hs);
    // 4 distinct agents: the original + 3 clones
    let ids: std::collections::HashSet<_> = reports.iter().map(|(id, _)| id.clone()).collect();
    assert_eq!(ids.len(), 4);
    // heritage marks the clones
    let originals = ids.iter().filter(|id| id.is_original()).count();
    assert_eq!(originals, 1);
}

#[test]
fn conditional_search_stops_when_found() {
    let mut rt = world(LocationMode::ForwardingTrace, 5);
    let hs = hosts(5);
    let refs: Vec<&str> = hs.iter().map(String::as_str).collect();
    let keep_going = Guard::not(Guard::state_truthy("found"));
    let it = Itinerary::new(Pattern::conditional_route(&refs, keep_going))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut naplet = make_naplet(it, 1);
    naplet.state.set("target", "s2");
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    // stopped at s2: s3, s4 never visited
    assert_eq!(visits_from_report(&reports[0].1), ["s0", "s1", "s2"]);
}

#[test]
fn example3_par_of_seqs() {
    // paper Example 3: par(seq(s0,s1), seq(s2,s3))
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 4);
    let p = Pattern::par(vec![
        Pattern::seq_of_hosts(&["s0", "s1"], None),
        Pattern::seq_of_hosts(&["s2", "s3"], None),
    ]);
    let it = Itinerary::new(p)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    // the originator reports (final action); the clone has none
    assert_eq!(reports.len(), 1);
    assert_eq!(visits_from_report(&reports[0].1), ["s0", "s1"]);
    // but both agents completed: check clone status at home
    let launched = rt.server("home").unwrap().manager.launched().len();
    assert_eq!(launched, 2); // original + clone (clone recorded at fork host = home)
}

// ===========================================================================
// messaging
// ===========================================================================

#[test]
fn owner_message_chases_moving_naplet_and_is_delivered() {
    let mut rt = world(LocationMode::ForwardingTrace, 4);
    let hs = hosts(4);
    let refs: Vec<&str> = hs.iter().map(String::as_str).collect();
    let it = Itinerary::new(Pattern::seq_of_hosts(&refs, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = make_naplet(it, 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();

    // let it get underway, then post from the owner at home
    rt.run_until(Millis(8));
    rt.owner_post(
        "home",
        id.clone(),
        Payload::User(Value::from("hello agent")),
    )
    .unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    let inbox = reports[0].1.get("inbox");
    let got: Vec<&Value> = inbox.as_list().unwrap().iter().collect();
    assert!(
        got.iter().any(|v| **v == Value::from("hello agent")),
        "message should have chased the naplet: {inbox}"
    );
}

#[test]
fn early_message_waits_in_special_mailbox() {
    // directory mode; message posted the instant the naplet launches,
    // while it is still in transit — the target server stashes it
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 1);
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = make_naplet(it, 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    // immediately: naplet still doing the landing handshake
    rt.owner_post("home", id, Payload::User(Value::from("early bird")))
        .unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    let inbox = reports[0].1.get("inbox");
    assert!(
        inbox
            .as_list()
            .unwrap()
            .contains(&Value::from("early bird")),
        "early message should be delivered on arrival: {inbox}"
    );
}

#[test]
fn callback_control_triggers_on_interrupt() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 2);
    // long dwell so the control message reaches the naplet in place
    rt.server_mut("s0")
        .unwrap()
        .monitor
        .set_policy(MonitorPolicy {
            native_dwell_ms: 500,
            ..MonitorPolicy::default()
        });
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None)).unwrap();
    let naplet = make_naplet(it, 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();

    rt.run_until(Millis(100)); // resident at s0, dwelling
    rt.owner_post("home", id, Payload::System(ControlVerb::Callback))
        .unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert!(
        reports.iter().any(|(_, r)| r.get("callback") != Value::Nil),
        "callback report expected; got {reports:?}"
    );
}

#[test]
fn terminate_control_destroys_and_notifies_home() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 2);
    rt.server_mut("s0")
        .unwrap()
        .monitor
        .set_policy(MonitorPolicy {
            native_dwell_ms: 500,
            ..MonitorPolicy::default()
        });
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = make_naplet(it, 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();

    rt.run_until(Millis(100));
    rt.owner_post("home", id.clone(), Payload::System(ControlVerb::Terminate))
        .unwrap();
    rt.run_to_quiescence(100_000);

    // never reached the final report
    assert!(rt.drain_reports("home").is_empty());
    let entry = rt.server("home").unwrap().manager.table_entry(&id).unwrap();
    assert_eq!(entry.status, NapletStatus::Destroyed);
}

#[test]
fn suspend_then_resume_completes_journey() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 2);
    rt.server_mut("s0")
        .unwrap()
        .monitor
        .set_policy(MonitorPolicy {
            native_dwell_ms: 200,
            ..MonitorPolicy::default()
        });
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = make_naplet(it, 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();

    rt.run_until(Millis(50)); // dwelling at s0 until ~200
    rt.owner_post("home", id.clone(), Payload::System(ControlVerb::Suspend))
        .unwrap();
    rt.run_until(Millis(2_000)); // dwell long past; still suspended
    {
        let s0 = rt.server("s0").unwrap();
        let entry = s0
            .monitor
            .get(&id)
            .expect("suspended naplet stays resident");
        assert_eq!(entry.state, RunState::Suspended);
    }
    rt.owner_post("home", id, Payload::System(ControlVerb::Resume))
        .unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    assert_eq!(visits_from_report(&reports[0].1), ["s0", "s1"]);
}

// ===========================================================================
// security & resources
// ===========================================================================

#[test]
fn landing_denied_skips_visit() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 3);
    // s1 refuses all landings
    let mut deny = Policy::deny_all();
    deny.add_rule(
        Matcher::any(),
        [Permission::Launch, Permission::Clone, Permission::Messaging],
    );
    rt.server_mut("s1").unwrap().security_mut().set_policy(deny);

    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1", "s2"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    // s1 was skipped (landing denied); journey continued
    assert_eq!(visits_from_report(&reports[0].1), ["s0", "s2"]);
    // the denial shows up in s1's log
    let s1_log = &rt.server("s1").unwrap().log;
    assert!(s1_log.iter().any(|l| l.line.contains("deny")));
}

#[test]
fn unverifiable_credential_rejected_at_landing() {
    let mut rt = world(LocationMode::ForwardingTrace, 1);
    // s0 requires known principals and trusts only "czxu"
    let strict = SecurityManager::new(Policy::allow_all(), vec![key()], true);
    *rt.server_mut("s0").unwrap().security_mut() = strict;

    // a naplet signed by an unknown principal
    let mallory = SigningKey::new("mallory", b"whatever");
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = Naplet::create(
        &mallory,
        "mallory",
        "home",
        Millis(1),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    // denied at landing; visit skipped, report comes from home with no visits
    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    assert!(visits_from_report(&reports[0].1).is_empty());
}

#[test]
fn max_residents_cap_denies_landing() {
    let mut rt = world(LocationMode::ForwardingTrace, 1);
    // allow only 0 residents: every landing is refused
    let cfg = {
        let mut c = ServerConfig::open("tiny", LocationMode::ForwardingTrace);
        c.codebase = registry();
        c.max_residents = Some(0);
        c
    };
    rt.add_server(cfg);

    let it = Itinerary::new(Pattern::seq_of_hosts(&["tiny", "s0"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    assert_eq!(visits_from_report(&reports[0].1), ["s0"]);
}

#[test]
fn code_is_fetched_once_per_host_and_cached() {
    let mut rt = world(LocationMode::ForwardingTrace, 2);
    let it = || {
        Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome)
    };

    rt.launch(make_naplet(it(), 1)).unwrap();
    rt.run_to_quiescence(100_000);
    let after_first = rt.fabric().stats().snapshot();
    assert_eq!(after_first.bytes(TrafficClass::Code), 2 * CODE_SIZE);

    rt.launch(make_naplet(it(), 2)).unwrap();
    rt.run_to_quiescence(100_000);
    let after_second = rt.fabric().stats().snapshot();
    // cache hit: no additional code bytes
    assert_eq!(after_second.bytes(TrafficClass::Code), 2 * CODE_SIZE);
    assert_eq!(rt.drain_reports("home").len(), 2);
}

#[test]
fn migration_traffic_is_metered() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 3);
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1", "s2"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let snap = rt.fabric().stats().snapshot();
    // 3 migrations (home→s0, s0→s1, s1→s2)
    assert_eq!(snap.messages(TrafficClass::Migration), 3);
    assert!(snap.bytes(TrafficClass::Migration) > 0);
    // control traffic: landing handshakes + directory registrations
    assert!(snap.messages(TrafficClass::Control) >= 6);
    // directory at home saw registrations
    assert!(rt.server("home").unwrap().directory.registrations >= 3);
}

#[test]
fn lost_migration_strands_agent_and_counts_drop() {
    let mut rt = world(LocationMode::ForwardingTrace, 2);
    rt.fabric().cut_link("s0", "s1");
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    rt.launch(make_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    assert!(rt.dropped > 0, "the s0→s1 handshake or transfer must drop");
    assert!(rt.drain_reports("home").is_empty());
}

// ===========================================================================
// VM agents: strong mobility end-to-end
// ===========================================================================

fn vm_naplet(itinerary: Itinerary, ts: u64) -> Naplet {
    // work at each host (record its name), then travel; report at end
    let src = r#"
        .program roamer
        .func main locals=1
        work:
            const "trail"
            hcall state_get
            dup
            jmpf fresh
            jmp have
        fresh:
            pop
            mklist 0
        have:
            hcall host_name
            lpush
            store 0
            const "trail"
            load 0
            hcall state_set
            pop
            hcall travel_next
            dup
            jmpf done
            pop
            jmp work
        done:
            pop
            load 0
            hcall report
            pop
            nil
            halt
        .end
    "#;
    let program = naplet_vm::assemble(src).unwrap();
    let image = naplet_vm::VmImage::new(program).unwrap();
    Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(ts),
        "vm:roamer",
        AgentKind::Vm(image.to_wire().unwrap()),
        itinerary,
        vec![],
    )
    .unwrap()
}

#[test]
fn vm_agent_roams_with_strong_mobility() {
    let mut rt = world(LocationMode::CentralDirectory("home".into()), 3);
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1", "s2"], None)).unwrap();
    rt.launch(vm_naplet(it, 1)).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "VM agent should report its trail once");
    let trail: Vec<String> = reports[0]
        .1
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert_eq!(trail, ["s0", "s1", "s2"]);
}

#[test]
fn vm_agent_killed_when_cpu_budget_exceeded() {
    let mut rt = world(LocationMode::ForwardingTrace, 1);
    // tiny budget at s0
    rt.server_mut("s0")
        .unwrap()
        .monitor
        .set_policy(MonitorPolicy {
            gas_slice: 50,
            max_gas_per_visit: 200,
            ..MonitorPolicy::default()
        });
    // spin forever
    let src = ".program spin\n.func main\nloop:\n jmp loop\n.end\n";
    let program = naplet_vm::assemble(src).unwrap();
    let image = naplet_vm::VmImage::new(program).unwrap();
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0"], None)).unwrap();
    let naplet = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        "vm:spin",
        AgentKind::Vm(image.to_wire().unwrap()),
        it,
        vec![],
    )
    .unwrap();
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    let s0 = rt.server("s0").unwrap();
    assert!(s0
        .monitor
        .kills
        .iter()
        .any(|(k, r)| k == &id && r == "resource"));
    let entry = rt.server("home").unwrap().manager.table_entry(&id).unwrap();
    assert_eq!(entry.status, NapletStatus::Destroyed);
}

// ===========================================================================
// services through real servers
// ===========================================================================

/// Behaviour that queries a privileged service via its channel.
struct ServiceUser;
impl NapletBehavior for ServiceUser {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let reply = ctx.channel_exchange("sysinfo", Value::from("load"))?;
        let host = ctx.host_name().to_string();
        ctx.state().update("replies", |v| {
            if let Value::Map(m) = v {
                m.insert(host, reply);
            }
        })?;
        Ok(())
    }
}

#[test]
fn privileged_service_access_via_channels() {
    let mut reg = CodebaseRegistry::new();
    reg.register("svc-user", 1000, || ServiceUser);

    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), 7);
    let mut rt = SimRuntime::new(fabric);
    for host in ["home", "s0", "s1"] {
        let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        cfg.codebase = reg.clone();
        rt.add_server(cfg);
    }
    // install the privileged service on workers
    for host in ["s0", "s1"] {
        let name = host.to_string();
        rt.server_mut(host).unwrap().resources.register_privileged(
            "sysinfo",
            move |io: &mut naplet_server::ChannelIo<'_>| {
                while let Some(req) = io.read_line() {
                    io.write_line(Value::map([
                        ("host", Value::from(name.as_str())),
                        ("query", req),
                    ]));
                }
                Ok(())
            },
        );
    }

    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut naplet = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        "svc-user",
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    naplet
        .state
        .set("replies", Value::map::<[(&str, Value); 0], &str>([]));
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    let replies = reports[0].1.get("replies");
    assert_eq!(replies.get("s0").get("host"), Value::from("s0"));
    assert_eq!(replies.get("s1").get("host"), Value::from("s1"));
    // channels were torn down on departure
    assert_eq!(rt.server("s0").unwrap().resources.live_channels(), 0);
}

#[test]
fn bandwidth_budget_drops_excess_posts_but_keeps_reports() {
    /// Posts three chunky messages to a (absent) peer, then reports.
    struct Chatter;
    impl NapletBehavior for Chatter {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
            let peer = naplet_core::NapletId::new("peer", "s1", Millis(9)).unwrap();
            ctx.address_book().put(peer.clone(), "s1");
            for k in 0..3 {
                let _ = ctx.post_message(&peer, Value::Bytes(vec![k as u8; 200]));
            }
            ctx.report_home(Value::from("done"))
        }
    }
    let mut reg = CodebaseRegistry::new();
    reg.register("chatter", 0, || Chatter);
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), 4);
    let mut rt = SimRuntime::new(fabric);
    for host in ["home", "s0", "s1"] {
        let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        cfg.codebase = reg.clone();
        // budget fits exactly one 200-byte payload
        cfg.monitor_policy = MonitorPolicy {
            max_msg_bytes_per_visit: 250,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        "chatter",
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    // exactly one post made it onto the wire; the reports still arrived
    let snap = rt.fabric().stats().snapshot();
    // one Post (s0→s1) + the explicit report + the final-action report
    assert_eq!(snap.messages(TrafficClass::Message), 3);
    let s0 = rt.server("s0").unwrap();
    assert!(s0
        .log
        .iter()
        .any(|l| l.line.contains("bandwidth budget hit")));
    let reports = rt.drain_reports("home");
    assert!(!reports.is_empty(), "reports still flow after budget hit");
}
