//! ResourceManager (paper §2.2, §5.3).
//!
//! "A naplet server can be configured or re-configured with various
//! hardware, software and data resources … The ResourceManager provides
//! a resource allocation mechanism, leaves application-specific
//! allocation policy for dynamic re-configuration."
//!
//! Open services are called directly via their handlers; privileged
//! services are reachable only through [`ServiceChannel`]s, which the
//! manager creates on request after a credential-based access check
//! and tears down when the naplet departs.

use std::collections::HashMap;
use std::sync::Arc;

use naplet_core::credential::Credential;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::value::Value;

use crate::security::{Permission, SecurityManager};
use crate::service_channel::{OpenService, PrivilegedService, ServiceChannel};

/// The per-server resource manager.
#[derive(Default)]
pub struct ResourceManager {
    open: HashMap<String, Arc<dyn OpenService>>,
    privileged: HashMap<String, Arc<dyn PrivilegedService>>,
    channels: HashMap<(NapletId, String), ServiceChannel>,
    /// Total channels ever created (diagnostics).
    pub channels_created: u64,
}

impl ResourceManager {
    /// Empty manager.
    pub fn new() -> ResourceManager {
        ResourceManager::default()
    }

    /// Register (or replace) an open service. Services can be added
    /// and replaced at runtime — the paper's dynamic reconfiguration.
    pub fn register_open(&mut self, name: &str, svc: impl OpenService + 'static) {
        self.open.insert(name.to_string(), Arc::new(svc));
    }

    /// Register (or replace) a privileged service.
    pub fn register_privileged(&mut self, name: &str, svc: impl PrivilegedService + 'static) {
        self.privileged.insert(name.to_string(), Arc::new(svc));
    }

    /// Remove a service of either kind. Existing channels to a removed
    /// privileged service fail on next use.
    pub fn deregister(&mut self, name: &str) {
        self.open.remove(name);
        self.privileged.remove(name);
    }

    /// Names of registered open services (sorted).
    pub fn open_services(&self) -> Vec<String> {
        let mut v: Vec<String> = self.open.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of registered privileged services (sorted).
    pub fn privileged_services(&self) -> Vec<String> {
        let mut v: Vec<String> = self.privileged.keys().cloned().collect();
        v.sort();
        v
    }

    /// Call an open service on behalf of a naplet, checking the
    /// security policy first.
    pub fn call_open(
        &self,
        security: &SecurityManager,
        cred: &Credential,
        name: &str,
        args: Value,
    ) -> Result<Value> {
        security.check(cred, Permission::OpenService(name.to_string()))?;
        let svc = self
            .open
            .get(name)
            .ok_or_else(|| NapletError::Service(format!("no open service `{name}`")))?;
        svc.call(args)
    }

    /// Perform one request/reply exchange with a privileged service
    /// over the naplet's channel, creating the channel on first use
    /// (with access control at allocation, as §5.3 specifies).
    pub fn channel_exchange(
        &mut self,
        security: &SecurityManager,
        cred: &Credential,
        naplet: &NapletId,
        service: &str,
        request: Value,
    ) -> Result<Value> {
        let svc =
            self.privileged.get(service).cloned().ok_or_else(|| {
                NapletError::Service(format!("no privileged service `{service}`"))
            })?;
        let key = (naplet.clone(), service.to_string());
        if !self.channels.contains_key(&key) {
            // access control happens when the channel is allocated
            security.check(cred, Permission::PrivilegedService(service.to_string()))?;
            self.channels
                .insert(key.clone(), ServiceChannel::new(naplet.clone(), service));
            self.channels_created += 1;
        }
        let channel = self.channels.get_mut(&key).expect("just inserted");
        channel.exchange(svc.as_ref(), request)
    }

    /// Release every channel held by a departing naplet (paper:
    /// "success of a launch will release all the resources occupied by
    /// the naplet").
    pub fn release(&mut self, naplet: &NapletId) -> usize {
        let before = self.channels.len();
        self.channels.retain(|(id, _), _| id != naplet);
        before - self.channels.len()
    }

    /// Number of live channels.
    pub fn live_channels(&self) -> usize {
        self.channels.len()
    }
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager")
            .field("open", &self.open_services())
            .field("privileged", &self.privileged_services())
            .field("live_channels", &self.live_channels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::{Matcher, Policy};
    use crate::service_channel::ChannelIo;
    use naplet_core::clock::Millis;
    use naplet_core::credential::SigningKey;

    fn cred(role: &str) -> Credential {
        cred_at(role, 1)
    }

    fn cred_at(role: &str, ts: u64) -> Credential {
        let key = SigningKey::new("czxu", b"s");
        let id = NapletId::new("czxu", "home", Millis(ts)).unwrap();
        Credential::issue(&key, id, "cb", vec![("role".into(), role.into())])
    }

    fn echo_privileged() -> impl PrivilegedService {
        |io: &mut ChannelIo<'_>| {
            while let Some(v) = io.read_line() {
                io.write_line(v);
            }
            Ok(())
        }
    }

    fn manager() -> ResourceManager {
        let mut rm = ResourceManager::new();
        rm.register_open("math.inc", |v: Value| Ok(Value::Int(v.as_int()? + 1)));
        rm.register_privileged("mgmt", echo_privileged());
        rm
    }

    #[test]
    fn open_service_call_with_permission() {
        let rm = manager();
        let sec = SecurityManager::open();
        let v = rm
            .call_open(&sec, &cred("x"), "math.inc", Value::Int(41))
            .unwrap();
        assert_eq!(v, Value::Int(42));
        assert!(rm
            .call_open(&sec, &cred("x"), "missing", Value::Nil)
            .is_err());
    }

    #[test]
    fn open_service_denied_by_policy() {
        let rm = manager();
        let sec = SecurityManager::new(Policy::deny_all(), vec![], false);
        let err = rm
            .call_open(&sec, &cred("x"), "math.inc", Value::Int(1))
            .unwrap_err();
        assert_eq!(err.kind(), "security");
    }

    #[test]
    fn channel_created_once_and_reused() {
        let mut rm = manager();
        let sec = SecurityManager::open();
        let c = cred("net-mgmt");
        let id = c.naplet_id.clone();
        rm.channel_exchange(&sec, &c, &id, "mgmt", Value::Int(1))
            .unwrap();
        rm.channel_exchange(&sec, &c, &id, "mgmt", Value::Int(2))
            .unwrap();
        assert_eq!(rm.channels_created, 1);
        assert_eq!(rm.live_channels(), 1);
    }

    #[test]
    fn channel_access_control_at_allocation() {
        let mut rm = manager();
        let mut policy = Policy::deny_all();
        policy.add_rule(
            Matcher::any().with_attribute("role", "net-mgmt"),
            [Permission::PrivilegedService("mgmt".into())],
        );
        let sec = SecurityManager::new(policy, vec![], false);

        let ok = cred_at("net-mgmt", 1);
        let ok_id = ok.naplet_id.clone();
        rm.channel_exchange(&sec, &ok, &ok_id, "mgmt", Value::Nil)
            .unwrap();

        let bad = cred_at("shopping", 2);
        let bad_id = bad.naplet_id.clone();
        let err = rm
            .channel_exchange(&sec, &bad, &bad_id, "mgmt", Value::Nil)
            .unwrap_err();
        assert_eq!(err.kind(), "security");
        assert_eq!(rm.channels_created, 1);
    }

    #[test]
    fn release_tears_down_channels() {
        let mut rm = manager();
        let sec = SecurityManager::open();
        let c = cred("x");
        let id = c.naplet_id.clone();
        rm.channel_exchange(&sec, &c, &id, "mgmt", Value::Nil)
            .unwrap();
        assert_eq!(rm.release(&id), 1);
        assert_eq!(rm.live_channels(), 0);
        // releasing again is a no-op
        assert_eq!(rm.release(&id), 0);
    }

    #[test]
    fn deregister_and_reconfigure() {
        let mut rm = manager();
        let sec = SecurityManager::open();
        let c = cred("x");
        let id = c.naplet_id.clone();
        rm.deregister("mgmt");
        assert!(rm
            .channel_exchange(&sec, &c, &id, "mgmt", Value::Nil)
            .is_err());
        // dynamic reconfiguration: register a replacement
        rm.register_privileged("mgmt", echo_privileged());
        rm.channel_exchange(&sec, &c, &id, "mgmt", Value::Int(9))
            .unwrap();
        assert_eq!(rm.open_services(), ["math.inc"]);
        assert_eq!(rm.privileged_services(), ["mgmt"]);
    }
}
