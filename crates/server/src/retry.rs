//! Retry/backoff policy for the reliable-transfer layer.
//!
//! Both navigator handoffs (landing permits and naplet transfers) and
//! post-office redelivery share one policy: a per-transfer
//! acknowledgement timer with capped exponential backoff and
//! deterministic jitter. After [`RetryPolicy::max_retries`] attempts the
//! navigator gives up — an `Alt` itinerary falls back to its next
//! branch, otherwise the naplet is parked with a navigation-log failure
//! entry; a message is counted as undeliverable.

use serde::{Deserialize, Serialize};

/// Timeout/retry parameters for acknowledged transfers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Acknowledgement timeout for the first attempt (ms).
    pub base_timeout_ms: u64,
    /// Cap on the exponentially growing timeout (ms).
    pub max_timeout_ms: u64,
    /// Total send attempts (first try included) before giving up.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout_ms: 200,
            max_timeout_ms: 3_200,
            max_retries: 6,
        }
    }
}

impl RetryPolicy {
    /// Capped exponential backoff for a 1-based attempt number:
    /// `min(base << (attempt-1), max)`. Delegates to the shared
    /// [`naplet_net::backoff`] engine so acknowledgement timers and
    /// TCP reconnects back off identically.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        naplet_net::backoff::capped_backoff_ms(self.base_timeout_ms, self.max_timeout_ms, attempt)
    }

    /// Backoff plus deterministic jitter in `[0, backoff/4]`, keyed on
    /// the transfer identity. Jitter de-synchronizes retry storms while
    /// keeping discrete-event runs reproducible.
    pub fn jittered_backoff_ms(&self, key: u64, attempt: u32) -> u64 {
        naplet_net::backoff::jittered_backoff_ms(
            self.base_timeout_ms,
            self.max_timeout_ms,
            key,
            attempt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1), 200);
        assert_eq!(p.backoff_ms(2), 400);
        assert_eq!(p.backoff_ms(3), 800);
        assert_eq!(p.backoff_ms(4), 1_600);
        assert_eq!(p.backoff_ms(5), 3_200);
        assert_eq!(p.backoff_ms(6), 3_200); // capped
        assert_eq!(p.backoff_ms(60), 3_200); // shift amount clamped
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..=6 {
            for key in [0u64, 1, 42, u64::MAX] {
                let a = p.jittered_backoff_ms(key, attempt);
                let b = p.jittered_backoff_ms(key, attempt);
                assert_eq!(a, b, "jitter must be deterministic");
                let base = p.backoff_ms(attempt);
                assert!(a >= base && a <= base + base / 4 + 1);
            }
        }
        // different keys should usually jitter differently
        assert_ne!(
            p.jittered_backoff_ms(1, 3),
            p.jittered_backoff_ms(2, 3),
            "distinct transfers should de-synchronize"
        );
    }
}
