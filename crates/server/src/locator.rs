//! Locator (paper §4.1).
//!
//! The Locator serves tracing and location requests for the Messenger
//! and NapletManager. It "caches recently inquired locations so as to
//! reduce the response time of subsequent naplet location requests";
//! cached hints may be stale and are updated on migration
//! notifications. This module is the cache plus hit/miss accounting
//! (experiment E4 reports the hit rate); the resolution *protocol*
//! (directory query vs. footprint forwarding) lives in the server's
//! message handling.

use std::collections::HashMap;

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;

/// One cached location hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedLocation {
    /// Believed host.
    pub host: String,
    /// When the hint was cached.
    pub cached_at: Millis,
}

/// The location cache.
#[derive(Debug)]
pub struct Locator {
    cache: HashMap<NapletId, CachedLocation>,
    capacity: usize,
    /// Cache hits served.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Hits that later proved stale (the hinted host had to forward
    /// or bounce the message).
    pub stale_hits: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl Default for Locator {
    fn default() -> Self {
        Locator::new(1024)
    }
}

impl Locator {
    /// Cache bounded to `capacity` entries (oldest evicted first).
    pub fn new(capacity: usize) -> Locator {
        Locator {
            cache: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            stale_hits: 0,
            evictions: 0,
        }
    }

    /// Look up a cached hint, counting hit/miss.
    pub fn get(&mut self, id: &NapletId) -> Option<&CachedLocation> {
        match self.cache.get(id) {
            Some(loc) => {
                self.hits += 1;
                Some(loc)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install or refresh a hint (on directory replies, confirmations,
    /// and migration notifications). Returns true when an older entry
    /// was evicted to make room.
    pub fn put(&mut self, id: NapletId, host: &str, now: Millis) -> bool {
        let mut evicted = false;
        if self.cache.len() >= self.capacity && !self.cache.contains_key(&id) {
            // evict the oldest entry
            if let Some(oldest) = self
                .cache
                .iter()
                .min_by_key(|(_, loc)| loc.cached_at)
                .map(|(k, _)| k.clone())
            {
                self.cache.remove(&oldest);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.cache.insert(
            id,
            CachedLocation {
                host: host.to_string(),
                cached_at: now,
            },
        );
        evicted
    }

    /// Drop a hint that proved wrong (forwarded message bounced).
    pub fn invalidate(&mut self, id: &NapletId) {
        self.cache.remove(id);
    }

    /// A hit served earlier proved stale: the hinted host no longer
    /// held the agent and the message had to forward or bounce.
    /// Counted separately from `hits` so the ops plane can report the
    /// cache's *useful* hit rate.
    pub fn note_stale(&mut self) {
        self.stale_hits += 1;
    }

    /// Age in ms of the oldest surviving hint (0 when empty): the
    /// staleness floor the status report exposes.
    pub fn oldest_hint_age(&self, now: Millis) -> u64 {
        self.cache
            .values()
            .map(|loc| now.since(loc.cached_at))
            .max()
            .unwrap_or(0)
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Fraction of lookups served from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    #[test]
    fn put_get_invalidate() {
        let mut l = Locator::new(10);
        assert!(l.get(&nid(1)).is_none());
        l.put(nid(1), "s1", Millis(5));
        assert_eq!(l.get(&nid(1)).unwrap().host, "s1");
        l.put(nid(1), "s2", Millis(9));
        assert_eq!(l.get(&nid(1)).unwrap().host, "s2");
        l.invalidate(&nid(1));
        assert!(l.get(&nid(1)).is_none());
        assert_eq!(l.hits, 2);
        assert_eq!(l.misses, 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut l = Locator::new(2);
        l.put(nid(1), "a", Millis(1));
        l.put(nid(2), "b", Millis(2));
        l.put(nid(3), "c", Millis(3)); // evicts nid(1)
        assert_eq!(l.len(), 2);
        assert!(l.get(&nid(1)).is_none());
        assert!(l.get(&nid(2)).is_some());
        assert!(l.get(&nid(3)).is_some());
    }

    #[test]
    fn refreshing_existing_does_not_evict() {
        let mut l = Locator::new(2);
        l.put(nid(1), "a", Millis(1));
        l.put(nid(2), "b", Millis(2));
        l.put(nid(1), "a2", Millis(3)); // refresh, no eviction
        assert_eq!(l.len(), 2);
        assert!(l.get(&nid(2)).is_some());
    }

    #[test]
    fn staleness_accounting() {
        let mut l = Locator::new(2);
        l.put(nid(1), "a", Millis(1));
        l.put(nid(2), "b", Millis(4));
        assert_eq!(l.oldest_hint_age(Millis(10)), 9);
        let _ = l.get(&nid(1));
        l.note_stale(); // the hint at "a" bounced
        assert_eq!(l.stale_hits, 1);
        assert!(l.put(nid(3), "c", Millis(5)), "evicts nid(1)");
        assert_eq!(l.evictions, 1);
        assert_eq!(l.oldest_hint_age(Millis(10)), 6);
        let empty = Locator::new(2);
        assert_eq!(empty.oldest_hint_age(Millis(10)), 0);
    }

    #[test]
    fn hit_rate() {
        let mut l = Locator::new(4);
        assert_eq!(l.hit_rate(), 0.0);
        l.put(nid(1), "a", Millis(1));
        let _ = l.get(&nid(1));
        let _ = l.get(&nid(2));
        assert!((l.hit_rate() - 0.5).abs() < 1e-9);
    }
}
