//! Home-side agent leases — the liveness half of crash consistency.
//!
//! The journal guarantees no *journaled* agent is lost, but a host that
//! dies permanently takes its journal with it. The home server
//! therefore holds a **lease** per dispatched naplet, renewed by every
//! sign of life it observes: directory (arrival) registrations, report
//! traffic, and local report pushes. A lease that expires marks the
//! agent *orphaned*; depending on policy the home re-dispatches a
//! fresh copy from the durable creation record, or surfaces a `Lost`
//! terminal status so the owner is at least told the truth.
//!
//! Leasing is opt-in (`ServerConfig::lease`): with it off, the wire
//! protocol and its byte totals are exactly those of the lease-free
//! server.

use std::collections::HashMap;

use naplet_core::clock::Millis;
use naplet_core::NapletId;

/// Home-side lease policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeasePolicy {
    /// How long a lease stays valid without renewal.
    pub duration_ms: u64,
    /// Re-dispatch an orphan from its creation record (`true`) or
    /// immediately declare it `Lost` (`false`).
    pub redispatch: bool,
    /// How many re-dispatches to attempt before giving up as `Lost`.
    pub max_redispatches: u32,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        LeasePolicy {
            duration_ms: 60_000,
            redispatch: true,
            max_redispatches: 1,
        }
    }
}

/// One live lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Last instant a sign of life renewed the lease.
    pub last_renewed: Millis,
    /// Re-dispatches already consumed for this agent.
    pub redispatches: u32,
}

/// The home server's table of leases for its dispatched naplets.
#[derive(Debug, Default)]
pub struct LeaseTable {
    leases: HashMap<NapletId, Lease>,
    /// Leases that expired without renewal.
    pub expired: u64,
    /// Orphans re-dispatched from their creation record.
    pub redispatched: u64,
    /// Agents given up as lost after exhausting re-dispatches.
    pub lost: u64,
}

impl LeaseTable {
    /// Empty table.
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    /// Grant (or re-grant) a lease starting now. Keeps the re-dispatch
    /// count of any existing lease — a re-dispatched agent does not
    /// get a fresh budget.
    pub fn grant(&mut self, id: &NapletId, now: Millis) {
        let redispatches = self.leases.get(id).map(|l| l.redispatches).unwrap_or(0);
        self.leases.insert(
            id.clone(),
            Lease {
                last_renewed: now,
                redispatches,
            },
        );
    }

    /// Renew the lease on a sign of life; ignored for unknown agents
    /// (e.g. agents homed elsewhere reporting through this server).
    pub fn renew(&mut self, id: &NapletId, now: Millis) {
        if let Some(lease) = self.leases.get_mut(id) {
            lease.last_renewed = now;
        }
    }

    /// Release the lease: the journey reached a terminal status.
    pub fn release(&mut self, id: &NapletId) {
        self.leases.remove(id);
    }

    /// The lease for `id`, if held.
    pub fn get(&self, id: &NapletId) -> Option<Lease> {
        self.leases.get(id).copied()
    }

    /// Whether a lease is currently held for `id`.
    pub fn is_held(&self, id: &NapletId) -> bool {
        self.leases.contains_key(id)
    }

    /// Consume one re-dispatch of the agent's budget and restart the
    /// lease clock.
    pub fn note_redispatch(&mut self, id: &NapletId, now: Millis) {
        if let Some(lease) = self.leases.get_mut(id) {
            lease.redispatches += 1;
            lease.last_renewed = now;
        }
    }

    /// Number of leases currently held.
    pub fn held(&self) -> usize {
        self.leases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(tag: u64) -> NapletId {
        NapletId::new("czxu", "home", Millis(tag)).unwrap()
    }

    #[test]
    fn grant_renew_release() {
        let mut t = LeaseTable::new();
        let a = id(1);
        t.grant(&a, Millis(10));
        assert!(t.is_held(&a));
        assert_eq!(t.get(&a).unwrap().last_renewed, Millis(10));
        t.renew(&a, Millis(50));
        assert_eq!(t.get(&a).unwrap().last_renewed, Millis(50));
        t.release(&a);
        assert!(!t.is_held(&a));
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn renew_unknown_is_noop() {
        let mut t = LeaseTable::new();
        t.renew(&id(9), Millis(5));
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn redispatch_budget_survives_regrant() {
        let mut t = LeaseTable::new();
        let a = id(1);
        t.grant(&a, Millis(0));
        t.note_redispatch(&a, Millis(100));
        assert_eq!(t.get(&a).unwrap().redispatches, 1);
        assert_eq!(t.get(&a).unwrap().last_renewed, Millis(100));
        // re-granting (e.g. on re-dispatch launch) keeps the count
        t.grant(&a, Millis(120));
        assert_eq!(t.get(&a).unwrap().redispatches, 1);
    }

    #[test]
    fn default_policy_is_sane() {
        let p = LeasePolicy::default();
        assert!(p.duration_ms > 0);
        assert!(p.redispatch);
        assert_eq!(p.max_redispatches, 1);
    }
}
