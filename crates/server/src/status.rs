//! Health probe report: the per-server half of the ops plane.
//!
//! A [`StatusReport`] is a deterministic aggregation of state the
//! server already keeps — the NapletMonitor's run table and resource
//! accounting, the post office's queues, the write-ahead journal's
//! un-retired lag, the lease table, and the Locator's cache counters.
//! Assembly is a read-only walk over those tables (no new locks, no
//! hot-path bookkeeping), so a probe costs what a diagnostics dump
//! costs and two probes of identical servers encode byte-identically
//! (every list is sorted before it leaves the server).
//!
//! Reports travel in [`crate::events::Wire::StatusReply`] frames, the
//! privileged status protocol any server or the centralized manager
//! can speak over the same fabric the agents use.

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;

/// One resident naplet as the health probe sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidentStatus {
    /// The naplet's id (rendered).
    pub id: String,
    /// Navigation-log visit epoch of the visit in progress.
    pub visit_epoch: u64,
    /// How long the agent has dwelt here so far, ms.
    pub dwell_ms: u64,
    /// Messages waiting in its mailbox.
    pub mailbox: u64,
    /// Cumulative visits across its journey (monitor accounting).
    pub visits: u64,
    /// Cumulative CPU gas consumed.
    pub gas: u64,
    /// Cumulative message bytes posted.
    pub msg_bytes: u64,
    /// Peak serialized state size observed.
    pub peak_state_bytes: u64,
}

/// Replicated-directory consensus status of one replica (present only
/// on hosts that are members of the directory replica set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplStatus {
    /// Current role: `follower`, `candidate` or `leader`.
    pub role: String,
    /// Current consensus term.
    pub term: u64,
    /// Highest log index known committed here.
    pub commit: u64,
    /// Highest log index appended here.
    pub last_index: u64,
    /// Who this replica believes leads the current term, if known.
    pub leader: Option<String>,
    /// Naplets in the committed replicated directory.
    pub entries: u64,
}

/// Point-in-time health report of one naplet server.
///
/// Every collection field is sorted, so the codec encoding of a
/// report is a pure function of server state — byte-identical across
/// identical seeded runs, which the status-plane determinism tests
/// and the CI golden check rely on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Reporting host.
    pub host: String,
    /// Server time the report was assembled.
    pub at: Millis,
    /// Resident naplets, sorted by id.
    pub residents: Vec<ResidentStatus>,
    /// Agents parked here awaiting manual recovery.
    pub parked: u64,
    /// Total messages queued across resident mailboxes.
    pub mailbox_depth: u64,
    /// Early-arrival messages waiting in the special mailbox.
    pub special_mailbox_depth: u64,
    /// Un-retired write-ahead journal entries (naplet records).
    pub journal_entries: u64,
    /// Bytes held by those entries.
    pub journal_bytes: u64,
    /// Live home-side leases.
    pub leases_held: u64,
    /// Leases that expired without a sign of life.
    pub leases_expired: u64,
    /// Orphans re-dispatched from their creation record.
    pub leases_redispatched: u64,
    /// Agents given up as lost.
    pub leases_lost: u64,
    /// Location-cache entries.
    pub locator_entries: u64,
    /// Location-cache hits served.
    pub locator_hits: u64,
    /// Location-cache misses.
    pub locator_misses: u64,
    /// Hits that later proved stale (forwarded/bounced).
    pub locator_stale_hits: u64,
    /// Entries evicted to stay within capacity.
    pub locator_evictions: u64,
    /// Age of the oldest surviving cache hint, ms.
    pub locator_oldest_age_ms: u64,
    /// Outbound migrations awaiting permit or ack (retry-queue depth).
    pub pending_transfers: u64,
    /// Posted messages awaiting delivery confirmation.
    pub outstanding_posts: u64,
    /// Consensus status when this host replicates the directory.
    pub repl: Option<ReplStatus>,
}

impl StatusReport {
    /// One-line operator summary (`figures status` table row body).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{}: {} resident, {} parked, mailbox {}+{}, journal {} ({} B), \
             leases {}/{} exp, locator {} ({} stale), {} in-flight",
            self.host,
            self.residents.len(),
            self.parked,
            self.mailbox_depth,
            self.special_mailbox_depth,
            self.journal_entries,
            self.journal_bytes,
            self.leases_held,
            self.leases_expired,
            self.locator_entries,
            self.locator_stale_hits,
            self.pending_transfers,
        );
        if let Some(r) = &self.repl {
            line.push_str(&format!(
                ", dir {} t{} c{}/{}",
                r.role, r.term, r.commit, r.last_index
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusReport {
        StatusReport {
            host: "s1".into(),
            at: Millis(42),
            residents: vec![ResidentStatus {
                id: "naplet://czxu@home/1".into(),
                visit_epoch: 3,
                dwell_ms: 5,
                mailbox: 1,
                visits: 3,
                gas: 120,
                msg_bytes: 64,
                peak_state_bytes: 512,
            }],
            parked: 0,
            mailbox_depth: 1,
            special_mailbox_depth: 0,
            journal_entries: 1,
            journal_bytes: 300,
            leases_held: 0,
            leases_expired: 0,
            leases_redispatched: 0,
            leases_lost: 0,
            locator_entries: 2,
            locator_hits: 5,
            locator_misses: 1,
            locator_stale_hits: 1,
            locator_evictions: 0,
            locator_oldest_age_ms: 17,
            pending_transfers: 0,
            outstanding_posts: 0,
            repl: Some(ReplStatus {
                role: "leader".into(),
                term: 3,
                commit: 9,
                last_index: 9,
                leader: Some("s1".into()),
                entries: 4,
            }),
        }
    }

    #[test]
    fn report_codec_round_trips_byte_stably() {
        let report = sample();
        let a = naplet_core::codec::to_bytes(&report).unwrap();
        let b = naplet_core::codec::to_bytes(&report).unwrap();
        assert_eq!(a, b, "encoding must be a pure function of the report");
        let back: StatusReport = naplet_core::codec::from_bytes(&a).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_names_the_host_and_counts() {
        let s = sample().summary();
        assert!(s.starts_with("s1: 1 resident"), "{s}");
        assert!(s.contains("journal 1 (300 B)"), "{s}");
        assert!(s.contains("1 stale"), "{s}");
        assert!(s.contains("dir leader t3 c9/9"), "{s}");
    }
}
