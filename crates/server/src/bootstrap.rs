//! Cluster-bootstrap configuration for `napletd` daemons.
//!
//! A cluster is described by one TOML file shared by every node: each
//! daemon is started with the same file plus `--node <name>` and works
//! out its own listen address and its static peer list from it. The
//! parser is a deliberate TOML subset (tables, array-of-tables
//! `[[node]]`, string/integer/boolean values, `#` comments) so the
//! workspace stays dependency-free; anything outside the subset is a
//! line-numbered parse error, not a silent skip.
//!
//! ```toml
//! [cluster]
//! lease_ms = 60000
//!
//! [[node]]
//! name = "alpha"
//! listen = "127.0.0.1:7401"
//! journal = "/var/lib/naplet/alpha"
//! ```
//!
//! [`BootstrapConfig::parse`] validates as it goes — duplicate node
//! names, duplicate or unparseable listen addresses, missing keys —
//! and reports *all* problems in one error so `napletd
//! --check-config` fixes a config in one pass instead of one error
//! per run.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use naplet_core::error::{NapletError, Result};
use naplet_net::tcp::TcpConfig;

/// One `[[node]]` entry: a daemon's identity in the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// Host name this node's NapletServer answers to (frame `to`).
    pub name: String,
    /// TCP listen address for the node's transport.
    pub listen: SocketAddr,
    /// Write-ahead journal directory; `None` runs without crash
    /// recovery (in-memory journal only).
    pub journal: Option<PathBuf>,
}

/// The `[directory]` section: which nodes replicate the naplet
/// directory, plus optional consensus-timer overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Names of the replica-set members (each must be a declared
    /// `[[node]]`), in the order written.
    pub replicas: Vec<String>,
    /// `ReplConfig::tick_ms` override.
    pub tick_ms: Option<u64>,
    /// `ReplConfig::lease_ms` override (leader lease).
    pub lease_ms: Option<u64>,
    /// `ReplConfig::heartbeat_ms` override.
    pub heartbeat_ms: Option<u64>,
    /// `ReplConfig::election_ms` override.
    pub election_ms: Option<u64>,
    /// `ReplConfig::snapshot_keep` override.
    pub snapshot_keep: Option<u64>,
}

impl DirectoryConfig {
    /// Materialize the consensus-core configuration.
    pub fn repl_config(&self) -> crate::repl::ReplConfig {
        let mut cfg = crate::repl::ReplConfig::new(self.replicas.clone());
        if let Some(v) = self.tick_ms {
            cfg.tick_ms = v;
        }
        if let Some(v) = self.lease_ms {
            cfg.lease_ms = v;
        }
        if let Some(v) = self.heartbeat_ms {
            cfg.heartbeat_ms = v;
        }
        if let Some(v) = self.election_ms {
            cfg.election_ms = v;
        }
        if let Some(v) = self.snapshot_keep {
            cfg.snapshot_keep = v;
        }
        cfg
    }
}

/// The whole cluster as one parsed, validated bootstrap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// Every node in the cluster, in file order.
    pub nodes: Vec<NodeConfig>,
    /// Home-side lease duration for launched naplets (ms); `None`
    /// disables leases on daemon-hosted home servers.
    pub lease_ms: Option<u64>,
    /// Modelled native-visit dwell applied on every node (ms); `None`
    /// keeps each server's default. Cluster tests raise this to open a
    /// window in which an agent is resident across a crash.
    pub dwell_ms: Option<u64>,
    /// Transport frame-size ceiling override (bytes).
    pub max_frame_bytes: Option<usize>,
    /// Directory daemons write flight-recorder dumps into (on SIGUSR1,
    /// clean shutdown, and panic) as `<trace_dir>/<node>.trace.json`;
    /// `None` falls back to the OS temp directory.
    pub trace_dir: Option<PathBuf>,
    /// Replicated-directory configuration; `None` keeps every node in
    /// the default home-manager location mode.
    pub directory: Option<DirectoryConfig>,
    /// Service-level objectives from the `[slo]` section, evaluated by
    /// `figures analyze --slo`; `None` means no budgets are declared.
    pub slo: Option<naplet_obs::SloConfig>,
}

impl BootstrapConfig {
    /// Parse and validate bootstrap TOML. Every problem found is
    /// reported in the single returned error, one per line.
    pub fn parse(text: &str) -> Result<BootstrapConfig> {
        let raw = parse_toml_subset(text)?;
        let mut errors = Vec::new();
        // each parsed node keeps the line of its `[[node]]` header so
        // cross-node errors can point at both definitions
        let mut nodes: Vec<(NodeConfig, usize)> = Vec::new();
        for (i, entry) in raw.nodes.iter().enumerate() {
            let header_line = raw.node_lines[i];
            let label = entry
                .get("name")
                .map(|v| format!("node `{}`", v.as_str_lossy()))
                .unwrap_or_else(|| format!("node #{}", i + 1));
            let name = match entry.get("name") {
                Some(RawValue::Str(s)) if !s.is_empty() => s.clone(),
                Some(RawValue::Str(_)) => {
                    errors.push(format!("{label}: `name` must not be empty"));
                    continue;
                }
                Some(_) => {
                    errors.push(format!("{label}: `name` must be a string"));
                    continue;
                }
                None => {
                    errors.push(format!("{label}: missing required key `name`"));
                    continue;
                }
            };
            let listen = match entry.get("listen") {
                Some(RawValue::Str(s)) => match s.parse::<SocketAddr>() {
                    Ok(addr) => addr,
                    Err(e) => {
                        errors.push(format!(
                            "node `{name}`: listen address `{s}` does not parse: {e}"
                        ));
                        continue;
                    }
                },
                Some(_) => {
                    errors.push(format!("node `{name}`: `listen` must be a string"));
                    continue;
                }
                None => {
                    errors.push(format!("node `{name}`: missing required key `listen`"));
                    continue;
                }
            };
            let journal = match entry.get("journal") {
                Some(RawValue::Str(s)) => Some(PathBuf::from(s)),
                Some(_) => {
                    errors.push(format!("node `{name}`: `journal` must be a string path"));
                    continue;
                }
                None => None,
            };
            for key in entry.keys() {
                if !matches!(key.as_str(), "name" | "listen" | "journal") {
                    errors.push(format!("node `{name}`: unknown key `{key}`"));
                }
            }
            nodes.push((
                NodeConfig {
                    name,
                    listen,
                    journal,
                },
                header_line,
            ));
        }

        // cross-node validation: names and listen addresses must be
        // cluster-unique, else two daemons would claim one identity.
        // Every collision is reported with both definition sites so a
        // large config is fixable in one pass.
        for (i, (a, a_line)) in nodes.iter().enumerate() {
            for (b, b_line) in &nodes[i + 1..] {
                if a.name == b.name {
                    errors.push(format!(
                        "line {b_line}: duplicate node name `{}` (first defined at line {a_line})",
                        a.name
                    ));
                }
                if a.listen == b.listen {
                    errors.push(format!(
                        "line {b_line}: nodes `{}` and `{}` both listen on {} \
                         (first defined at line {a_line})",
                        a.name, b.name, a.listen
                    ));
                }
            }
        }
        let nodes: Vec<NodeConfig> = nodes.into_iter().map(|(n, _)| n).collect();
        if nodes.is_empty() && errors.is_empty() {
            errors.push("config defines no [[node]] entries".to_string());
        }

        let mut lease_ms = None;
        let mut dwell_ms = None;
        let mut max_frame_bytes = None;
        let mut trace_dir = None;
        for (key, value) in &raw.cluster {
            match (key.as_str(), value) {
                ("trace_dir", RawValue::Str(s)) if !s.is_empty() => {
                    trace_dir = Some(PathBuf::from(s))
                }
                ("trace_dir", _) => {
                    errors.push("[cluster] `trace_dir` must be a non-empty string path".into())
                }
                ("lease_ms", RawValue::Int(n)) if *n >= 0 => lease_ms = Some(*n as u64),
                ("lease_ms", _) => {
                    errors.push("[cluster] `lease_ms` must be a non-negative integer".into())
                }
                ("dwell_ms", RawValue::Int(n)) if *n >= 0 => dwell_ms = Some(*n as u64),
                ("dwell_ms", _) => {
                    errors.push("[cluster] `dwell_ms` must be a non-negative integer".into())
                }
                ("max_frame_bytes", RawValue::Int(n)) if *n > 0 => {
                    max_frame_bytes = Some(*n as usize)
                }
                ("max_frame_bytes", _) => {
                    errors.push("[cluster] `max_frame_bytes` must be a positive integer".into())
                }
                (other, _) => errors.push(format!("[cluster] unknown key `{other}`")),
            }
        }

        let mut directory = None;
        if let Some(table) = &raw.directory {
            let mut dir = DirectoryConfig {
                replicas: Vec::new(),
                tick_ms: None,
                lease_ms: None,
                heartbeat_ms: None,
                election_ms: None,
                snapshot_keep: None,
            };
            let mut saw_replicas = false;
            for (key, value) in table {
                // the TOML subset has no arrays, so the replica set is
                // a comma-separated string of node names
                match (key.as_str(), value) {
                    ("replicas", RawValue::Str(s)) => {
                        saw_replicas = true;
                        dir.replicas = s
                            .split(',')
                            .map(|p| p.trim().to_string())
                            .filter(|p| !p.is_empty())
                            .collect();
                    }
                    ("replicas", _) => errors.push(
                        "[directory] `replicas` must be a comma-separated string of node names"
                            .into(),
                    ),
                    (
                        k @ ("tick_ms" | "lease_ms" | "heartbeat_ms" | "election_ms"
                        | "snapshot_keep"),
                        RawValue::Int(n),
                    ) if *n > 0 => {
                        let v = Some(*n as u64);
                        match k {
                            "tick_ms" => dir.tick_ms = v,
                            "lease_ms" => dir.lease_ms = v,
                            "heartbeat_ms" => dir.heartbeat_ms = v,
                            "election_ms" => dir.election_ms = v,
                            _ => dir.snapshot_keep = v,
                        }
                    }
                    (
                        k @ ("tick_ms" | "lease_ms" | "heartbeat_ms" | "election_ms"
                        | "snapshot_keep"),
                        _,
                    ) => errors.push(format!("[directory] `{k}` must be a positive integer")),
                    (other, _) => errors.push(format!("[directory] unknown key `{other}`")),
                }
            }
            if !saw_replicas {
                errors.push("[directory] missing required key `replicas`".into());
            } else if dir.replicas.is_empty() {
                errors.push("[directory] `replicas` names no nodes".into());
            }
            for (i, r) in dir.replicas.iter().enumerate() {
                if !nodes.iter().any(|n| n.name == *r) {
                    errors.push(format!(
                        "[directory] replica `{r}` is not a declared [[node]]"
                    ));
                }
                if dir.replicas[..i].contains(r) {
                    errors.push(format!("[directory] replica `{r}` listed twice"));
                }
            }
            directory = Some(dir);
        }

        let mut slo = None;
        if let Some(table) = &raw.slo {
            let mut cfg = naplet_obs::SloConfig::default();
            for (key, value) in table {
                match (key.as_str(), value) {
                    (
                        k @ ("journey_p99_ms" | "dwell_p99_ms" | "wire_p99_ms" | "queue_p99_ms"
                        | "stall_p99_ms" | "directory_p99_ms"),
                        RawValue::Int(n),
                    ) if *n > 0 => {
                        let v = Some(*n as u64);
                        match k {
                            "journey_p99_ms" => cfg.journey_p99_ms = v,
                            "dwell_p99_ms" => cfg.dwell_p99_ms = v,
                            "wire_p99_ms" => cfg.wire_p99_ms = v,
                            "queue_p99_ms" => cfg.queue_p99_ms = v,
                            "stall_p99_ms" => cfg.stall_p99_ms = v,
                            _ => cfg.directory_p99_ms = v,
                        }
                    }
                    (
                        k @ ("journey_p99_ms" | "dwell_p99_ms" | "wire_p99_ms" | "queue_p99_ms"
                        | "stall_p99_ms" | "directory_p99_ms"),
                        _,
                    ) => errors.push(format!("[slo] `{k}` must be a positive integer")),
                    ("max_stall_pct", RawValue::Int(n)) if (0..=100).contains(n) => {
                        cfg.max_stall_pct = Some(*n as u64)
                    }
                    ("max_stall_pct", _) => errors
                        .push("[slo] `max_stall_pct` must be an integer percent (0-100)".into()),
                    (other, _) => errors.push(format!("[slo] unknown key `{other}`")),
                }
            }
            slo = Some(cfg);
        }

        if errors.is_empty() {
            Ok(BootstrapConfig {
                nodes,
                lease_ms,
                dwell_ms,
                max_frame_bytes,
                trace_dir,
                directory,
                slo,
            })
        } else {
            Err(NapletError::Parse(errors.join("\n")))
        }
    }

    /// Read and parse a bootstrap file from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<BootstrapConfig> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            NapletError::Parse(format!("cannot read config `{}`: {e}", path.display()))
        })?;
        BootstrapConfig::parse(&text)
    }

    /// Look up one node by name.
    pub fn node(&self, name: &str) -> Option<&NodeConfig> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Static peer map for one node: every *other* node's name and
    /// listen address.
    pub fn peers_for(&self, name: &str) -> BTreeMap<String, SocketAddr> {
        self.nodes
            .iter()
            .filter(|n| n.name != name)
            .map(|n| (n.name.clone(), n.listen))
            .collect()
    }

    /// Build the transport configuration for one named node.
    pub fn tcp_config(&self, name: &str) -> Result<TcpConfig> {
        let node = self
            .node(name)
            .ok_or_else(|| NapletError::NotFound(format!("no node `{name}` in config")))?;
        let mut cfg = TcpConfig::new(node.listen, self.peers_for(name));
        if let Some(max) = self.max_frame_bytes {
            cfg.max_frame_bytes = max;
        }
        Ok(cfg)
    }
}

/// A parsed value from the TOML subset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RawValue {
    Str(String),
    Int(i64),
    Bool(bool),
}

impl RawValue {
    fn as_str_lossy(&self) -> String {
        match self {
            RawValue::Str(s) => s.clone(),
            RawValue::Int(n) => n.to_string(),
            RawValue::Bool(b) => b.to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct RawConfig {
    cluster: BTreeMap<String, RawValue>,
    nodes: Vec<BTreeMap<String, RawValue>>,
    /// Line number of each `[[node]]` header, parallel to `nodes` —
    /// lets validation point at the offending definition.
    node_lines: Vec<usize>,
    directory: Option<BTreeMap<String, RawValue>>,
    slo: Option<BTreeMap<String, RawValue>>,
}

/// Which table subsequent `key = value` lines land in.
enum Section {
    None,
    Cluster,
    Node,
    Directory,
    Slo,
}

fn parse_toml_subset(text: &str) -> Result<RawConfig> {
    let mut raw = RawConfig::default();
    let mut section = Section::None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[node]]" {
            raw.nodes.push(BTreeMap::new());
            raw.node_lines.push(lineno);
            section = Section::Node;
        } else if line == "[cluster]" {
            section = Section::Cluster;
        } else if line == "[directory]" {
            if raw.directory.is_some() {
                return Err(NapletError::Parse(format!(
                    "line {lineno}: [directory] defined twice"
                )));
            }
            raw.directory = Some(BTreeMap::new());
            section = Section::Directory;
        } else if line == "[slo]" {
            if raw.slo.is_some() {
                return Err(NapletError::Parse(format!(
                    "line {lineno}: [slo] defined twice"
                )));
            }
            raw.slo = Some(BTreeMap::new());
            section = Section::Slo;
        } else if line.starts_with('[') {
            return Err(NapletError::Parse(format!(
                "line {lineno}: unknown section `{line}` (expected [cluster], [directory], [slo], or [[node]])"
            )));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = parse_value(value.trim())
                .map_err(|e| NapletError::Parse(format!("line {lineno}: {e}")))?;
            let table = match section {
                Section::Cluster => &mut raw.cluster,
                Section::Node => raw.nodes.last_mut().expect("section implies a node"),
                Section::Directory => raw.directory.as_mut().expect("section implies directory"),
                Section::Slo => raw.slo.as_mut().expect("section implies slo"),
                Section::None => {
                    return Err(NapletError::Parse(format!(
                        "line {lineno}: `{key}` appears before any [cluster] or [[node]] header"
                    )))
                }
            };
            if table.insert(key.clone(), value).is_some() {
                return Err(NapletError::Parse(format!(
                    "line {lineno}: key `{key}` set twice in the same table"
                )));
            }
        } else {
            return Err(NapletError::Parse(format!(
                "line {lineno}: cannot parse `{line}`"
            )));
        }
    }
    Ok(raw)
}

/// Drop a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> std::result::Result<RawValue, String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{s}`"))?;
        if inner.contains('"') {
            return Err(format!("embedded quote in `{s}`"));
        }
        return Ok(RawValue::Str(inner.to_string()));
    }
    match s {
        "true" => return Ok(RawValue::Bool(true)),
        "false" => return Ok(RawValue::Bool(false)),
        _ => {}
    }
    let digits: String = s.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<i64>()
        .map(RawValue::Int)
        .map_err(|_| format!("cannot parse value `{s}` (expected \"string\", integer, or bool)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a three-node localhost cluster
[cluster]
lease_ms = 60000
max_frame_bytes = 1048576  # 1 MiB

[[node]]
name = "alpha"
listen = "127.0.0.1:7401"
journal = "/tmp/naplet/alpha"

[[node]]
name = "beta"
listen = "127.0.0.1:7402"

[[node]]
name = "gamma"
listen = "127.0.0.1:7403"
"#;

    #[test]
    fn parses_a_full_cluster() {
        let cfg = BootstrapConfig::parse(GOOD).unwrap();
        assert_eq!(cfg.nodes.len(), 3);
        assert_eq!(cfg.lease_ms, Some(60_000));
        assert_eq!(cfg.max_frame_bytes, Some(1_048_576));
        let alpha = cfg.node("alpha").unwrap();
        assert_eq!(alpha.listen, "127.0.0.1:7401".parse().unwrap());
        assert_eq!(
            alpha.journal.as_deref(),
            Some(Path::new("/tmp/naplet/alpha"))
        );
        assert_eq!(cfg.node("beta").unwrap().journal, None);
        let peers = cfg.peers_for("alpha");
        assert_eq!(peers.len(), 2);
        assert!(peers.contains_key("beta") && peers.contains_key("gamma"));
    }

    #[test]
    fn tcp_config_carries_peers_and_limits() {
        let cfg = BootstrapConfig::parse(GOOD).unwrap();
        let tcp = cfg.tcp_config("beta").unwrap();
        assert_eq!(tcp.listen, "127.0.0.1:7402".parse().unwrap());
        assert_eq!(tcp.peers.len(), 2);
        assert_eq!(tcp.max_frame_bytes, 1_048_576);
        assert!(cfg.tcp_config("nobody").is_err());
    }

    #[test]
    fn duplicate_names_and_addresses_are_both_reported() {
        let bad = r#"
[[node]]
name = "a"
listen = "127.0.0.1:7401"
[[node]]
name = "a"
listen = "127.0.0.1:7401"
"#;
        let err = BootstrapConfig::parse(bad).unwrap_err().to_string();
        assert!(err.contains("duplicate node name `a`"), "{err}");
        assert!(err.contains("both listen on"), "{err}");
    }

    #[test]
    fn duplicate_errors_point_at_both_definitions() {
        // headers at lines 2, 6 and 10; `b` collides with `a` on the
        // listen address, `c` reuses the name `a`
        let bad = "\n\
[[node]]\n\
name = \"a\"\n\
listen = \"127.0.0.1:7401\"\n\
\n\
[[node]]\n\
name = \"b\"\n\
listen = \"127.0.0.1:7401\"\n\
\n\
[[node]]\n\
name = \"a\"\n\
listen = \"127.0.0.1:7403\"\n";
        let err = BootstrapConfig::parse(bad).unwrap_err().to_string();
        assert!(
            err.contains("line 10: duplicate node name `a` (first defined at line 2)"),
            "{err}"
        );
        assert!(
            err.contains("line 6: nodes `a` and `b` both listen on 127.0.0.1:7401"),
            "{err}"
        );
        assert!(err.contains("(first defined at line 2)"), "{err}");
        // both problems in the one error: fixable in a single pass
        assert_eq!(err.lines().count(), 2, "{err}");
    }

    #[test]
    fn directory_section_parses_and_maps_to_repl_config() {
        let text =
            format!("{GOOD}\n[directory]\nreplicas = \"alpha, beta, gamma\"\nheartbeat_ms = 250\n");
        let cfg = BootstrapConfig::parse(&text).unwrap();
        let dir = cfg.directory.as_ref().unwrap();
        assert_eq!(dir.replicas, vec!["alpha", "beta", "gamma"]);
        let repl = dir.repl_config();
        assert_eq!(repl.heartbeat_ms, 250);
        assert_eq!(
            repl.tick_ms,
            crate::repl::ReplConfig::new(Vec::new()).tick_ms
        );
        assert_eq!(repl.majority(), 2);
    }

    #[test]
    fn directory_validation_reports_every_problem() {
        let text = format!(
            "{GOOD}\n[directory]\nreplicas = \"alpha, ghost, alpha\"\ntick_ms = -5\nwat = 1\n"
        );
        let err = BootstrapConfig::parse(&text).unwrap_err().to_string();
        assert!(
            err.contains("replica `ghost` is not a declared [[node]]"),
            "{err}"
        );
        assert!(err.contains("replica `alpha` listed twice"), "{err}");
        assert!(
            err.contains("`tick_ms` must be a positive integer"),
            "{err}"
        );
        assert!(err.contains("unknown key `wat`"), "{err}");

        let err = BootstrapConfig::parse(&format!("{GOOD}\n[directory]\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing required key `replicas`"), "{err}");

        let err = BootstrapConfig::parse(&format!("{GOOD}\n[directory]\nreplicas = \", ,\"\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("`replicas` names no nodes"), "{err}");
    }

    #[test]
    fn slo_section_parses_into_budgets() {
        let text = format!(
            "{GOOD}\n[slo]\njourney_p99_ms = 5000\nstall_p99_ms = 1500\nmax_stall_pct = 40\n"
        );
        let cfg = BootstrapConfig::parse(&text).unwrap();
        let slo = cfg.slo.as_ref().unwrap();
        assert_eq!(slo.journey_p99_ms, Some(5_000));
        assert_eq!(slo.stall_p99_ms, Some(1_500));
        assert_eq!(slo.max_stall_pct, Some(40));
        assert_eq!(slo.dwell_p99_ms, None, "undeclared budgets stay unchecked");
        assert_eq!(
            BootstrapConfig::parse(GOOD).unwrap().slo,
            None,
            "no [slo] section, no budgets"
        );
    }

    #[test]
    fn slo_validation_reports_every_problem() {
        let text =
            format!("{GOOD}\n[slo]\njourney_p99_ms = \"fast\"\nmax_stall_pct = 250\nwat = 1\n");
        let err = BootstrapConfig::parse(&text).unwrap_err().to_string();
        assert!(
            err.contains("`journey_p99_ms` must be a positive integer"),
            "{err}"
        );
        assert!(
            err.contains("`max_stall_pct` must be an integer percent (0-100)"),
            "{err}"
        );
        assert!(err.contains("[slo] unknown key `wat`"), "{err}");

        let err = BootstrapConfig::parse(&format!("{GOOD}\n[slo]\n[slo]\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("[slo] defined twice"), "{err}");
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn unparseable_listen_address_is_a_clear_error() {
        let bad = "[[node]]\nname = \"a\"\nlisten = \"not-an-addr\"\n";
        let err = BootstrapConfig::parse(bad).unwrap_err().to_string();
        assert!(err.contains("`not-an-addr` does not parse"), "{err}");
    }

    #[test]
    fn missing_keys_unknown_keys_and_empty_config_are_errors() {
        let err = BootstrapConfig::parse("[[node]]\nname = \"a\"\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing required key `listen`"), "{err}");

        let err = BootstrapConfig::parse(
            "[[node]]\nname = \"a\"\nlisten = \"127.0.0.1:1\"\ncolor = \"red\"\n",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown key `color`"), "{err}");

        let err = BootstrapConfig::parse("# empty\n").unwrap_err().to_string();
        assert!(err.contains("no [[node]] entries"), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = BootstrapConfig::parse("[[node]]\nname = \"a\"\nwhat even is this\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3"), "{err}");

        let err = BootstrapConfig::parse("stray = 1\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("before any"), "{err}");

        let err = BootstrapConfig::parse("[mystery]\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = BootstrapConfig::parse(
            "[[node]]\nname = \"a#1\"  # the name really has a hash\nlisten = \"127.0.0.1:7409\"\n",
        )
        .unwrap();
        assert_eq!(cfg.nodes[0].name, "a#1");
    }
}
