//! NapletMonitor (paper §5.2).
//!
//! "On receiving a naplet, the monitor creates a NapletThread object
//! and a thread group for the execution of the naplet … The monitor
//! maintains the running state of the thread group and information
//! about consumed system resources including CPU time, memory size,
//! and network bandwidth. It schedules the execution of the naplets
//! according to resource management policies."
//!
//! Rust has no JVM thread groups; the equivalent confinement here is
//! budget enforcement at the execution boundary (DESIGN.md §2): CPU is
//! metered in VM gas (native behaviours are charged a configured
//! dwell), memory as the deep size of the carried state plus VM image,
//! and bandwidth as message bytes posted per visit. Exceeding a budget
//! raises `ResourceExhausted`, upon which the hosting server destroys
//! the naplet — the "control" half of monitoring and control.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::itinerary::ActionSpec;
use naplet_core::message::Mailbox;
use naplet_core::naplet::Naplet;

/// Scheduling priority of a naplet, derived from the `priority`
/// credential attribute (`high` / `low`; anything else is Normal).
/// The paper's monitor confines alien threads "to a limited range of
/// scheduling priorities"; tiers are this framework's rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Preferred agents: double CPU budget, dwell unaffected by load.
    High,
    /// Default tier.
    Normal,
    /// Background agents: half CPU budget, dwell stretched by load
    /// under the sharing policy.
    Low,
}

impl Priority {
    /// Derive the tier from a credential's `priority` attribute.
    pub fn of(cred: &naplet_core::credential::Credential) -> Priority {
        match cred.attribute("priority") {
            Some("high") => Priority::High,
            Some("low") => Priority::Low,
            _ => Priority::Normal,
        }
    }
}

/// How the monitor schedules co-resident naplets (paper §5.2:
/// "various scheduling policies will be tested in future releases" —
/// this is that hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulingPolicy {
    /// Every naplet gets the configured dwell and budget regardless of
    /// load or priority (the first release's behaviour).
    #[default]
    Fcfs,
    /// Priority sharing: CPU budgets scale by tier (High ×2, Low ×½)
    /// and Low-priority dwell stretches with the number of co-resident
    /// naplets (processor sharing for background agents).
    PrioritySharing,
}

/// Resource-management policy knobs (paper: "various scheduling
/// policies will be tested in future releases" — these are the
/// mechanism those policies configure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Gas granted per VM scheduling slice.
    pub gas_slice: u64,
    /// Total CPU budget (gas) per visit; exceeding it destroys the
    /// naplet.
    pub max_gas_per_visit: u64,
    /// Gas units that correspond to one millisecond of modelled
    /// execution time (drives visit dwell in virtual time).
    pub gas_per_ms: u64,
    /// Modelled execution time of one native `on_start` (native
    /// behaviours execute host code and are charged a flat dwell).
    pub native_dwell_ms: u64,
    /// Memory budget: max deep size (bytes) of carried state (+ VM
    /// image when present).
    pub max_memory_bytes: u64,
    /// Bandwidth budget: max message payload bytes posted per visit.
    pub max_msg_bytes_per_visit: u64,
    /// Scheduling policy across co-resident naplets.
    pub scheduling: SchedulingPolicy,
}

impl MonitorPolicy {
    /// Effective CPU budget (gas per visit) for a tier under the
    /// active scheduling policy.
    pub fn gas_budget_for(&self, priority: Priority) -> u64 {
        match (self.scheduling, priority) {
            (SchedulingPolicy::Fcfs, _) => self.max_gas_per_visit,
            (SchedulingPolicy::PrioritySharing, Priority::High) => {
                self.max_gas_per_visit.saturating_mul(2)
            }
            (SchedulingPolicy::PrioritySharing, Priority::Normal) => self.max_gas_per_visit,
            (SchedulingPolicy::PrioritySharing, Priority::Low) => self.max_gas_per_visit / 2,
        }
    }

    /// Effective dwell for a native visit given the tier and how many
    /// naplets currently share this server.
    pub fn dwell_for(&self, priority: Priority, residents: usize) -> u64 {
        match (self.scheduling, priority) {
            (SchedulingPolicy::PrioritySharing, Priority::Low) => {
                self.native_dwell_ms * residents.max(1) as u64
            }
            _ => self.native_dwell_ms,
        }
    }
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        MonitorPolicy {
            gas_slice: 50_000,
            max_gas_per_visit: 5_000_000,
            gas_per_ms: 1_000,
            native_dwell_ms: 5,
            max_memory_bytes: 16 * 1024 * 1024,
            max_msg_bytes_per_visit: 16 * 1024 * 1024,
            scheduling: SchedulingPolicy::Fcfs,
        }
    }
}

/// Running state of one hosted naplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Waiting for the directory to acknowledge arrival registration
    /// (execution is postponed until then, paper §4.1).
    AwaitingArrivalAck,
    /// Waiting for a cold codebase to be fetched (lazy code loading).
    AwaitingCode,
    /// Eligible to execute.
    Runnable,
    /// Suspended by a system message or the owner.
    Suspended,
    /// Business logic for this visit finished; departure pending.
    VisitDone,
}

/// The monitor's record for one resident naplet (the analogue of the
/// NapletThread + thread group).
#[derive(Debug)]
pub struct RunEntry {
    /// The hosted agent.
    pub naplet: Naplet,
    /// Its mailbox on this server.
    pub mailbox: Mailbox,
    /// Scheduling state.
    pub state: RunState,
    /// Post-action attached to the current visit.
    pub pending_action: Option<ActionSpec>,
    /// Gas consumed this visit.
    pub gas_this_visit: u64,
    /// Message bytes posted this visit.
    pub msg_bytes_this_visit: u64,
    /// Arrival time at this server.
    pub arrived_at: Millis,
}

/// Cumulative per-naplet resource consumption at one server (paper
/// §5.2: "information about consumed system resources including CPU
/// time, memory size, and network bandwidth"). Kept separately from
/// the run entries so it survives departure — the `figures` binary
/// reads it after journeys complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Completed visits at this server.
    pub visits: u64,
    /// CPU gas consumed across those visits.
    pub gas: u64,
    /// Message payload bytes posted across those visits (bandwidth).
    pub msg_bytes: u64,
    /// Largest observed deep state size in bytes (memory high-water).
    pub peak_state_bytes: u64,
}

/// The per-server monitor.
#[derive(Debug, Default)]
pub struct NapletMonitor {
    entries: HashMap<NapletId, RunEntry>,
    policy: MonitorPolicy,
    /// Naplets destroyed for exceeding budgets (id, resource).
    pub kills: Vec<(NapletId, String)>,
    /// Cumulative per-naplet accounting, keyed by id string so
    /// iteration is deterministic and records outlive eviction.
    usage: BTreeMap<String, ResourceUsage>,
}

impl NapletMonitor {
    /// Monitor with a policy.
    pub fn new(policy: MonitorPolicy) -> NapletMonitor {
        NapletMonitor {
            entries: HashMap::new(),
            policy,
            kills: Vec::new(),
            usage: BTreeMap::new(),
        }
    }

    /// Fold one finished visit into the cumulative accounting.
    pub fn account_visit(&mut self, id: &NapletId, gas: u64, msg_bytes: u64, state_bytes: u64) {
        let u = self.usage.entry(id.to_string()).or_default();
        u.visits += 1;
        u.gas += gas;
        u.msg_bytes += msg_bytes;
        u.peak_state_bytes = u.peak_state_bytes.max(state_bytes);
    }

    /// Cumulative per-naplet resource accounting (sorted by id).
    pub fn usage(&self) -> &BTreeMap<String, ResourceUsage> {
        &self.usage
    }

    /// The active policy.
    pub fn policy(&self) -> &MonitorPolicy {
        &self.policy
    }

    /// Replace the policy (dynamic reconfiguration).
    pub fn set_policy(&mut self, policy: MonitorPolicy) {
        self.policy = policy;
    }

    /// Admit an arriving naplet: create its run entry (the paper's
    /// NapletThread + group creation).
    pub fn admit(
        &mut self,
        naplet: Naplet,
        pending_action: Option<ActionSpec>,
        state: RunState,
        now: Millis,
    ) -> &mut RunEntry {
        let id = naplet.id().clone();
        self.entries.entry(id).or_insert(RunEntry {
            naplet,
            mailbox: Mailbox::new(),
            state,
            pending_action,
            gas_this_visit: 0,
            msg_bytes_this_visit: 0,
            arrived_at: now,
        })
    }

    /// Temporarily remove an entry for execution (split-borrow free).
    pub fn take(&mut self, id: &NapletId) -> Option<RunEntry> {
        self.entries.remove(id)
    }

    /// Put an entry back after execution.
    pub fn restore(&mut self, entry: RunEntry) {
        self.entries.insert(entry.naplet.id().clone(), entry);
    }

    /// Remove an entry permanently (departure or destruction).
    pub fn evict(&mut self, id: &NapletId) -> Option<RunEntry> {
        self.entries.remove(id)
    }

    /// Shared view of an entry.
    pub fn get(&self, id: &NapletId) -> Option<&RunEntry> {
        self.entries.get(id)
    }

    /// Mutable view of an entry.
    pub fn get_mut(&mut self, id: &NapletId) -> Option<&mut RunEntry> {
        self.entries.get_mut(id)
    }

    /// Ids of all resident naplets (sorted for determinism).
    pub fn resident(&self) -> Vec<NapletId> {
        let mut v: Vec<NapletId> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of resident naplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no naplets are hosted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Suspend a naplet (system message / owner control).
    pub fn suspend(&mut self, id: &NapletId) -> bool {
        match self.entries.get_mut(id) {
            Some(e) if e.state != RunState::Suspended => {
                e.state = RunState::Suspended;
                true
            }
            _ => false,
        }
    }

    /// Resume a suspended naplet; returns true when it was suspended.
    pub fn resume(&mut self, id: &NapletId) -> bool {
        match self.entries.get_mut(id) {
            Some(e) if e.state == RunState::Suspended => {
                e.state = RunState::VisitDone;
                true
            }
            _ => false,
        }
    }

    // ------------------- budget enforcement -------------------

    /// Charge gas against the visit CPU budget (tiered by the naplet's
    /// scheduling priority).
    pub fn charge_gas(entry: &mut RunEntry, policy: &MonitorPolicy, gas: u64) -> Result<()> {
        let budget = policy.gas_budget_for(Priority::of(entry.naplet.credential()));
        entry.gas_this_visit += gas;
        if entry.gas_this_visit > budget {
            Err(NapletError::ResourceExhausted {
                resource: "cpu".into(),
                detail: format!("visit used {} gas, budget {budget}", entry.gas_this_visit),
            })
        } else {
            Ok(())
        }
    }

    /// Check the memory budget after execution mutated state.
    pub fn check_memory(entry: &RunEntry, policy: &MonitorPolicy, extra: u64) -> Result<()> {
        let used = entry.naplet.state.deep_size() + extra;
        if used > policy.max_memory_bytes {
            Err(NapletError::ResourceExhausted {
                resource: "memory".into(),
                detail: format!(
                    "state uses {used} bytes, budget {}",
                    policy.max_memory_bytes
                ),
            })
        } else {
            Ok(())
        }
    }

    /// Charge posted message bytes against the bandwidth budget.
    pub fn charge_msg_bytes(
        entry: &mut RunEntry,
        policy: &MonitorPolicy,
        bytes: u64,
    ) -> Result<()> {
        entry.msg_bytes_this_visit += bytes;
        if entry.msg_bytes_this_visit > policy.max_msg_bytes_per_visit {
            Err(NapletError::ResourceExhausted {
                resource: "bandwidth".into(),
                detail: format!(
                    "visit posted {} bytes, budget {}",
                    entry.msg_bytes_this_visit, policy.max_msg_bytes_per_visit
                ),
            })
        } else {
            Ok(())
        }
    }

    /// Modelled dwell in ms for `gas` units of work.
    pub fn gas_to_ms(policy: &MonitorPolicy, gas: u64) -> u64 {
        gas.div_ceil(policy.gas_per_ms.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::credential::SigningKey;
    use naplet_core::itinerary::{Itinerary, Pattern};
    use naplet_core::naplet::AgentKind;
    use naplet_core::value::Value;

    fn naplet(ts: u64) -> Naplet {
        let key = SigningKey::new("u", b"k");
        let it = Itinerary::new(Pattern::singleton("s1")).unwrap();
        Naplet::create(
            &key,
            "u",
            "home",
            Millis(ts),
            "cb",
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap()
    }

    fn monitor() -> NapletMonitor {
        NapletMonitor::new(MonitorPolicy {
            gas_slice: 100,
            max_gas_per_visit: 500,
            gas_per_ms: 10,
            native_dwell_ms: 5,
            max_memory_bytes: 1000,
            max_msg_bytes_per_visit: 64,
            scheduling: SchedulingPolicy::Fcfs,
        })
    }

    #[test]
    fn admit_take_restore_evict() {
        let mut m = monitor();
        let n = naplet(1);
        let id = n.id().clone();
        m.admit(n, None, RunState::Runnable, Millis(0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.resident(), vec![id.clone()]);
        let e = m.take(&id).unwrap();
        assert!(m.is_empty());
        m.restore(e);
        assert!(m.get(&id).is_some());
        assert!(m.evict(&id).is_some());
        assert!(m.evict(&id).is_none());
    }

    #[test]
    fn suspend_resume_lifecycle() {
        let mut m = monitor();
        let n = naplet(1);
        let id = n.id().clone();
        m.admit(n, None, RunState::Runnable, Millis(0));
        assert!(m.suspend(&id));
        assert!(!m.suspend(&id)); // already suspended
        assert_eq!(m.get(&id).unwrap().state, RunState::Suspended);
        assert!(m.resume(&id));
        assert!(!m.resume(&id)); // not suspended anymore
        assert_eq!(m.get(&id).unwrap().state, RunState::VisitDone);
        // unknown ids are rejected
        assert!(!m.suspend(naplet(99).id()));
        assert!(!m.resume(naplet(99).id()));
    }

    #[test]
    fn gas_budget_enforced() {
        let m = monitor();
        let n = naplet(1);
        let mut e = RunEntry {
            naplet: n,
            mailbox: Mailbox::new(),
            state: RunState::Runnable,
            pending_action: None,
            gas_this_visit: 0,
            msg_bytes_this_visit: 0,
            arrived_at: Millis(0),
        };
        NapletMonitor::charge_gas(&mut e, m.policy(), 400).unwrap();
        let err = NapletMonitor::charge_gas(&mut e, m.policy(), 200).unwrap_err();
        assert_eq!(err.kind(), "resource");
    }

    #[test]
    fn memory_budget_enforced() {
        let m = monitor();
        let mut n = naplet(1);
        n.state.set("blob", Value::Bytes(vec![0; 2000]));
        let e = RunEntry {
            naplet: n,
            mailbox: Mailbox::new(),
            state: RunState::Runnable,
            pending_action: None,
            gas_this_visit: 0,
            msg_bytes_this_visit: 0,
            arrived_at: Millis(0),
        };
        assert!(NapletMonitor::check_memory(&e, m.policy(), 0).is_err());
    }

    #[test]
    fn bandwidth_budget_enforced() {
        let m = monitor();
        let mut e = RunEntry {
            naplet: naplet(1),
            mailbox: Mailbox::new(),
            state: RunState::Runnable,
            pending_action: None,
            gas_this_visit: 0,
            msg_bytes_this_visit: 0,
            arrived_at: Millis(0),
        };
        NapletMonitor::charge_msg_bytes(&mut e, m.policy(), 60).unwrap();
        assert!(NapletMonitor::charge_msg_bytes(&mut e, m.policy(), 10).is_err());
    }

    #[test]
    fn gas_time_mapping() {
        let m = monitor();
        assert_eq!(NapletMonitor::gas_to_ms(m.policy(), 0), 0);
        assert_eq!(NapletMonitor::gas_to_ms(m.policy(), 1), 1);
        assert_eq!(NapletMonitor::gas_to_ms(m.policy(), 10), 1);
        assert_eq!(NapletMonitor::gas_to_ms(m.policy(), 11), 2);
    }

    #[test]
    fn usage_accumulates_and_survives_eviction() {
        let mut m = monitor();
        let n = naplet(1);
        let id = n.id().clone();
        m.admit(n, None, RunState::Runnable, Millis(0));
        m.account_visit(&id, 100, 32, 500);
        m.evict(&id);
        m.account_visit(&id, 50, 0, 900);
        let u = m.usage().get(&id.to_string()).unwrap();
        assert_eq!(u.visits, 2);
        assert_eq!(u.gas, 150);
        assert_eq!(u.msg_bytes, 32);
        assert_eq!(u.peak_state_bytes, 900, "peak is a high-water mark");
    }

    #[test]
    fn admit_is_idempotent_per_id() {
        let mut m = monitor();
        let n = naplet(1);
        let id = n.id().clone();
        m.admit(n.clone(), None, RunState::Runnable, Millis(0));
        m.admit(
            n,
            Some(ActionSpec::ReportHome),
            RunState::Runnable,
            Millis(9),
        );
        assert_eq!(m.len(), 1);
        // first admit wins (double-arrival is a protocol anomaly)
        assert_eq!(m.get(&id).unwrap().arrived_at, Millis(0));
    }
}
