//! The deterministic consensus state machine (see module docs in
//! [`crate::repl`]).

use std::collections::{BTreeMap, BTreeSet};

use naplet_core::clock::Millis;
use naplet_core::codec;

use crate::directory::NapletDirectory;
use crate::journal::Journal;

use super::{host_hash, DirOp, ReplConfig, ReplEntry, ReplMsg, ReplNote};

/// Heartbeat rounds with nothing to replicate before the leader
/// announces idle and the replica set suspends its timers.
const IDLE_AFTER_ROUNDS: u32 = 2;

/// Entries shipped per `Append` while a laggard catches up.
const APPEND_BATCH: usize = 256;

/// A replica's current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepting replicated entries from a leader.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Replicating and committing the log.
    Leader,
}

impl Role {
    /// Stable lowercase label for status reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Leader => "leader",
        }
    }
}

/// What one `tick`/`receive`/`propose` call asks the host server to do.
#[derive(Debug, Default)]
pub struct ReplOut {
    /// Consensus messages to send: `(peer, msg)`.
    pub msgs: Vec<(String, ReplMsg)>,
    /// Ops newly committed and applied, in log order, with the
    /// propose→commit lag in ms when this replica was the proposer.
    pub committed: Vec<(u64, DirOp, Option<u64>)>,
    /// Observability notes (elections, leader changes, snapshots).
    pub notes: Vec<ReplNote>,
    /// Whether the replica wants its tick timer running. `false` means
    /// the core is suspended (cluster idle) and needs no timer until
    /// the next message or client operation wakes it.
    pub rearm: bool,
}

/// The per-replica consensus core. Pure and deterministic: all timing
/// comes in through `now`, all randomness is a per-host hash, and all
/// durability goes through the passed-in [`Journal`].
#[derive(Debug)]
pub struct ReplicaCore {
    host: String,
    cfg: ReplConfig,
    // persistent (journaled before use)
    term: u64,
    voted_for: Option<String>,
    /// Log entries above `snap_base` (index `snap_base + 1 + i`).
    log: Vec<ReplEntry>,
    snap_base: u64,
    snap_term: u64,
    // volatile
    role: Role,
    leader: Option<String>,
    lease_until: Millis,
    election_due: Millis,
    votes: BTreeSet<String>,
    next_index: BTreeMap<String, u64>,
    match_index: BTreeMap<String, u64>,
    /// Appends (or snapshots) sent to a peer and not yet answered.
    /// Proposals only open a new exchange when the peer has none in
    /// flight — new entries otherwise ride the ack-triggered batch —
    /// so a registration burst costs O(entries / APPEND_BATCH)
    /// round-trips per peer instead of one exchange per proposal.
    /// Heartbeats ignore (and reset) the window, so a lost reply
    /// never wedges a peer for longer than `heartbeat_ms`.
    inflight: BTreeMap<String, u32>,
    commit: u64,
    last_applied: u64,
    next_heartbeat: Millis,
    idle_streak: u32,
    suspended: bool,
    propose_at: BTreeMap<u64, Millis>,
    /// Tombstones: id → log index of its committed `Remove`. A
    /// `Register` that commits after the agent was deregistered (a
    /// straggling retry that outlived its journey) applies as a no-op,
    /// so a finished agent can never resurrect in the directory. Pure
    /// function of the applied log — identical on every replica.
    removed: BTreeMap<String, u64>,
    /// The committed directory: every applied `DirOp`'s outcome.
    pub state: NapletDirectory,
}

/// How many deregistration tombstones to retain (oldest pruned first).
const TOMBSTONE_KEEP: usize = 512;

impl ReplicaCore {
    /// Build (or recover) the replica for `host`, replaying any
    /// journaled consensus records: term/vote meta, the compaction
    /// snapshot, and log entries above it.
    pub fn recover(host: &str, cfg: ReplConfig, journal: &Journal) -> ReplicaCore {
        let (term, voted_for) = journal
            .get_repl("meta")
            .and_then(|b| codec::from_bytes::<(u64, Option<String>)>(&b).ok())
            .unwrap_or((0, None));
        let mut state = NapletDirectory::new();
        let mut removed = BTreeMap::new();
        let (snap_base, snap_term) = match journal.get_repl("snap").and_then(|b| {
            codec::from_bytes::<(
                u64,
                u64,
                Vec<(naplet_core::id::NapletId, crate::directory::DirEntry)>,
                Vec<(String, u64)>,
            )>(&b)
            .ok()
        }) {
            Some((base, t, entries, tombs)) => {
                state.install(entries);
                removed = tombs.into_iter().collect();
                (base, t)
            }
            None => (0, 0),
        };
        let mut numbered: Vec<(u64, ReplEntry)> = journal
            .repl_keys()
            .iter()
            .filter_map(|k| {
                let idx = u64::from_str_radix(k.strip_prefix("e/")?, 16).ok()?;
                let entry = codec::from_bytes::<ReplEntry>(&journal.get_repl(k)?).ok()?;
                Some((idx, entry))
            })
            .collect();
        numbered.sort_by_key(|(i, _)| *i);
        let mut log = Vec::with_capacity(numbered.len());
        let mut expect = snap_base + 1;
        for (idx, entry) in numbered {
            if idx < expect {
                continue; // compacted stragglers below the snapshot
            }
            if idx != expect {
                break; // gap: a torn tail is unreachable, drop it
            }
            log.push(entry);
            expect += 1;
        }
        let offset = host_hash(host) % cfg.election_ms.max(1);
        ReplicaCore {
            host: host.to_string(),
            election_due: Millis(cfg.election_ms + offset),
            cfg,
            term,
            voted_for,
            log,
            snap_base,
            snap_term,
            role: Role::Follower,
            leader: None,
            lease_until: Millis(0),
            votes: BTreeSet::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            inflight: BTreeMap::new(),
            commit: snap_base,
            last_applied: snap_base,
            next_heartbeat: Millis(0),
            idle_streak: 0,
            suspended: false,
            propose_at: BTreeMap::new(),
            removed,
            state,
        }
    }

    /// This replica's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The configured replica set.
    pub fn config(&self) -> &ReplConfig {
        &self.cfg
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// Last log index.
    pub fn last_index(&self) -> u64 {
        self.snap_base + self.log.len() as u64
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// The leader this replica believes in (itself when leading).
    pub fn leader_hint(&self) -> Option<&str> {
        self.leader.as_deref()
    }

    /// Whether the core's timers are suspended (cluster idle).
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    fn peers(&self) -> impl Iterator<Item = &String> {
        self.cfg.replicas.iter().filter(move |r| **r != self.host)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index == self.snap_base {
            self.snap_term
        } else if index > self.snap_base && index <= self.last_index() {
            self.log[(index - self.snap_base - 1) as usize].term
        } else {
            0
        }
    }

    fn election_timeout(&self) -> u64 {
        self.cfg.election_ms + host_hash(&self.host) % self.cfg.election_ms.max(1)
    }

    fn persist_meta(&self, journal: &mut Journal) {
        if let Ok(bytes) = codec::to_bytes(&(self.term, self.voted_for.clone())) {
            let _ = journal.put_repl("meta", &bytes);
        }
    }

    fn persist_entry(&self, journal: &mut Journal, index: u64) {
        let entry = &self.log[(index - self.snap_base - 1) as usize];
        if let Ok(bytes) = codec::to_bytes(entry) {
            let _ = journal.put_repl(&format!("e/{index:016x}"), &bytes);
        }
    }

    fn step_down(&mut self, term: u64, journal: &mut Journal) {
        let was = self.term;
        self.term = term;
        self.role = Role::Follower;
        if term > was {
            self.voted_for = None;
        }
        self.leader = None;
        self.votes.clear();
        self.persist_meta(journal);
    }

    /// Wake a suspended core because client traffic arrived (a
    /// registration or query reached this replica). Resets the
    /// election clock so a dead leader is detected from now, not from
    /// whenever the cluster went idle. Returns `true` when the host
    /// server must restart the tick timer.
    pub fn client_activity(&mut self, now: Millis) -> bool {
        if !self.suspended {
            return false;
        }
        self.suspended = false;
        self.idle_streak = 0;
        if self.role != Role::Leader {
            self.election_due = Millis(now.0 + self.election_timeout());
        } else {
            self.next_heartbeat = now;
        }
        true
    }

    /// Propose an operation (leader only). Returns the assigned log
    /// index — `None` when this replica is not the leader, in which
    /// case the caller forwards to [`Self::leader_hint`] or drops for
    /// the client's retry machinery to handle.
    pub fn propose(
        &mut self,
        op: DirOp,
        now: Millis,
        journal: &mut Journal,
    ) -> (Option<u64>, ReplOut) {
        let mut out = ReplOut::default();
        if self.role != Role::Leader {
            return (None, out);
        }
        if self.suspended {
            self.suspended = false;
            self.idle_streak = 0;
        }
        self.log.push(ReplEntry {
            term: self.term,
            op,
        });
        let index = self.last_index();
        self.persist_entry(journal, index);
        self.propose_at.insert(index, now);
        if self.cfg.replicas.len() == 1 {
            self.advance_commit(now, journal, &mut out);
        } else {
            // only open a new exchange with peers that have nothing in
            // flight; busy peers pick the entry up from the batch their
            // next ack triggers (or the next heartbeat). The heartbeat
            // cadence is deliberately NOT pushed out here: it is the
            // loss-recovery path, and a steady proposal stream must not
            // be able to defer it forever.
            for peer in self.cfg.replicas.clone() {
                if peer != self.host && self.inflight.get(&peer).copied().unwrap_or(0) == 0 {
                    self.send_append(&peer, false, &mut out);
                }
            }
        }
        out.rearm = true;
        (Some(index), out)
    }

    /// Timer tick: drive elections (follower/candidate) or heartbeats
    /// (leader). The caller re-arms the tick only while `out.rearm`.
    pub fn tick(&mut self, now: Millis, journal: &mut Journal) -> ReplOut {
        let mut out = ReplOut::default();
        if self.suspended {
            return out;
        }
        out.rearm = true;
        match self.role {
            Role::Follower | Role::Candidate => {
                if now >= self.election_due {
                    self.start_election(now, journal, &mut out);
                }
            }
            Role::Leader => {
                if now >= self.next_heartbeat {
                    let caught_up = self.commit == self.last_index()
                        && self.peers().all(|p| {
                            self.match_index.get(p).copied().unwrap_or(0) == self.last_index()
                        });
                    if caught_up {
                        self.idle_streak += 1;
                    } else {
                        self.idle_streak = 0;
                    }
                    let idle = self.idle_streak >= IDLE_AFTER_ROUNDS;
                    self.broadcast_appends(idle, &mut out);
                    self.next_heartbeat = Millis(now.0 + self.cfg.heartbeat_ms);
                    if idle {
                        self.suspended = true;
                        out.rearm = false;
                    }
                }
            }
        }
        out
    }

    fn start_election(&mut self, now: Millis, journal: &mut Journal, out: &mut ReplOut) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.host.clone());
        self.leader = None;
        self.votes = BTreeSet::from([self.host.clone()]);
        self.persist_meta(journal);
        self.election_due = Millis(now.0 + self.election_timeout());
        out.notes
            .push(ReplNote::ElectionStarted { term: self.term });
        if self.votes.len() >= self.cfg.majority() {
            self.become_leader(now, journal, out);
            return;
        }
        let req = ReplMsg::VoteRequest {
            term: self.term,
            candidate: self.host.clone(),
            last_log_index: self.last_index(),
            last_log_term: self.term_at(self.last_index()),
        };
        for peer in self.cfg.replicas.clone() {
            if peer != self.host {
                out.msgs.push((peer, req.clone()));
            }
        }
    }

    fn become_leader(&mut self, now: Millis, journal: &mut Journal, out: &mut ReplOut) {
        self.role = Role::Leader;
        self.leader = Some(self.host.clone());
        self.idle_streak = 0;
        let next = self.last_index() + 1;
        self.next_index = self.peers().map(|p| (p.clone(), next)).collect();
        self.match_index = self.peers().map(|p| (p.clone(), 0)).collect();
        out.notes.push(ReplNote::LeaderElected { term: self.term });
        // a no-op of the new term lets the commit index catch up to
        // the whole inherited log as soon as a majority acks it
        self.log.push(ReplEntry {
            term: self.term,
            op: DirOp::Noop,
        });
        self.persist_entry(journal, self.last_index());
        if self.cfg.replicas.len() == 1 {
            self.advance_commit(now, journal, out);
        } else {
            self.broadcast_appends(false, out);
        }
        self.next_heartbeat = Millis(now.0 + self.cfg.heartbeat_ms);
    }

    fn append_for(&self, peer: &str, idle: bool) -> ReplMsg {
        let ni = self.next_index.get(peer).copied().unwrap_or(1).max(1);
        if ni <= self.snap_base {
            return ReplMsg::Snapshot {
                term: self.term,
                leader: self.host.clone(),
                last_index: self.snap_base,
                last_term: self.snap_term,
                state: self.state.entries(),
                removed: self.removed.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            };
        }
        let prev_index = ni - 1;
        let start = (ni - self.snap_base - 1) as usize;
        let end = (start + APPEND_BATCH).min(self.log.len());
        ReplMsg::Append {
            term: self.term,
            leader: self.host.clone(),
            prev_index,
            prev_term: self.term_at(prev_index),
            entries: self.log[start..end].to_vec(),
            commit: self.commit,
            idle,
        }
    }

    /// Emit one append (or snapshot) to `peer` and count it in flight.
    fn send_append(&mut self, peer: &str, idle: bool, out: &mut ReplOut) {
        let msg = self.append_for(peer, idle);
        *self.inflight.entry(peer.to_string()).or_insert(0) += 1;
        out.msgs.push((peer.to_string(), msg));
    }

    fn broadcast_appends(&mut self, idle: bool, out: &mut ReplOut) {
        for peer in self.cfg.replicas.clone() {
            if peer != self.host {
                // a heartbeat supersedes whatever was in flight: if a
                // reply was lost, this is what un-wedges the window
                let msg = self.append_for(&peer, idle);
                self.inflight.insert(peer.clone(), 1);
                out.msgs.push((peer, msg));
            }
        }
    }

    /// Handle a consensus message from `from`.
    pub fn receive(
        &mut self,
        now: Millis,
        from: &str,
        msg: ReplMsg,
        journal: &mut Journal,
    ) -> ReplOut {
        let mut out = ReplOut::default();
        match msg {
            ReplMsg::VoteRequest {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                // leader-lease suppression: while the current leader's
                // heartbeats are fresh, refuse third-party campaigns
                // without even adopting their (possibly inflated) term
                if self.leader.is_some()
                    && self.leader.as_deref() != Some(candidate.as_str())
                    && now < self.lease_until
                {
                    out.msgs.push((
                        from.to_string(),
                        ReplMsg::VoteReply {
                            term: self.term,
                            granted: false,
                        },
                    ));
                    return out;
                }
                if term > self.term {
                    self.step_down(term, journal);
                }
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.term_at(self.last_index()), self.last_index());
                let vote_free = match &self.voted_for {
                    None => true,
                    Some(v) => *v == candidate,
                };
                let granted =
                    term == self.term && self.role != Role::Leader && up_to_date && vote_free;
                if granted {
                    self.voted_for = Some(candidate.clone());
                    self.persist_meta(journal);
                    // granting resets our own clock — don't campaign
                    // against someone we just endorsed
                    self.election_due = Millis(now.0 + self.election_timeout());
                    self.wake(now, &mut out);
                }
                out.msgs.push((
                    from.to_string(),
                    ReplMsg::VoteReply {
                        term: self.term,
                        granted,
                    },
                ));
            }
            ReplMsg::VoteReply { term, granted } => {
                if term > self.term {
                    self.step_down(term, journal);
                    return out;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes.insert(from.to_string());
                    if self.votes.len() >= self.cfg.majority() {
                        self.wake(now, &mut out);
                        self.become_leader(now, journal, &mut out);
                    }
                }
            }
            ReplMsg::Append {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                commit,
                idle,
            } => {
                if term < self.term {
                    out.msgs.push((
                        from.to_string(),
                        ReplMsg::AppendReply {
                            term: self.term,
                            ok: false,
                            match_index: 0,
                        },
                    ));
                    return out;
                }
                if term > self.term || self.role != Role::Follower {
                    self.step_down(term, journal);
                }
                if self.leader.as_deref() != Some(leader.as_str()) {
                    self.leader = Some(leader.clone());
                    out.notes.push(ReplNote::LeaderChanged {
                        term,
                        leader: leader.clone(),
                    });
                }
                self.wake(now, &mut out);
                self.lease_until = Millis(now.0 + self.cfg.lease_ms);
                self.election_due = Millis(now.0 + self.election_timeout());
                let reply = if prev_index > self.last_index()
                    || (prev_index > self.snap_base && self.term_at(prev_index) != prev_term)
                {
                    // divergent or missing context: ask the leader to
                    // walk back (at most to our last index)
                    ReplMsg::AppendReply {
                        term: self.term,
                        ok: false,
                        match_index: self.last_index().min(prev_index.saturating_sub(1)),
                    }
                } else if prev_index < self.snap_base {
                    // we compacted beyond this range; everything below
                    // the snapshot base is already committed state
                    ReplMsg::AppendReply {
                        term: self.term,
                        ok: true,
                        match_index: self.snap_base,
                    }
                } else {
                    let mut idx = prev_index;
                    for entry in entries {
                        idx += 1;
                        if idx <= self.last_index() {
                            if self.term_at(idx) == entry.term {
                                continue; // already have it
                            }
                            // conflict: truncate our tail, journal too
                            for gone in idx..=self.last_index() {
                                let _ = journal.remove_repl(&format!("e/{gone:016x}"));
                            }
                            self.log.truncate((idx - self.snap_base - 1) as usize);
                        }
                        self.log.push(entry);
                        self.persist_entry(journal, idx);
                    }
                    let new_commit = commit.min(self.last_index());
                    if new_commit > self.commit {
                        self.commit = new_commit;
                        self.apply(now, journal, &mut out);
                    }
                    // suspend with the cluster only once fully caught
                    // up — otherwise keep our clocks running so the
                    // leader's catch-up traffic is answered promptly
                    if idle && idx == self.last_index() && self.commit == self.last_index() {
                        self.suspended = true;
                        out.rearm = false;
                    }
                    ReplMsg::AppendReply {
                        term: self.term,
                        ok: true,
                        match_index: idx,
                    }
                };
                out.msgs.push((from.to_string(), reply));
            }
            ReplMsg::AppendReply {
                term,
                ok,
                match_index,
            } => {
                if let Some(n) = self.inflight.get_mut(from) {
                    *n = n.saturating_sub(1);
                }
                if term > self.term {
                    self.step_down(term, journal);
                    return out;
                }
                if self.role != Role::Leader || term != self.term {
                    return out;
                }
                if ok {
                    let m = self.match_index.entry(from.to_string()).or_insert(0);
                    let advanced = match_index > *m;
                    *m = (*m).max(match_index);
                    self.next_index.insert(from.to_string(), match_index + 1);
                    if advanced {
                        self.advance_commit(now, journal, &mut out);
                    }
                    if match_index < self.last_index() {
                        // laggard mid-catch-up: ship the next batch
                        // immediately instead of waiting a heartbeat
                        self.wake(now, &mut out);
                        self.send_append(from, false, &mut out);
                    }
                } else {
                    self.wake(now, &mut out);
                    let ni = self.next_index.entry(from.to_string()).or_insert(1);
                    *ni = (*ni - 1).clamp(1, match_index + 1);
                    self.send_append(from, false, &mut out);
                }
            }
            ReplMsg::Snapshot {
                term,
                leader,
                last_index,
                last_term,
                state,
                removed,
            } => {
                if term < self.term {
                    out.msgs.push((
                        from.to_string(),
                        ReplMsg::SnapshotReply {
                            term: self.term,
                            last_index: 0,
                        },
                    ));
                    return out;
                }
                if term > self.term || self.role != Role::Follower {
                    self.step_down(term, journal);
                }
                self.leader = Some(leader);
                self.wake(now, &mut out);
                self.lease_until = Millis(now.0 + self.cfg.lease_ms);
                self.election_due = Millis(now.0 + self.election_timeout());
                if last_index > self.commit {
                    for gone in (self.snap_base + 1)..=self.last_index() {
                        let _ = journal.remove_repl(&format!("e/{gone:016x}"));
                    }
                    self.log.clear();
                    self.state.install(state);
                    self.removed = removed.into_iter().collect();
                    self.snap_base = last_index;
                    self.snap_term = last_term;
                    self.commit = last_index;
                    self.last_applied = last_index;
                    self.persist_snapshot(journal);
                    out.notes
                        .push(ReplNote::SnapshotInstalled { index: last_index });
                }
                out.msgs.push((
                    from.to_string(),
                    ReplMsg::SnapshotReply {
                        term: self.term,
                        last_index: self.snap_base,
                    },
                ));
            }
            ReplMsg::SnapshotReply { term, last_index } => {
                if let Some(n) = self.inflight.get_mut(from) {
                    *n = n.saturating_sub(1);
                }
                if term > self.term {
                    self.step_down(term, journal);
                    return out;
                }
                if self.role == Role::Leader && term == self.term {
                    self.match_index.insert(from.to_string(), last_index);
                    self.next_index.insert(from.to_string(), last_index + 1);
                    self.wake(now, &mut out);
                    if last_index < self.last_index() {
                        self.send_append(from, false, &mut out);
                    }
                }
            }
        }
        out
    }

    fn wake(&mut self, _now: Millis, out: &mut ReplOut) {
        if self.suspended {
            self.suspended = false;
            self.idle_streak = 0;
        }
        out.rearm = true;
    }

    fn advance_commit(&mut self, now: Millis, journal: &mut Journal, out: &mut ReplOut) {
        let majority = self.cfg.majority();
        let mut n = self.last_index();
        while n > self.commit {
            if self.term_at(n) == self.term {
                let acks = 1 + self
                    .peers()
                    .filter(|p| self.match_index.get(*p).copied().unwrap_or(0) >= n)
                    .count();
                if acks >= majority {
                    self.commit = n;
                    break;
                }
            }
            n -= 1;
        }
        if self.commit > self.last_applied {
            self.apply(now, journal, out);
        }
    }

    fn apply(&mut self, now: Millis, journal: &mut Journal, out: &mut ReplOut) {
        while self.last_applied < self.commit {
            self.last_applied += 1;
            let idx = self.last_applied;
            let entry = self.log[(idx - self.snap_base - 1) as usize].clone();
            let lag = self.propose_at.remove(&idx).map(|t| now.since(t));
            match &entry.op {
                DirOp::Register {
                    id,
                    host,
                    event,
                    at,
                } => {
                    if self.removed.contains_key(&id.to_string()) {
                        // straggling retry of a deregistered agent:
                        // apply (and surface) nothing — resurrection
                        // would leave permanent garbage in the state
                        continue;
                    }
                    self.state.register(id, host, *event, *at);
                }
                DirOp::Remove { id } => {
                    self.state.remove(id);
                    self.removed.insert(id.to_string(), idx);
                    if self.removed.len() > TOMBSTONE_KEEP {
                        // prune the oldest removals (smallest index)
                        let mut aged: Vec<(u64, String)> =
                            self.removed.iter().map(|(k, v)| (*v, k.clone())).collect();
                        aged.sort();
                        for (_, k) in aged.iter().take(aged.len() - TOMBSTONE_KEEP) {
                            self.removed.remove(k);
                        }
                    }
                }
                DirOp::Noop => {}
            }
            out.committed.push((idx, entry.op, lag));
        }
        self.maybe_compact(journal);
    }

    fn maybe_compact(&mut self, journal: &mut Journal) {
        if self.last_applied - self.snap_base <= self.cfg.snapshot_keep {
            return;
        }
        let mut new_base = self.last_applied;
        if self.role == Role::Leader {
            // never compact entries a live follower still needs: during
            // a registration storm a follower is legitimately a few
            // batches behind, and re-sending those entries as appends
            // is far cheaper than full-state snapshot installs. A
            // replica more than `catchup_keep` behind stops being
            // protected and will be caught up by snapshot.
            let floor = self
                .peers()
                .map(|p| self.match_index.get(p).copied().unwrap_or(0))
                .min()
                .unwrap_or(new_base);
            new_base =
                new_base.min(floor.max(self.last_applied.saturating_sub(self.cfg.catchup_keep)));
        }
        // compact in snapshot_keep-sized chunks: re-serializing the
        // full snapshot for every small advance of the laggard floor
        // would itself be O(state) per ack batch
        if new_base <= self.snap_base || new_base - self.snap_base <= self.cfg.snapshot_keep {
            return;
        }
        for gone in (self.snap_base + 1)..=new_base {
            let _ = journal.remove_repl(&format!("e/{gone:016x}"));
        }
        self.snap_term = self.term_at(new_base);
        self.log.drain(..(new_base - self.snap_base) as usize);
        self.snap_base = new_base;
        self.persist_snapshot(journal);
    }

    fn persist_snapshot(&self, journal: &mut Journal) {
        let removed: Vec<(String, u64)> =
            self.removed.iter().map(|(k, v)| (k.clone(), *v)).collect();
        if let Ok(bytes) = codec::to_bytes(&(
            self.snap_base,
            self.snap_term,
            self.state.entries(),
            removed,
        )) {
            let _ = journal.put_repl("snap", &bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirEvent;
    use naplet_core::id::NapletId;

    const HOSTS: [&str; 3] = ["d0", "d1", "d2"];

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    /// A tiny deterministic cluster driver: replicas exchange messages
    /// through an in-order queue, ticked in lockstep. `down` replicas
    /// silently eat their traffic (frames to a crashed host drop).
    struct Cluster {
        cores: BTreeMap<String, (ReplicaCore, Journal)>,
        inbox: Vec<(String, String, ReplMsg)>,
        down: BTreeSet<String>,
        now: Millis,
        notes: Vec<(String, ReplNote)>,
        committed: BTreeMap<String, Vec<(u64, DirOp)>>,
    }

    impl Cluster {
        fn new() -> Cluster {
            let replicas: Vec<String> = HOSTS.iter().map(|h| h.to_string()).collect();
            let cores = HOSTS
                .iter()
                .map(|h| {
                    let journal = Journal::in_memory();
                    let mut cfg = ReplConfig::new(replicas.clone());
                    cfg.snapshot_keep = 8;
                    cfg.catchup_keep = 8;
                    let core = ReplicaCore::recover(h, cfg, &journal);
                    (h.to_string(), (core, journal))
                })
                .collect();
            Cluster {
                cores,
                inbox: Vec::new(),
                down: BTreeSet::new(),
                now: Millis(0),
                notes: Vec::new(),
                committed: BTreeMap::new(),
            }
        }

        fn absorb(&mut self, host: &str, out: ReplOut) {
            for (to, msg) in out.msgs {
                self.inbox.push((host.to_string(), to, msg));
            }
            for note in out.notes {
                self.notes.push((host.to_string(), note));
            }
            let sink = self.committed.entry(host.to_string()).or_default();
            for (idx, op, _) in out.committed {
                sink.push((idx, op));
            }
        }

        /// One round: deliver every queued message, then tick everyone.
        fn round(&mut self) {
            self.now = Millis(self.now.0 + 25);
            let pending = std::mem::take(&mut self.inbox);
            for (from, to, msg) in pending {
                if self.down.contains(&to) {
                    continue;
                }
                let now = self.now;
                let (core, journal) = self.cores.get_mut(&to).unwrap();
                let out = core.receive(now, &from, msg, journal);
                self.absorb(&to.clone(), out);
            }
            let hosts: Vec<String> = self.cores.keys().cloned().collect();
            for host in hosts {
                if self.down.contains(&host) {
                    continue;
                }
                let now = self.now;
                let (core, journal) = self.cores.get_mut(&host).unwrap();
                let out = core.tick(now, journal);
                self.absorb(&host, out);
            }
        }

        fn run_rounds(&mut self, n: usize) {
            for _ in 0..n {
                self.round();
            }
        }

        fn leader(&self) -> Option<String> {
            self.cores
                .iter()
                .filter(|(h, (c, _))| c.is_leader() && !self.down.contains(*h))
                .map(|(h, _)| h.clone())
                .next()
        }

        fn await_leader(&mut self) -> String {
            for _ in 0..200 {
                if let Some(l) = self.leader() {
                    return l;
                }
                self.round();
            }
            panic!("no leader elected in 200 rounds");
        }

        fn propose(&mut self, host: &str, op: DirOp) -> Option<u64> {
            let now = self.now;
            let (core, journal) = self.cores.get_mut(host).unwrap();
            let (idx, out) = core.propose(op, now, journal);
            self.absorb(host, out);
            idx
        }

        fn crash(&mut self, host: &str) {
            self.down.insert(host.to_string());
            self.inbox.retain(|(_, to, _)| to != host);
        }

        /// Restart from the journal alone — exactly what a real crash
        /// preserves.
        fn restart(&mut self, host: &str) {
            self.down.remove(host);
            let (old, journal) = self.cores.remove(host).unwrap();
            let cfg = old.config().clone();
            drop(old);
            let core = ReplicaCore::recover(host, cfg, &journal);
            self.cores.insert(host.to_string(), (core, journal));
        }
    }

    #[test]
    fn elects_exactly_one_leader_and_suspends_when_idle() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        c.run_rounds(40);
        assert_eq!(c.leader(), Some(leader.clone()), "leadership is stable");
        let leaders: Vec<&String> = c
            .cores
            .iter()
            .filter(|(_, (core, _))| core.is_leader())
            .map(|(h, _)| h)
            .collect();
        assert_eq!(leaders.len(), 1);
        // with nothing to replicate the whole set suspends its timers
        assert!(
            c.cores.values().all(|(core, _)| core.is_suspended()),
            "idle cluster must quiesce"
        );
        assert!(c.inbox.is_empty(), "no traffic while suspended");
    }

    #[test]
    fn never_two_leaders_in_one_term() {
        let mut c = Cluster::new();
        let first = c.await_leader();
        c.run_rounds(10);
        c.crash(&first);
        // wake the survivors (client traffic would in the real stack)
        for h in HOSTS {
            if h != first {
                let now = c.now;
                let (core, _) = c.cores.get_mut(h).unwrap();
                core.client_activity(now);
            }
        }
        c.await_leader();
        c.restart(&first);
        c.run_rounds(60);
        let mut by_term: BTreeMap<u64, BTreeSet<String>> = BTreeMap::new();
        for (host, note) in &c.notes {
            if let ReplNote::LeaderElected { term } = note {
                by_term.entry(*term).or_default().insert(host.clone());
            }
        }
        for (term, leaders) in by_term {
            assert_eq!(leaders.len(), 1, "term {term} had leaders {leaders:?}");
        }
    }

    #[test]
    fn committed_ops_apply_on_every_replica() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        for k in 0..5u64 {
            c.propose(
                &leader,
                DirOp::Register {
                    id: nid(k),
                    host: format!("s{k}"),
                    event: DirEvent::Arrival,
                    at: c.now,
                },
            )
            .expect("leader accepts proposals");
            c.run_rounds(3);
        }
        c.run_rounds(10);
        for (host, (core, _)) in &c.cores {
            for k in 0..5u64 {
                let e = core
                    .state
                    .lookup(&nid(k))
                    .unwrap_or_else(|| panic!("{host} lost registration {k}"));
                assert_eq!(e.host, format!("s{k}"));
            }
        }
    }

    #[test]
    fn followers_refuse_votes_while_leader_lease_is_fresh() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        c.run_rounds(2);
        let intruder = HOSTS.iter().find(|h| **h != leader).unwrap();
        let victim = HOSTS
            .iter()
            .find(|h| **h != leader && **h != *intruder)
            .unwrap();
        let now = c.now;
        let (core, journal) = c.cores.get_mut(*victim).unwrap();
        let term_before = core.term();
        let out = core.receive(
            now,
            intruder,
            ReplMsg::VoteRequest {
                term: term_before + 10,
                candidate: intruder.to_string(),
                last_log_index: 100,
                last_log_term: 100,
            },
            journal,
        );
        assert_eq!(
            core.term(),
            term_before,
            "lease refusal must not adopt the term"
        );
        assert!(matches!(
            out.msgs.as_slice(),
            [(_, ReplMsg::VoteReply { granted: false, .. })]
        ));
    }

    #[test]
    fn no_committed_registration_lost_across_leader_crash() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        let idx = c
            .propose(
                &leader,
                DirOp::Register {
                    id: nid(7),
                    host: "s7".into(),
                    event: DirEvent::Arrival,
                    at: c.now,
                },
            )
            .unwrap();
        // run until the leader reports the commit (majority ack)
        for _ in 0..50 {
            c.round();
            if c.committed
                .get(&leader)
                .is_some_and(|v| v.iter().any(|(i, _)| *i == idx))
            {
                break;
            }
        }
        assert!(
            c.committed[&leader].iter().any(|(i, _)| *i == idx),
            "registration must commit"
        );
        c.crash(&leader);
        for h in HOSTS {
            if h != leader {
                let now = c.now;
                let (core, _) = c.cores.get_mut(h).unwrap();
                core.client_activity(now);
            }
        }
        let new_leader = c.await_leader();
        assert_ne!(new_leader, leader);
        c.run_rounds(20);
        let (core, _) = &c.cores[&new_leader];
        assert_eq!(
            core.state.lookup(&nid(7)).map(|e| e.host.as_str()),
            Some("s7"),
            "committed registration survived failover"
        );
    }

    #[test]
    fn journal_recovery_preserves_term_vote_and_log() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        for k in 0..3u64 {
            c.propose(
                &leader,
                DirOp::Register {
                    id: nid(k),
                    host: "sx".into(),
                    event: DirEvent::Arrival,
                    at: c.now,
                },
            );
            c.run_rounds(2);
        }
        c.run_rounds(10);
        let follower = HOSTS.iter().find(|h| **h != leader).unwrap().to_string();
        let (before_term, before_last) = {
            let (core, _) = &c.cores[&follower];
            (core.term(), core.last_index())
        };
        c.crash(&follower);
        c.restart(&follower);
        let (core, _) = &c.cores[&follower];
        assert_eq!(core.term(), before_term);
        assert_eq!(core.last_index(), before_last);
        // rejoin: the leader's next heartbeats re-commit everything
        let now = c.now;
        let (core, _) = c.cores.get_mut(&follower).unwrap();
        core.client_activity(now);
        c.run_rounds(80);
        let (core, _) = &c.cores[&follower];
        for k in 0..3u64 {
            assert!(core.state.lookup(&nid(k)).is_some());
        }
    }

    #[test]
    fn compacted_leader_ships_snapshot_to_stale_rejoiner() {
        let mut c = Cluster::new();
        let leader = c.await_leader();
        let follower = HOSTS.iter().find(|h| **h != leader).unwrap().to_string();
        c.run_rounds(5);
        c.crash(&follower);
        // push enough committed entries past snapshot_keep (8) that the
        // leader compacts below the crashed follower's log position
        for k in 0..30u64 {
            c.propose(
                &leader,
                DirOp::Register {
                    id: nid(k),
                    host: format!("s{k}"),
                    event: DirEvent::Arrival,
                    at: c.now,
                },
            );
            c.run_rounds(2);
        }
        c.run_rounds(10);
        {
            let (core, _) = &c.cores[&leader];
            assert!(
                core.commit_index() >= 30,
                "ops committed without {follower}"
            );
        }
        c.restart(&follower);
        let now = c.now;
        let (core, _) = c.cores.get_mut(&follower).unwrap();
        core.client_activity(now);
        c.run_rounds(80);
        let installed = c
            .notes
            .iter()
            .any(|(h, n)| *h == follower && matches!(n, ReplNote::SnapshotInstalled { .. }));
        assert!(installed, "rejoiner must catch up via snapshot install");
        let (core, _) = &c.cores[&follower];
        for k in 0..30u64 {
            assert!(
                core.state.lookup(&nid(k)).is_some(),
                "entry {k} missing after snapshot catch-up"
            );
        }
    }

    #[test]
    fn single_replica_set_commits_immediately() {
        let journal = Journal::in_memory();
        let cfg = ReplConfig::new(vec!["solo".into()]);
        let mut core = ReplicaCore::recover("solo", cfg, &journal);
        let mut journal = journal;
        // first tick elects self
        let mut now = Millis(0);
        for _ in 0..200 {
            now = Millis(now.0 + 25);
            core.tick(now, &mut journal);
            if core.is_leader() {
                break;
            }
        }
        assert!(core.is_leader());
        let (idx, out) = core.propose(
            DirOp::Register {
                id: nid(1),
                host: "s1".into(),
                event: DirEvent::Arrival,
                at: now,
            },
            now,
            &mut journal,
        );
        assert!(idx.is_some());
        assert!(out
            .committed
            .iter()
            .any(|(_, op, _)| matches!(op, DirOp::Register { .. })));
        assert!(core.state.lookup(&nid(1)).is_some());
    }
}
