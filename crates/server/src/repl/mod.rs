//! Replicated NapletDirectory: leader-lease consensus core (§4.9).
//!
//! The paper's central directory is one map on one host — a single
//! point of failure. This module replicates it over a small replica
//! set with a deterministic leader-lease + replicated-log protocol
//! (Raft-shaped, adapted to the event-handler architecture):
//!
//! * **Roles & terms** — each replica is a follower, candidate or
//!   leader in a monotonically increasing *term*. `(term, voted_for)`
//!   and every log entry are journaled (`r/…` keys) before they are
//!   acted on, so a crashed replica rejoins with its promises intact.
//! * **Leader lease** — heartbeats renew a follower-side lease on the
//!   current leader; while the lease is fresh a follower refuses vote
//!   requests from third parties, so a partitioned replica cannot
//!   disrupt a live leader by inflating terms.
//! * **Election** — when the lease lapses, a follower campaigns with
//!   its last log position; replicas grant at most one vote per term
//!   and only to candidates whose log is at least as up-to-date, so a
//!   majority winner provably holds every committed entry.
//! * **Commit rule** — the leader appends [`DirOp`]s, replicates them,
//!   and commits an index once a majority acknowledges it (own-term
//!   entries only; earlier terms commit transitively). Only committed
//!   ops are applied to the directory and acknowledged to clients.
//! * **Catch-up** — a laggard follower is walked back to the first
//!   divergent index; one compacted below the leader's snapshot base
//!   receives a full state snapshot instead.
//! * **Quiescence** — the whole replica set suspends its timers once
//!   the log is fully replicated and idle (the leader announces it in
//!   a final heartbeat), so a simulated run still reaches quiescence;
//!   any client operation or consensus message wakes it again.
//!
//! The core ([`ReplicaCore`]) is a pure deterministic state machine:
//! `tick`/`receive`/`propose` return a [`ReplOut`] of messages to
//! send, ops newly committed, and notes for tracing — the hosting
//! [`crate::server::NapletServer`] turns those into wire traffic.

mod core;

pub use self::core::{ReplOut, ReplicaCore, Role};

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;

use crate::directory::{DirEntry, DirEvent};

/// One replicated directory operation — the unit of the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DirOp {
    /// Register a movement event (the replicated `DirRegister`).
    Register {
        /// Moving naplet.
        id: NapletId,
        /// Host the event happened at.
        host: String,
        /// Arrival or departure.
        event: DirEvent,
        /// Registration time at the accepting leader.
        at: Millis,
    },
    /// Remove a naplet (journey ended).
    Remove {
        /// The finished naplet.
        id: NapletId,
    },
    /// No-op appended by a freshly elected leader so the commit index
    /// catches up to its log immediately (entries from earlier terms
    /// commit transitively under it).
    Noop,
}

impl DirOp {
    /// The naplet this operation concerns, if any.
    pub fn subject(&self) -> Option<&NapletId> {
        match self {
            DirOp::Register { id, .. } | DirOp::Remove { id } => Some(id),
            DirOp::Noop => None,
        }
    }
}

/// One replicated-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplEntry {
    /// Term the entry was appended in.
    pub term: u64,
    /// The operation.
    pub op: DirOp,
}

/// Consensus traffic between replicas. Carried on the wire inside
/// [`crate::events::Wire::Repl`] (traffic class `Control`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplMsg {
    /// Candidate → peers: request a vote for `term`.
    VoteRequest {
        /// Candidate's term.
        term: u64,
        /// Campaigning replica.
        candidate: String,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Peer → candidate: vote decision.
    VoteReply {
        /// The voter's current term.
        term: u64,
        /// Granted?
        granted: bool,
    },
    /// Leader → follower: heartbeat / log replication.
    Append {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: String,
        /// Index immediately preceding `entries`.
        prev_index: u64,
        /// Term at `prev_index` (consistency check).
        prev_term: u64,
        /// Entries to append (empty for a pure heartbeat).
        entries: Vec<ReplEntry>,
        /// Leader's commit index.
        commit: u64,
        /// `true` on the final heartbeat before the replica set
        /// suspends its timers (log fully replicated, nothing
        /// pending); followers stop their election clocks too.
        idle: bool,
    },
    /// Follower → leader: replication outcome.
    AppendReply {
        /// The follower's current term.
        term: u64,
        /// Whether the consistency check passed and entries appended.
        ok: bool,
        /// Highest index the follower now matches (on failure: a hint
        /// to walk `next_index` back to).
        match_index: u64,
    },
    /// Leader → compacted-away follower: full state install.
    Snapshot {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: String,
        /// Index the snapshot covers through.
        last_index: u64,
        /// Term at `last_index`.
        last_term: u64,
        /// The directory state at `last_index`, sorted by id.
        state: Vec<(NapletId, DirEntry)>,
        /// Deregistration tombstones live at `last_index`, sorted by
        /// id: late re-registrations of a finished agent stay dead
        /// even on a replica that catches up via snapshot.
        removed: Vec<(String, u64)>,
    },
    /// Follower → leader: snapshot installed through `last_index`.
    SnapshotReply {
        /// The follower's current term.
        term: u64,
        /// Echoed snapshot index.
        last_index: u64,
    },
}

impl ReplMsg {
    /// Stable short label for traces and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ReplMsg::VoteRequest { .. } => "VoteRequest",
            ReplMsg::VoteReply { .. } => "VoteReply",
            ReplMsg::Append { .. } => "Append",
            ReplMsg::AppendReply { .. } => "AppendReply",
            ReplMsg::Snapshot { .. } => "Snapshot",
            ReplMsg::SnapshotReply { .. } => "SnapshotReply",
        }
    }
}

/// Timing and sizing of the consensus core. All values are modelled
/// milliseconds on the same clock as every other server timer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplConfig {
    /// The replica set (host names), identical on every member.
    pub replicas: Vec<String>,
    /// Timer granularity: the self-rearming `ReplTick` interval.
    pub tick_ms: u64,
    /// Leader lease: how long a heartbeat keeps a follower loyal.
    pub lease_ms: u64,
    /// Heartbeat interval (must renew well inside `lease_ms`).
    pub heartbeat_ms: u64,
    /// Base election timeout; each replica adds a deterministic
    /// per-host offset so campaigns rarely collide.
    pub election_ms: u64,
    /// Compact the log once this many applied entries accumulate
    /// beyond the snapshot base.
    pub snapshot_keep: u64,
    /// How many entries a leader holds back from compaction for its
    /// slowest live follower. Within this window a laggard catches up
    /// by plain appends; beyond it (crashed or long-partitioned) it
    /// gets a full snapshot install instead of pinning the log.
    pub catchup_keep: u64,
}

impl ReplConfig {
    /// Defaults tuned for both simulated and real clusters: heartbeat
    /// well inside the lease, election comfortably beyond it.
    pub fn new(replicas: Vec<String>) -> ReplConfig {
        ReplConfig {
            replicas,
            tick_ms: 25,
            lease_ms: 300,
            heartbeat_ms: 100,
            election_ms: 600,
            snapshot_keep: 64,
            catchup_keep: 8192,
        }
    }

    /// Majority size of this replica set.
    pub fn majority(&self) -> usize {
        self.replicas.len() / 2 + 1
    }
}

/// Events the core reports for observability: the hosting server
/// turns them into metrics and trace events.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplNote {
    /// This replica started a campaign for `term`.
    ElectionStarted {
        /// The campaign term.
        term: u64,
    },
    /// This replica won the election for `term`.
    LeaderElected {
        /// Term won.
        term: u64,
    },
    /// This replica learned a (new) leader for `term`.
    LeaderChanged {
        /// The leader's term.
        term: u64,
        /// The leader.
        leader: String,
    },
    /// A snapshot through `index` was installed on this replica.
    SnapshotInstalled {
        /// Last index the snapshot covers.
        index: u64,
    },
}

/// Deterministic per-host hash (FNV-1a), used for election-timeout
/// offsets so replicas campaign at distinct, reproducible instants.
pub(crate) fn host_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
