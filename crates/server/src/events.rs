//! Wire protocol and server I/O types.
//!
//! Servers are written as deterministic event handlers:
//! `handle(now, Input) -> Vec<Output>`. A driver (the discrete-event
//! [`crate::runtime::SimRuntime`], or a threaded loop) turns `Output`s
//! into fabric transfers and scheduled local events. Everything that
//! crosses a link is a [`Wire`] value, codec-encoded into a
//! `naplet_net::Frame` so byte counts are exact.

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;
use naplet_core::itinerary::ActionSpec;
use naplet_core::message::Message;
use naplet_core::naplet::SharedNaplet;
use naplet_core::value::Value;
use naplet_net::TrafficClass;

use crate::directory::DirEvent;
use crate::manager::NapletStatus;

/// A naplet in flight plus the post-action of the visit it is heading
/// into (the `T` of `<S;T>` decided at the previous host).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferEnvelope {
    /// The serialized agent. Held as a [`SharedNaplet`] so the retained
    /// retransmission copy, the journal snapshot and the frame on the
    /// wire all share one immutable image (encoded once); the format on
    /// the wire is identical to a plain `Naplet`.
    pub naplet: SharedNaplet,
    /// Post-action for the upcoming visit.
    pub action: Option<ActionSpec>,
    /// Origin-scoped transfer id correlating `Transfer` with its
    /// `TransferAck`; the receiver deduplicates on
    /// `(origin, transfer_id)` so retransmissions never duplicate a
    /// running naplet. `0` marks a same-host continuation that never
    /// crosses the wire (no acknowledgement protocol).
    pub transfer_id: u64,
    /// 1-based send attempt; attempts ≥ 2 are retransmissions (metered
    /// in `NetStats::retransmits`).
    pub attempt: u32,
}

/// Everything that crosses the wire between naplet servers.
///
/// `Transfer` dwarfs the control variants by design — it carries the
/// whole agent. Wires are transient (encoded immediately), so the
/// size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Wire {
    /// Navigator → remote navigator: request a LANDING permit
    /// (paper §2.2). Carries enough for security/resource checks.
    LandingRequest {
        /// Correlation token (echoed in the reply).
        token: u64,
        /// Requesting server.
        from_host: String,
        /// The travelling naplet's credential (identity + claims).
        credential: naplet_core::credential::Credential,
        /// The actual (possibly cloned) naplet id.
        naplet_id: NapletId,
        /// Estimated transfer size (admission control input).
        est_bytes: u64,
        /// 1-based send attempt (retransmissions are attempt ≥ 2).
        attempt: u32,
    },
    /// Remote navigator's LANDING decision.
    LandingReply {
        /// Echoed token.
        token: u64,
        /// Permit granted?
        granted: bool,
        /// Denial reason (diagnostics).
        reason: String,
    },
    /// The agent transfer itself (traffic class `Migration`).
    Transfer(TransferEnvelope),
    /// Register a movement event with a directory holder (central
    /// directory host, or the naplet's home manager).
    DirRegister {
        /// Moving naplet.
        id: NapletId,
        /// Host the event happened at.
        host: String,
        /// Arrival or departure.
        event: DirEvent,
        /// When set, the registrar requests an acknowledgement sent to
        /// this host — arrivals postpone execution until acked (§4.1).
        ack_to: Option<String>,
        /// 1-based send attempt; acked registrations are retransmitted
        /// on timeout like the rest of the reliable-transfer protocol.
        attempt: u32,
    },
    /// Directory acknowledgement of an arrival registration.
    DirAck {
        /// The naplet whose arrival is now registered.
        id: NapletId,
    },
    /// Remove a naplet from the directory (journey ended).
    DirRemove {
        /// The finished naplet.
        id: NapletId,
    },
    /// Location query (Messenger → directory holder).
    DirQuery {
        /// Correlation token.
        token: u64,
        /// Naplet being located.
        id: NapletId,
        /// Where to send the reply.
        reply_to: String,
    },
    /// Location reply.
    DirReply {
        /// Echoed token.
        token: u64,
        /// The naplet.
        id: NapletId,
        /// Latest known (host, event, registered-at), or None when
        /// unknown. The timestamp lets a home server judge recency —
        /// lease probes after a directory failover renew instead of
        /// re-dispatching when the last registration is fresh.
        entry: Option<(String, DirEvent, Millis)>,
    },
    /// Post-office delivery attempt: the message heading to the server
    /// believed to host the target (§4.2).
    Post {
        /// The routed message.
        msg: Message,
        /// Server where the message was originally posted (receives
        /// the confirmation).
        origin_host: String,
    },
    /// Delivery confirmation back to the origin messenger.
    PostConfirm {
        /// Message identity: original sender…
        sender: naplet_core::message::Sender,
        /// …and sequence number.
        seq: u64,
        /// The naplet the message reached.
        target: NapletId,
        /// Server that delivered it (refreshes location caches,
        /// paper §4.1: caches are "updated … by remote residing
        /// naplet servers in systems with message forwarding").
        delivered_at: String,
    },
    /// A naplet reporting to its owner's listener at home.
    Report {
        /// Reporting naplet.
        id: NapletId,
        /// Report body.
        body: Value,
    },
    /// Home notification of a life-cycle end.
    Notify {
        /// The naplet.
        id: NapletId,
        /// Completed or Destroyed.
        status: NapletStatus,
        /// Host where it ended.
        host: String,
        /// Human-readable detail (error text for abnormal ends).
        detail: String,
    },
    /// Application-level client/server request (e.g. the centralized
    /// SNMP baseline). Dispatched to the server's registered app
    /// handler; metered as `Snmp`/`Other` traffic.
    AppRequest {
        /// Correlation token.
        token: u64,
        /// Reply destination.
        reply_to: String,
        /// Handler dispatch tag.
        tag: String,
        /// Opaque request body.
        body: Vec<u8>,
    },
    /// Application-level reply.
    AppReply {
        /// Echoed token.
        token: u64,
        /// Echoed tag.
        tag: String,
        /// Opaque reply body.
        body: Vec<u8>,
    },
    /// Receiver → origin: the naplet carried by `Transfer` with this
    /// `transfer_id` is admitted (or already was, for a retransmission).
    /// The commit of the two-phase handoff — on receipt the origin
    /// releases its retained copy of the agent.
    TransferAck {
        /// Echoed origin-scoped transfer id.
        transfer_id: u64,
        /// The admitted naplet (diagnostics).
        id: NapletId,
    },
    /// Privileged health probe: ask a server for its
    /// [`crate::status::StatusReport`]. Gated by the receiving
    /// server's security policy under
    /// `Permission::PrivilegedService("status")` — an unauthorized
    /// credential is refused with an empty reply.
    StatusRequest {
        /// Correlation token (echoed in the reply).
        token: u64,
        /// Where to send the reply.
        reply_to: String,
        /// The prober's credential, checked against the policy matrix.
        credential: naplet_core::credential::Credential,
    },
    /// Health probe reply. `report` is `None` when the probe was
    /// refused by the security policy.
    StatusReply {
        /// Echoed token.
        token: u64,
        /// The probed server's report, or `None` on refusal.
        report: Option<crate::status::StatusReport>,
    },
    /// Privileged flight-recorder read: page out the server's recent
    /// trace events from absolute sequence `from_seq`. Gated by the
    /// same `Permission::PrivilegedService("status")` grant as
    /// [`Wire::StatusRequest`].
    TraceSegmentRequest {
        /// Correlation token (echoed in the reply).
        token: u64,
        /// Where to send the reply.
        reply_to: String,
        /// The reader's credential, checked against the policy matrix.
        credential: naplet_core::credential::Credential,
        /// First absolute event sequence wanted (see
        /// [`naplet_obs::TraceSegment`] paging).
        from_seq: u64,
        /// Page-size ceiling.
        max_events: u32,
    },
    /// Flight-recorder page. `segment` is `None` when the read was
    /// refused by the security policy.
    TraceSegmentReply {
        /// Echoed token.
        token: u64,
        /// One page of the recorder, or `None` on refusal.
        segment: Option<naplet_obs::TraceSegment>,
    },
    /// Privileged metrics time-series read: page out the server's
    /// recent [`naplet_obs::MetricsSample`] deltas from absolute
    /// sequence `from_seq`. Gated by the same
    /// `Permission::PrivilegedService("status")` grant as
    /// [`Wire::StatusRequest`].
    MetricsHistoryRequest {
        /// Correlation token (echoed in the reply).
        token: u64,
        /// Where to send the reply.
        reply_to: String,
        /// The reader's credential, checked against the policy matrix.
        credential: naplet_core::credential::Credential,
        /// First absolute sample sequence wanted (see
        /// [`naplet_obs::MetricsHistoryPage`] paging).
        from_seq: u64,
        /// Page-size ceiling.
        max_samples: u32,
    },
    /// Metrics time-series page. `page` is `None` when the read was
    /// refused by the security policy.
    MetricsHistoryReply {
        /// Echoed token.
        token: u64,
        /// One page of the history ring, or `None` on refusal.
        page: Option<naplet_obs::MetricsHistoryPage>,
    },
    /// Consensus traffic between directory replicas
    /// ([`crate::repl`]): elections, log replication, snapshots.
    Repl {
        /// The consensus message.
        msg: crate::repl::ReplMsg,
    },
}

impl Wire {
    /// Traffic class used when this wire value crosses a link.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            Wire::Transfer(_) => TrafficClass::Migration,
            Wire::Post { .. } | Wire::Report { .. } => TrafficClass::Message,
            Wire::AppRequest { .. } | Wire::AppReply { .. } => TrafficClass::Snmp,
            _ => TrafficClass::Control,
        }
    }

    /// The 1-based send attempt carried by retryable wires; wires
    /// outside the reliable-transfer protocol report 1. Drivers meter a
    /// retransmission whenever this is ≥ 2.
    pub fn retry_attempt(&self) -> u32 {
        match self {
            Wire::LandingRequest { attempt, .. } => *attempt,
            Wire::Transfer(env) => env.attempt,
            Wire::DirRegister { attempt, .. } => *attempt,
            _ => 1,
        }
    }

    /// Stable short label for traces and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Wire::LandingRequest { .. } => "LandingRequest",
            Wire::LandingReply { .. } => "LandingReply",
            Wire::Transfer(_) => "Transfer",
            Wire::TransferAck { .. } => "TransferAck",
            Wire::DirRegister { .. } => "DirRegister",
            Wire::DirAck { .. } => "DirAck",
            Wire::DirRemove { .. } => "DirRemove",
            Wire::DirQuery { .. } => "DirQuery",
            Wire::DirReply { .. } => "DirReply",
            Wire::Post { .. } => "Post",
            Wire::PostConfirm { .. } => "PostConfirm",
            Wire::Report { .. } => "Report",
            Wire::Notify { .. } => "Notify",
            Wire::AppRequest { .. } => "AppRequest",
            Wire::AppReply { .. } => "AppReply",
            Wire::StatusRequest { .. } => "StatusRequest",
            Wire::StatusReply { .. } => "StatusReply",
            Wire::TraceSegmentRequest { .. } => "TraceSegmentRequest",
            Wire::TraceSegmentReply { .. } => "TraceSegmentReply",
            Wire::MetricsHistoryRequest { .. } => "MetricsHistoryRequest",
            Wire::MetricsHistoryReply { .. } => "MetricsHistoryReply",
            Wire::Repl { .. } => "Repl",
        }
    }

    /// The naplet this wire value concerns, when it concerns exactly
    /// one — drivers use it to attribute wire trace events to the
    /// right journey.
    pub fn subject(&self) -> Option<&NapletId> {
        match self {
            Wire::LandingRequest { naplet_id, .. } => Some(naplet_id),
            Wire::Transfer(env) => Some(env.naplet.id()),
            Wire::TransferAck { id, .. }
            | Wire::DirRegister { id, .. }
            | Wire::DirAck { id }
            | Wire::DirRemove { id }
            | Wire::DirQuery { id, .. }
            | Wire::DirReply { id, .. }
            | Wire::Report { id, .. }
            | Wire::Notify { id, .. } => Some(id),
            Wire::PostConfirm { target, .. } => Some(target),
            Wire::LandingReply { .. }
            | Wire::Post { .. }
            | Wire::AppRequest { .. }
            | Wire::AppReply { .. }
            | Wire::StatusRequest { .. }
            | Wire::StatusReply { .. }
            | Wire::TraceSegmentRequest { .. }
            | Wire::TraceSegmentReply { .. }
            | Wire::MetricsHistoryRequest { .. }
            | Wire::MetricsHistoryReply { .. }
            | Wire::Repl { .. } => None,
        }
    }
}

/// Local (same-host) events a server schedules for itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LocalEvent {
    /// The modelled dwell of a visit has elapsed: advance the
    /// itinerary and depart (or finish).
    VisitDone {
        /// The naplet whose visit completed.
        id: NapletId,
    },
    /// Code fetch for a cold codebase completed; start execution.
    CodeReady {
        /// The naplet waiting on its code.
        id: NapletId,
    },
    /// A reliable-handoff acknowledgement timer came due: if the
    /// transfer is still outstanding at this attempt, retransmit (or
    /// give up after `RetryPolicy::max_retries`).
    TransferTimeout {
        /// The outstanding transfer.
        transfer_id: u64,
        /// Attempt the timer was armed for; a mismatch means the timer
        /// is stale (a newer attempt superseded it).
        attempt: u32,
    },
    /// An arrival-registration acknowledgement timer came due: if the
    /// naplet is still waiting in `AwaitingArrivalAck`, re-send the
    /// `DirRegister` — and after `RetryPolicy::max_retries`, stop
    /// gating and execute anyway (the directory may be stale; the
    /// forwarding chase recovers from that, a stranded agent does not).
    RegisterTimeout {
        /// The naplet whose arrival registration is unacknowledged.
        id: NapletId,
        /// Attempt the timer was armed for.
        attempt: u32,
    },
    /// A home-side lease timer came due: if the lease for `id` was not
    /// renewed within the policy window, the agent is orphaned —
    /// re-dispatch it from its creation record or mark it `Lost`.
    LeaseCheck {
        /// The dispatched naplet whose lease is being checked.
        id: NapletId,
    },
    /// A post-office redelivery timer came due: if the message
    /// identified by `(sender, seq)` has no delivery confirmation yet,
    /// re-route it (invalidating stale location hints first).
    PostTimeout {
        /// The message's original sender…
        sender: naplet_core::message::Sender,
        /// …and sequence number.
        seq: u64,
        /// Attempt the timer was armed for.
        attempt: u32,
    },
    /// The consensus timer of a directory replica came due: drive
    /// elections/heartbeats ([`crate::repl::ReplicaCore::tick`]). The
    /// tick re-arms itself only while the core asks for it — an idle
    /// replicated directory schedules nothing, so simulated runs still
    /// reach quiescence.
    ReplTick,
}

impl LocalEvent {
    /// Stable short label for traces, logs, and profiling series.
    pub fn label(&self) -> &'static str {
        match self {
            LocalEvent::VisitDone { .. } => "VisitDone",
            LocalEvent::CodeReady { .. } => "CodeReady",
            LocalEvent::TransferTimeout { .. } => "TransferTimeout",
            LocalEvent::RegisterTimeout { .. } => "RegisterTimeout",
            LocalEvent::LeaseCheck { .. } => "LeaseCheck",
            LocalEvent::PostTimeout { .. } => "PostTimeout",
            LocalEvent::ReplTick => "ReplTick",
        }
    }
}

/// One input to a server's handler.
#[allow(clippy::large_enum_variant)] // Wire carries whole agents
#[derive(Debug)]
pub enum Input {
    /// A wire value delivered from `from`.
    Wire {
        /// Sending host.
        from: String,
        /// The payload.
        wire: Wire,
    },
    /// A scheduled local event came due.
    Local(LocalEvent),
}

/// One effect a server asks its driver to perform.
#[allow(clippy::large_enum_variant)] // Wire carries whole agents
#[derive(Debug)]
pub enum Output {
    /// Send a wire value to another host (metered by class).
    Send {
        /// Destination host.
        to: String,
        /// Payload.
        wire: Wire,
    },
    /// Schedule a local event after a delay.
    Schedule {
        /// Delay in modelled ms.
        delay_ms: u64,
        /// The event.
        event: LocalEvent,
    },
    /// Fetch code for a cold codebase from `from` (the driver meters a
    /// `Code`-class transfer of `bytes` and delivers
    /// [`LocalEvent::CodeReady`] after the modelled delay).
    FetchCode {
        /// Codebase origin (the naplet's home).
        from: String,
        /// JAR size.
        bytes: u64,
        /// Waiting naplet.
        id: NapletId,
    },
}

/// Timestamped, human-readable server log entry (observability; tests
/// assert against these).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Server time when logged.
    pub at: Millis,
    /// Message text.
    pub line: String,
}

/// Bounded ring of [`LogEntry`]s: when the configured capacity is
/// reached, the oldest line is evicted and counted — the same
/// retention philosophy that bounds the dedup table and the
/// messenger's confirmation maps. Retention itself is
/// [`naplet_obs::Ring`], the same ring the flight recorder uses, so
/// "complete record or counted truncation" has exactly one
/// implementation in the workspace.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    ring: naplet_obs::Ring<LogEntry>,
}

impl EventLog {
    /// A ring holding at most `capacity` lines (0 disables logging
    /// entirely — every push is counted dropped).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            ring: naplet_obs::Ring::with_capacity(capacity),
        }
    }

    /// Append a line, evicting the oldest if the ring is full.
    pub fn push(&mut self, entry: LogEntry) {
        self.ring.push(entry);
    }

    /// Retained lines, oldest first.
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, LogEntry> {
        self.ring.iter()
    }

    /// Retained line count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Lines evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a LogEntry;
    type IntoIter = std::collections::vec_deque::Iter<'a, LogEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_classes() {
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        assert_eq!(
            Wire::DirAck { id: id.clone() }.traffic_class(),
            TrafficClass::Control
        );
        assert_eq!(
            Wire::Report {
                id: id.clone(),
                body: Value::Nil
            }
            .traffic_class(),
            TrafficClass::Message
        );
        assert_eq!(
            Wire::AppRequest {
                token: 0,
                reply_to: "m".into(),
                tag: "snmp".into(),
                body: vec![]
            }
            .traffic_class(),
            TrafficClass::Snmp
        );
    }

    #[test]
    fn wire_codec_round_trip() {
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let w = Wire::DirQuery {
            token: 9,
            id,
            reply_to: "here".into(),
        };
        let bytes = naplet_core::codec::to_bytes(&w).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn transfer_ack_round_trips_and_is_control_class() {
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let w = Wire::TransferAck {
            transfer_id: 17,
            id,
        };
        assert_eq!(w.traffic_class(), TrafficClass::Control);
        assert_eq!(w.retry_attempt(), 1);
        let bytes = naplet_core::codec::to_bytes(&w).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn event_log_ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.push(LogEntry {
                at: Millis(i),
                line: format!("line {i}"),
            });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let lines: Vec<&str> = log.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, ["line 2", "line 3", "line 4"]);
        // for-loop sugar via IntoIterator
        let mut n = 0;
        for entry in &log {
            assert!(entry.at >= Millis(2));
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn zero_capacity_event_log_drops_everything() {
        let mut log = EventLog::with_capacity(0);
        log.push(LogEntry {
            at: Millis(1),
            line: "x".into(),
        });
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn wire_labels_and_subjects() {
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let ack = Wire::TransferAck {
            transfer_id: 1,
            id: id.clone(),
        };
        assert_eq!(ack.label(), "TransferAck");
        assert_eq!(ack.subject(), Some(&id));
        let reply = Wire::LandingReply {
            token: 1,
            granted: true,
            reason: String::new(),
        };
        assert_eq!(reply.label(), "LandingReply");
        assert_eq!(reply.subject(), None);
    }

    #[test]
    fn status_frames_are_control_class_and_round_trip() {
        let key = naplet_core::credential::SigningKey::new("ops", b"secret");
        let id = NapletId::new("ops", "man", Millis(0)).unwrap();
        let req = Wire::StatusRequest {
            token: 5,
            reply_to: "man".into(),
            credential: naplet_core::credential::Credential::issue(&key, id, "status", vec![]),
        };
        assert_eq!(req.traffic_class(), TrafficClass::Control);
        assert_eq!(req.retry_attempt(), 1);
        assert_eq!(req.label(), "StatusRequest");
        assert_eq!(req.subject(), None);
        let bytes = naplet_core::codec::to_bytes(&req).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);

        let reply = Wire::StatusReply {
            token: 5,
            report: None,
        };
        assert_eq!(reply.label(), "StatusReply");
        assert_eq!(reply.traffic_class(), TrafficClass::Control);
        let bytes = naplet_core::codec::to_bytes(&reply).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn metrics_history_frames_are_control_class_and_round_trip() {
        let key = naplet_core::credential::SigningKey::new("ops", b"secret");
        let id = NapletId::new("ops", "man", Millis(0)).unwrap();
        let req = Wire::MetricsHistoryRequest {
            token: 9,
            reply_to: "man".into(),
            credential: naplet_core::credential::Credential::issue(&key, id, "status", vec![]),
            from_seq: 4,
            max_samples: 64,
        };
        assert_eq!(req.traffic_class(), TrafficClass::Control);
        assert_eq!(req.retry_attempt(), 1);
        assert_eq!(req.label(), "MetricsHistoryRequest");
        assert_eq!(req.subject(), None);
        let bytes = naplet_core::codec::to_bytes(&req).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);

        let page = naplet_obs::MetricsHistoryPage {
            host: "n1".into(),
            next_seq: 2,
            total: 2,
            samples: vec![naplet_obs::MetricsSample {
                at: 100,
                delta: naplet_obs::MetricsSnapshot::default(),
            }],
            ..naplet_obs::MetricsHistoryPage::default()
        };
        let reply = Wire::MetricsHistoryReply {
            token: 9,
            page: Some(page),
        };
        assert_eq!(reply.label(), "MetricsHistoryReply");
        assert_eq!(reply.traffic_class(), TrafficClass::Control);
        assert_eq!(reply.subject(), None);
        let bytes = naplet_core::codec::to_bytes(&reply).unwrap();
        let back: Wire = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn retry_attempt_visible_on_retryable_wires() {
        let key = naplet_core::credential::SigningKey::new("u", b"secret");
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let w = Wire::LandingRequest {
            token: 1,
            from_host: "a".into(),
            credential: naplet_core::credential::Credential::issue(&key, id.clone(), "cb", vec![]),
            naplet_id: id,
            est_bytes: 10,
            attempt: 3,
        };
        assert_eq!(w.retry_attempt(), 3);
    }
}
