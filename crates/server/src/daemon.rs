//! Single-node daemon lifecycle: what `napletd` runs.
//!
//! A daemon is one NapletServer deployed over a real-socket
//! [`TcpTransport`], configured from a shared cluster-bootstrap file
//! (see [`crate::bootstrap`]). Boot order matters and is fixed here so
//! every node restarts identically:
//!
//! 1. bind the listen socket and start writer threads toward the
//!    static peer list;
//! 2. open the write-ahead journal ([`FileStore`] when the node has a
//!    `journal` path, in-memory otherwise);
//! 3. replay the journal — retransmitted handshakes go out before the
//!    server accepts new work, so an agent in-flight across a crash
//!    re-enters the retry machinery first;
//! 4. start the server thread plus the watchdog sweeper.
//!
//! Shutdown is cooperative: any holder of the [`Daemon::shutdown_flag`]
//! (the SIGTERM handler in `napletd`, a test harness) stores `true`,
//! the serve loop drains, and [`Daemon::run`] returns a
//! [`DaemonSummary`] built from the server's final status report. The
//! `FileStore` journal writes through on every record, so a clean exit
//! needs no separate flush step — the summary's journal figures are
//! what a successor process will replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::path::PathBuf;

use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;
use naplet_net::tcp::TcpTransport;
use naplet_obs::{
    flight_dump_json_with, metrics_history_json, ObsSink, WatchdogConfig, DEFAULT_HISTORY_CAPACITY,
    DEFAULT_RECORDER_CAPACITY,
};

use crate::bootstrap::BootstrapConfig;
use crate::journal::{FileStore, Journal, RecoveryStats};
use crate::lease::LeasePolicy;
use crate::live::LiveRuntime;
use crate::server::{LocationMode, NapletServer, ServerConfig};
use crate::status::StatusReport;

/// Codebase every daemon registers at boot: a minimal journey probe
/// the cluster smoke tests (and operators) can dispatch to prove
/// end-to-end migration works. It reports `probe:<host>` home from
/// every stop.
pub const PROBE_CODEBASE: &str = "cluster-probe";

struct ClusterProbe;

impl naplet_core::behavior::NapletBehavior for ClusterProbe {
    fn on_start(&mut self, ctx: &mut dyn naplet_core::context::NapletContext) -> Result<()> {
        ctx.report_home(Value::from(format!("probe:{}", ctx.host_name())))
    }
}

/// Register the [`PROBE_CODEBASE`] factory in any registry, so harness
/// home nodes can dispatch the same probe the daemons serve.
pub fn register_probe(codebase: &mut naplet_core::codebase::CodebaseRegistry) {
    codebase.register(PROBE_CODEBASE, 256, || ClusterProbe);
}

/// A running single-node daemon.
pub struct Daemon {
    node: String,
    live: LiveRuntime<TcpTransport>,
    shutdown: Arc<AtomicBool>,
    recovery: RecoveryStats,
    trace_path: PathBuf,
}

/// A detachable handle for writing the daemon's flight-recorder dump
/// to disk — cloned into signal-watcher threads and the panic hook, so
/// a dump can be taken at any moment without touching the [`Daemon`]
/// itself.
#[derive(Clone)]
pub struct TraceDumper {
    obs: ObsSink,
    node: String,
    path: PathBuf,
}

impl TraceDumper {
    /// The single-line JSON flight dump (one [`naplet_obs::TraceSegment`]
    /// with the node's metrics totals at dump time embedded).
    pub fn json(&self) -> String {
        flight_dump_json_with(
            &self.obs.recorder.dump(&self.node),
            Some(&self.obs.metrics.snapshot()),
        )
    }

    /// The single-line JSON metrics-history dump (one
    /// [`naplet_obs::MetricsHistoryPage`] of sweep-interval deltas).
    pub fn metrics_json(&self) -> String {
        metrics_history_json(&self.obs.history.dump(&self.node))
    }

    /// Where [`TraceDumper::write`] puts the trace dump.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Where [`TraceDumper::write`] puts the metrics-history dump:
    /// `{node}.metrics.json` next to the trace dump.
    pub fn metrics_path(&self) -> PathBuf {
        self.path
            .with_file_name(format!("{}.metrics.json", self.node))
    }

    /// Write both dumps (trace + metrics history) to their configured
    /// paths, creating parent directories as needed. Returns the trace
    /// path written; the metrics dump rides best-effort alongside.
    pub fn write(&self) -> Result<PathBuf> {
        if let Some(parent) = self.path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&self.path, self.json()).map_err(|e| {
            NapletError::Internal(format!("write trace dump {}: {e}", self.path.display()))
        })?;
        let _ = std::fs::write(self.metrics_path(), self.metrics_json());
        Ok(self.path.clone())
    }
}

/// What a daemon reports when it exits cleanly.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// The node name this daemon served.
    pub node: String,
    /// The server's final status report (residents, journal figures,
    /// lease counters).
    pub status: StatusReport,
    /// What the boot-time journal replay restored.
    pub recovery: RecoveryStats,
    /// Values reported home to this node by visiting naplets.
    pub reports: Vec<Value>,
    /// Stall alerts the watchdog raised over the daemon's lifetime.
    pub alerts: u64,
    /// Where the shutdown flight-recorder dump was written (`None` if
    /// the write failed).
    pub trace_path: Option<PathBuf>,
}

impl Daemon {
    /// Boot a daemon for `node` as described by `config`: bind the
    /// transport, open and replay the journal, start the server and
    /// watchdog threads. Returns once the node is serving.
    pub fn start(config: &BootstrapConfig, node: &str) -> Result<Daemon> {
        let node_cfg = config
            .node(node)
            .ok_or_else(|| NapletError::NotFound(format!("no node `{node}` in config")))?
            .clone();
        let transport = TcpTransport::start(config.tcp_config(node)?)?;
        let mut live = LiveRuntime::over(transport);
        live.enable_watchdog(WatchdogConfig::default());
        // every daemon keeps a bounded flight recorder (dumped on
        // SIGUSR1 / shutdown / panic, fetched remotely by the trace
        // protocol) and exports hot-path handler latencies
        live.enable_recorder(DEFAULT_RECORDER_CAPACITY);
        live.enable_profiling();
        // and a metrics time-series the sweep thread samples, paged
        // out by the history protocol and dumped beside the trace
        live.enable_metrics_history(DEFAULT_HISTORY_CAPACITY);
        let trace_path = config
            .trace_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join(format!("{node}.trace.json"));

        let mode = match &config.directory {
            Some(dir) => LocationMode::ReplicatedDirectory(dir.replicas.clone()),
            None => LocationMode::HomeManagers,
        };
        let mut server_cfg = ServerConfig::open(node, mode);
        if let Some(dir) = &config.directory {
            // only replica-set members instantiate a consensus core;
            // other nodes use the config for routing alone
            server_cfg.repl = Some(dir.repl_config());
        }
        register_probe(&mut server_cfg.codebase);
        if let Some(dwell_ms) = config.dwell_ms {
            server_cfg.monitor_policy.native_dwell_ms = dwell_ms;
        }
        if let Some(duration_ms) = config.lease_ms {
            server_cfg.lease = Some(LeasePolicy {
                duration_ms,
                ..LeasePolicy::default()
            });
        }
        let server = live.add_server(server_cfg);
        if let Some(dir) = &node_cfg.journal {
            server.set_journal(Journal::with_store(Box::new(FileStore::open(dir)?)));
        }
        let recovery = live.recover(node)?;
        live.start();
        Ok(Daemon {
            node: node.to_string(),
            live,
            shutdown: Arc::new(AtomicBool::new(false)),
            recovery,
            trace_path,
        })
    }

    /// A clonable handle for dumping this daemon's flight recorder —
    /// hand it to signal watchers and panic hooks.
    pub fn trace_dumper(&self) -> TraceDumper {
        TraceDumper {
            obs: self.live.obs().clone(),
            node: self.node.clone(),
            path: self.trace_path.clone(),
        }
    }

    /// The cooperative shutdown flag. Storing `true` (from a signal
    /// handler, another thread, or a test) makes [`Daemon::run`]
    /// return after the serve loop drains.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// What the boot-time journal replay restored.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// The node's transport (peer control, wire stats).
    pub fn transport(&self) -> &TcpTransport {
        self.live.transport()
    }

    /// Serve until the shutdown flag is raised, then stop the server
    /// and watchdog threads and summarize.
    pub fn run(self) -> Result<DaemonSummary> {
        while !self.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
        }
        let alerts = self.live.alerts().len() as u64;
        let now = self.live.now();
        let dumper = self.trace_dumper();
        let node = self.node;
        let recovery = self.recovery;
        let mut servers = self.live.shutdown();
        // a clean shutdown always leaves a readable flight dump behind;
        // written after the serve loops drain so the dump covers the
        // final sends
        let trace_path = dumper.write().ok();
        let server: NapletServer = servers
            .iter()
            .position(|(host, _)| *host == node)
            .map(|i| servers.swap_remove(i).1)
            .ok_or_else(|| NapletError::Internal(format!("daemon server `{node}` vanished")))?;
        let status = server.status_report(now);
        let reports = server.reports.iter().map(|(_, v)| v.clone()).collect();
        Ok(DaemonSummary {
            node,
            status,
            recovery,
            reports,
            alerts,
            trace_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::clock::Millis;
    use naplet_core::credential::SigningKey;
    use naplet_core::itinerary::{Itinerary, Pattern};
    use naplet_core::naplet::{AgentKind, Naplet};
    use std::net::TcpListener;

    /// Two free ports, reserved briefly so the config is valid when
    /// the daemons bind.
    fn two_free_addrs() -> (String, String) {
        let a = TcpListener::bind("127.0.0.1:0").unwrap();
        let b = TcpListener::bind("127.0.0.1:0").unwrap();
        (
            a.local_addr().unwrap().to_string(),
            b.local_addr().unwrap().to_string(),
        )
    }

    fn two_node_config(addr_a: &str, addr_b: &str, journal_a: Option<&str>) -> BootstrapConfig {
        let journal = journal_a
            .map(|d| format!("journal = \"{d}\"\n"))
            .unwrap_or_default();
        BootstrapConfig::parse(&format!(
            "[[node]]\nname = \"alpha\"\nlisten = \"{addr_a}\"\n{journal}\
             [[node]]\nname = \"beta\"\nlisten = \"{addr_b}\"\n"
        ))
        .unwrap()
    }

    #[test]
    fn daemon_boots_serves_a_probe_and_shuts_down() {
        let (addr_a, addr_b) = two_free_addrs();
        let config = two_node_config(&addr_a, &addr_b, None);
        let alpha = Daemon::start(&config, "alpha").unwrap();
        let beta = Daemon::start(&config, "beta").unwrap();

        // drive a probe from a third, in-process "operator" node that
        // the daemons don't know as a peer — alpha only needs to see
        // the operator to send replies, so teach alpha the route
        let op_transport = TcpTransport::start(naplet_net::tcp::TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            Default::default(),
        ))
        .unwrap();
        let op_addr = op_transport.local_addr();
        alpha.transport().add_peer("op", op_addr).unwrap();
        op_transport
            .add_peer("alpha", addr_a.parse().unwrap())
            .unwrap();
        let mut op = LiveRuntime::over(op_transport);
        let mut cfg = ServerConfig::open("op", LocationMode::HomeManagers);
        cfg.codebase.register(PROBE_CODEBASE, 256, || ClusterProbe);
        op.add_server(cfg);
        let key = SigningKey::new("ops", b"secret");
        let it = Itinerary::new(Pattern::singleton("alpha")).unwrap();
        let naplet = Naplet::create(
            &key,
            "ops",
            "op",
            Millis(0),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        op.launch(naplet).unwrap();
        op.start();

        // the probe migrates op → alpha, runs, and reports home; the
        // running server belongs to its thread, so give the journey a
        // bounded while, then stop and inspect (retry backoff covers
        // any frame the connection setup races)
        std::thread::sleep(Duration::from_secs(2));
        let servers = op.shutdown();
        let (_, op_server) = servers.into_iter().find(|(h, _)| h == "op").unwrap();
        let reports: Vec<Value> = op_server.reports.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(
            reports,
            vec![Value::from("probe:alpha")],
            "probe must run on the daemon and report home over TCP"
        );

        for daemon in [alpha, beta] {
            let flag = daemon.shutdown_flag();
            flag.store(true, Ordering::Relaxed);
            let summary = daemon.run().unwrap();
            assert_eq!(summary.status.parked, 0);
        }
    }

    #[test]
    fn journal_survives_a_daemon_restart() {
        let dir = std::env::temp_dir().join(format!(
            "naplet-daemon-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (addr_a, addr_b) = two_free_addrs();
        let config = two_node_config(&addr_a, &addr_b, dir.to_str());

        let daemon = Daemon::start(&config, "alpha").unwrap();
        assert_eq!(
            daemon.recovery().rehydrated,
            0,
            "first boot replays nothing"
        );
        daemon.shutdown_flag().store(true, Ordering::Relaxed);
        daemon.run().unwrap();

        // a second incarnation reopens the same journal directory
        let daemon = Daemon::start(&config, "alpha").unwrap();
        assert_eq!(daemon.recovery().rehydrated, 0);
        daemon.shutdown_flag().store(true, Ordering::Relaxed);
        daemon.run().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_node_name_is_rejected() {
        let (addr_a, addr_b) = two_free_addrs();
        let config = two_node_config(&addr_a, &addr_b, None);
        assert!(Daemon::start(&config, "nope").is_err());
    }

    #[test]
    fn replicated_directory_cluster_elects_one_leader_over_tcp() {
        let addrs: Vec<String> = (0..3)
            .map(|_| {
                TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
                    .to_string()
            })
            .collect();
        let mut text = String::new();
        for (i, addr) in addrs.iter().enumerate() {
            text.push_str(&format!("[[node]]\nname = \"d{i}\"\nlisten = \"{addr}\"\n"));
        }
        text.push_str("[directory]\nreplicas = \"d0, d1, d2\"\n");
        let config = BootstrapConfig::parse(&text).unwrap();
        let daemons: Vec<Daemon> = (0..3)
            .map(|i| Daemon::start(&config, &format!("d{i}")).unwrap())
            .collect();

        // give the replica set a moment to elect, then inspect the
        // final status reports: exactly one leader, everyone agreeing
        // on it, and at least the leader's noop committed everywhere
        std::thread::sleep(Duration::from_secs(2));
        let summaries: Vec<DaemonSummary> = daemons
            .into_iter()
            .map(|d| {
                d.shutdown_flag().store(true, Ordering::Relaxed);
                d.run().unwrap()
            })
            .collect();
        let repl: Vec<_> = summaries
            .iter()
            .map(|s| s.status.repl.as_ref().expect("replica must report"))
            .collect();
        let leaders = repl.iter().filter(|r| r.role == "leader").count();
        assert_eq!(leaders, 1, "exactly one leader: {repl:?}");
        assert!(
            repl.iter().all(|r| r.commit >= 1),
            "noop must commit on every replica: {repl:?}"
        );
        let hints: Vec<_> = repl.iter().filter_map(|r| r.leader.clone()).collect();
        assert!(
            hints.windows(2).all(|w| w[0] == w[1]),
            "replicas disagree on the leader: {hints:?}"
        );
    }
}
