//! Messenger state: the post office (paper §2.2, §4.2).
//!
//! The routing *protocol* (locate → send → forward-chase → confirm)
//! is driven by the server's wire handling; this module owns the
//! messenger's bookkeeping:
//!
//! * per-sender sequence numbers (message identity);
//! * the **special mailbox** for messages that arrive *before* their
//!   target naplet does (§4.2 case 3);
//! * delivery confirmations kept "only for further possible inquiry
//!   from naplet A" — and used to refresh the location cache;
//! * forwarding-hop accounting and the cycle-breaking cap.

use std::collections::{HashMap, HashSet};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;
use naplet_core::message::{Message, Sender};

/// Record of a confirmed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmRecord {
    /// Server that finally delivered the message.
    pub delivered_at: String,
    /// When the confirmation arrived back here.
    pub at: Millis,
}

/// Origin-side record of a posted message awaiting confirmation; the
/// redelivery timer re-routes it if no confirmation arrives in time.
#[derive(Debug, Clone)]
pub struct OutstandingPost {
    /// A retained copy of the message, for retransmission.
    pub msg: Message,
    /// 1-based send attempts so far.
    pub attempts: u32,
    /// When the first attempt was routed.
    pub first_sent: Millis,
}

/// Per-server post office state.
#[derive(Debug)]
pub struct Messenger {
    seq: u64,
    /// Early messages waiting for their target naplet, each with the
    /// host that should receive the delivery confirmation.
    special: HashMap<NapletId, Vec<(Message, String)>>,
    confirmations: HashMap<(Sender, u64), ConfirmRecord>,
    /// Messages this server originated that have no delivery
    /// confirmation yet, keyed by message identity.
    outstanding: HashMap<(Sender, u64), OutstandingPost>,
    /// Message identities already delivered *here* — retransmitted
    /// copies are confirmed again but not deposited twice. Keyed on
    /// (sender, seq, sent_at-ms): seq counters are per-origin-server,
    /// so the timestamp disambiguates posts made by one naplet from
    /// different servers.
    delivered: HashSet<(Sender, u64, u64)>,
    /// Maximum forwarding hops before a message is dropped as
    /// undeliverable (breaks pathological chase cycles).
    pub forward_cap: u32,
    /// Forwarding hops this server has performed (E5 reports these).
    pub forwards_performed: u64,
    /// Messages dropped at the cap.
    pub undeliverable: u64,
    /// Redelivery attempts made (sends beyond the first).
    pub redeliveries: u64,
    /// Messages abandoned after exhausting redelivery attempts.
    pub redelivery_given_up: u64,
    /// Confirmation records evicted by the retention sweep.
    pub confirmations_evicted: u64,
    /// Delivery-dedup entries evicted by the retention sweep.
    pub deliveries_evicted: u64,
}

impl Default for Messenger {
    fn default() -> Self {
        Messenger::new(64)
    }
}

impl Messenger {
    /// Messenger with a forwarding cap.
    pub fn new(forward_cap: u32) -> Messenger {
        Messenger {
            seq: 0,
            special: HashMap::new(),
            confirmations: HashMap::new(),
            outstanding: HashMap::new(),
            delivered: HashSet::new(),
            forward_cap,
            forwards_performed: 0,
            undeliverable: 0,
            redeliveries: 0,
            redelivery_given_up: 0,
            confirmations_evicted: 0,
            deliveries_evicted: 0,
        }
    }

    /// Compact bookkeeping older than `ttl_ms`: confirmation records
    /// (kept "for further possible inquiry" — the window bounds how far
    /// back an inquiry can reach) and delivery-dedup entries (safe to
    /// drop once every retransmission of the message has surely died;
    /// their key embeds the send timestamp). Eviction counts are kept
    /// in [`confirmations_evicted`](Self::confirmations_evicted) and
    /// [`deliveries_evicted`](Self::deliveries_evicted).
    pub fn compact(&mut self, now: Millis, ttl_ms: u64) {
        let before = self.confirmations.len();
        self.confirmations
            .retain(|_, rec| now.since(rec.at) < ttl_ms);
        self.confirmations_evicted += (before - self.confirmations.len()) as u64;
        let before = self.delivered.len();
        self.delivered
            .retain(|(_, _, sent_at)| now.since(Millis(*sent_at)) < ttl_ms);
        self.deliveries_evicted += (before - self.delivered.len()) as u64;
    }

    /// Next per-server message sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Stash an early message for a naplet that has not arrived yet
    /// (§4.2 case 3: "insert the message into a special mailbox,
    /// waiting for the arrival of the naplet"). `origin_host` receives
    /// the delivery confirmation when the message is finally drained.
    pub fn stash_early(&mut self, msg: Message, origin_host: &str) {
        self.special
            .entry(msg.to.clone())
            .or_default()
            .push((msg, origin_host.to_string()));
    }

    /// On naplet arrival: take everything waiting in the special
    /// mailbox ("dumps the B's messages in the special mailbox to B's
    /// mailbox"), each with its confirmation destination.
    pub fn drain_early(&mut self, id: &NapletId) -> Vec<(Message, String)> {
        self.special.remove(id).unwrap_or_default()
    }

    /// Number of messages currently waiting in special mailboxes.
    pub fn early_waiting(&self) -> usize {
        self.special.values().map(Vec::len).sum()
    }

    /// Record a delivery confirmation for a message this server
    /// originated.
    pub fn record_confirmation(
        &mut self,
        sender: Sender,
        seq: u64,
        delivered_at: &str,
        now: Millis,
    ) {
        self.outstanding.remove(&(sender.clone(), seq));
        self.confirmations.insert(
            (sender, seq),
            ConfirmRecord {
                delivered_at: delivered_at.to_string(),
                at: now,
            },
        );
    }

    /// Start tracking an origin-posted message for redelivery. Returns
    /// `true` when this is a new registration (the caller should arm a
    /// redelivery timer), `false` when the message is already tracked
    /// or already confirmed.
    pub fn track_outstanding(&mut self, msg: &Message, now: Millis) -> bool {
        let key = (msg.from.clone(), msg.seq);
        if self.confirmations.contains_key(&key) || self.outstanding.contains_key(&key) {
            return false;
        }
        self.outstanding.insert(
            key,
            OutstandingPost {
                msg: msg.clone(),
                attempts: 1,
                first_sent: now,
            },
        );
        true
    }

    /// The unconfirmed record for a message identity, if any.
    pub fn unconfirmed(&self, sender: &Sender, seq: u64) -> Option<&OutstandingPost> {
        self.outstanding.get(&(sender.clone(), seq))
    }

    /// Messages currently awaiting confirmation.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Bump the attempt counter and return a fresh copy of the message
    /// for retransmission. `None` when the message is no longer tracked
    /// (confirmed or abandoned in the meantime).
    pub fn begin_redelivery(&mut self, sender: &Sender, seq: u64) -> Option<Message> {
        let rec = self.outstanding.get_mut(&(sender.clone(), seq))?;
        rec.attempts += 1;
        self.redeliveries += 1;
        Some(rec.msg.clone())
    }

    /// Abandon redelivery of a message. Returns `true` when it was
    /// still tracked.
    pub fn give_up(&mut self, sender: &Sender, seq: u64) -> bool {
        let removed = self.outstanding.remove(&(sender.clone(), seq)).is_some();
        if removed {
            self.redelivery_given_up += 1;
        }
        removed
    }

    /// Idempotent delivery check: returns `true` the first time a
    /// message identity is delivered at this server, `false` for a
    /// retransmitted duplicate (which must still be re-confirmed but
    /// not deposited again). Entries age out under the server's
    /// retention window via [`compact`](Self::compact).
    pub fn record_delivery(&mut self, sender: Sender, seq: u64, sent_at: Millis) -> bool {
        self.delivered.insert((sender, seq, sent_at.0))
    }

    /// A delivered-but-unread message left this server's custody (it
    /// was re-posted toward the naplet's next host at departure):
    /// forget the delivery so the chase can deliver it again here if
    /// the naplet's travels bring it back. Returns `true` when a
    /// record was removed.
    pub fn forget_delivery(&mut self, sender: &Sender, seq: u64, sent_at: Millis) -> bool {
        self.delivered.remove(&(sender.clone(), seq, sent_at.0))
    }

    /// Inquiry: has the message been confirmed, and where?
    pub fn confirmation(&self, sender: &Sender, seq: u64) -> Option<&ConfirmRecord> {
        self.confirmations.get(&(sender.clone(), seq))
    }

    /// Decide whether a non-resident target's message may be forwarded
    /// once more; counts the hop or the drop.
    pub fn may_forward(&mut self, msg: &Message) -> bool {
        if msg.forward_hops >= self.forward_cap {
            self.undeliverable += 1;
            false
        } else {
            self.forwards_performed += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::value::Value;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    fn msg(seq: u64, to: NapletId, hops: u32) -> Message {
        let mut m = Message::user(seq, Sender::Owner("home".into()), to, Millis(0), Value::Nil);
        m.forward_hops = hops;
        m
    }

    #[test]
    fn seq_is_monotone() {
        let mut m = Messenger::default();
        let a = m.next_seq();
        let b = m.next_seq();
        assert!(b > a);
    }

    #[test]
    fn special_mailbox_stashes_and_drains_in_order() {
        let mut m = Messenger::default();
        m.stash_early(msg(1, nid(5), 0), "s1");
        m.stash_early(msg(2, nid(5), 0), "s2");
        m.stash_early(msg(3, nid(6), 0), "s1");
        assert_eq!(m.early_waiting(), 3);
        let drained = m.drain_early(&nid(5));
        assert_eq!(
            drained.iter().map(|(m, _)| m.seq).collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(
            drained.iter().map(|(_, o)| o.as_str()).collect::<Vec<_>>(),
            ["s1", "s2"]
        );
        assert_eq!(m.early_waiting(), 1);
        assert!(m.drain_early(&nid(5)).is_empty());
    }

    #[test]
    fn confirmations_recorded_and_inquired() {
        let mut m = Messenger::default();
        let sender = Sender::Naplet(nid(1));
        assert!(m.confirmation(&sender, 7).is_none());
        m.record_confirmation(sender.clone(), 7, "s3", Millis(44));
        let c = m.confirmation(&sender, 7).unwrap();
        assert_eq!(c.delivered_at, "s3");
        assert_eq!(c.at, Millis(44));
    }

    #[test]
    fn forward_cap_enforced() {
        let mut m = Messenger::new(2);
        assert!(m.may_forward(&msg(1, nid(1), 0)));
        assert!(m.may_forward(&msg(1, nid(1), 1)));
        assert!(!m.may_forward(&msg(1, nid(1), 2)));
        assert_eq!(m.forwards_performed, 2);
        assert_eq!(m.undeliverable, 1);
    }

    #[test]
    fn outstanding_tracked_until_confirmed() {
        let mut m = Messenger::default();
        let message = msg(7, nid(1), 0);
        assert!(m.track_outstanding(&message, Millis(10)));
        assert!(!m.track_outstanding(&message, Millis(11)), "no double-arm");
        assert_eq!(m.outstanding_count(), 1);
        assert_eq!(m.unconfirmed(&message.from, 7).unwrap().attempts, 1);

        let copy = m.begin_redelivery(&message.from, 7).unwrap();
        assert_eq!(copy.seq, 7);
        assert_eq!(m.unconfirmed(&message.from, 7).unwrap().attempts, 2);
        assert_eq!(m.redeliveries, 1);

        m.record_confirmation(message.from.clone(), 7, "s2", Millis(50));
        assert_eq!(m.outstanding_count(), 0);
        assert!(m.begin_redelivery(&message.from, 7).is_none());
        // a confirmed message is never re-tracked
        assert!(!m.track_outstanding(&message, Millis(60)));
    }

    #[test]
    fn give_up_counts_abandonment() {
        let mut m = Messenger::default();
        let message = msg(3, nid(2), 0);
        m.track_outstanding(&message, Millis(0));
        assert!(m.give_up(&message.from, 3));
        assert!(!m.give_up(&message.from, 3));
        assert_eq!(m.redelivery_given_up, 1);
        assert_eq!(m.outstanding_count(), 0);
    }

    #[test]
    fn compact_evicts_by_ttl_and_counts() {
        let mut m = Messenger::default();
        let sender = Sender::Naplet(nid(1));
        m.record_confirmation(sender.clone(), 1, "s1", Millis(100));
        m.record_confirmation(sender.clone(), 2, "s1", Millis(900));
        m.record_delivery(sender.clone(), 1, Millis(100));
        m.record_delivery(sender.clone(), 2, Millis(900));
        m.compact(Millis(1000), 500);
        assert_eq!(m.confirmations_evicted, 1);
        assert_eq!(m.deliveries_evicted, 1);
        assert!(m.confirmation(&sender, 1).is_none());
        assert!(m.confirmation(&sender, 2).is_some());
        // the evicted delivery entry is forgotten: a (very) late
        // duplicate would be deposited again — the retention window is
        // chosen far beyond any retransmission horizon
        assert!(m.record_delivery(sender.clone(), 1, Millis(100)));
        assert!(!m.record_delivery(sender, 2, Millis(900)));
    }

    #[test]
    fn duplicate_deliveries_detected() {
        let mut m = Messenger::default();
        let sender = Sender::Naplet(nid(9));
        assert!(m.record_delivery(sender.clone(), 1, Millis(5)));
        assert!(!m.record_delivery(sender.clone(), 1, Millis(5)), "dup");
        // same seq from a different origin server (later timestamp) is
        // a distinct message, not a duplicate
        assert!(m.record_delivery(sender.clone(), 1, Millis(80)));
        assert!(m.record_delivery(sender, 2, Millis(5)));
    }
}
