//! Messenger state: the post office (paper §2.2, §4.2).
//!
//! The routing *protocol* (locate → send → forward-chase → confirm)
//! is driven by the server's wire handling; this module owns the
//! messenger's bookkeeping:
//!
//! * per-sender sequence numbers (message identity);
//! * the **special mailbox** for messages that arrive *before* their
//!   target naplet does (§4.2 case 3);
//! * delivery confirmations kept "only for further possible inquiry
//!   from naplet A" — and used to refresh the location cache;
//! * forwarding-hop accounting and the cycle-breaking cap.

use std::collections::HashMap;

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;
use naplet_core::message::{Message, Sender};

/// Record of a confirmed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmRecord {
    /// Server that finally delivered the message.
    pub delivered_at: String,
    /// When the confirmation arrived back here.
    pub at: Millis,
}

/// Per-server post office state.
#[derive(Debug)]
pub struct Messenger {
    seq: u64,
    special: HashMap<NapletId, Vec<Message>>,
    confirmations: HashMap<(Sender, u64), ConfirmRecord>,
    /// Maximum forwarding hops before a message is dropped as
    /// undeliverable (breaks pathological chase cycles).
    pub forward_cap: u32,
    /// Forwarding hops this server has performed (E5 reports these).
    pub forwards_performed: u64,
    /// Messages dropped at the cap.
    pub undeliverable: u64,
}

impl Default for Messenger {
    fn default() -> Self {
        Messenger::new(64)
    }
}

impl Messenger {
    /// Messenger with a forwarding cap.
    pub fn new(forward_cap: u32) -> Messenger {
        Messenger {
            seq: 0,
            special: HashMap::new(),
            confirmations: HashMap::new(),
            forward_cap,
            forwards_performed: 0,
            undeliverable: 0,
        }
    }

    /// Next per-server message sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Stash an early message for a naplet that has not arrived yet
    /// (§4.2 case 3: "insert the message into a special mailbox,
    /// waiting for the arrival of the naplet").
    pub fn stash_early(&mut self, msg: Message) {
        self.special.entry(msg.to.clone()).or_default().push(msg);
    }

    /// On naplet arrival: take everything waiting in the special
    /// mailbox ("dumps the B's messages in the special mailbox to B's
    /// mailbox").
    pub fn drain_early(&mut self, id: &NapletId) -> Vec<Message> {
        self.special.remove(id).unwrap_or_default()
    }

    /// Number of messages currently waiting in special mailboxes.
    pub fn early_waiting(&self) -> usize {
        self.special.values().map(Vec::len).sum()
    }

    /// Record a delivery confirmation for a message this server
    /// originated.
    pub fn record_confirmation(
        &mut self,
        sender: Sender,
        seq: u64,
        delivered_at: &str,
        now: Millis,
    ) {
        self.confirmations.insert(
            (sender, seq),
            ConfirmRecord {
                delivered_at: delivered_at.to_string(),
                at: now,
            },
        );
    }

    /// Inquiry: has the message been confirmed, and where?
    pub fn confirmation(&self, sender: &Sender, seq: u64) -> Option<&ConfirmRecord> {
        self.confirmations.get(&(sender.clone(), seq))
    }

    /// Decide whether a non-resident target's message may be forwarded
    /// once more; counts the hop or the drop.
    pub fn may_forward(&mut self, msg: &Message) -> bool {
        if msg.forward_hops >= self.forward_cap {
            self.undeliverable += 1;
            false
        } else {
            self.forwards_performed += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::value::Value;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    fn msg(seq: u64, to: NapletId, hops: u32) -> Message {
        let mut m = Message::user(seq, Sender::Owner("home".into()), to, Millis(0), Value::Nil);
        m.forward_hops = hops;
        m
    }

    #[test]
    fn seq_is_monotone() {
        let mut m = Messenger::default();
        let a = m.next_seq();
        let b = m.next_seq();
        assert!(b > a);
    }

    #[test]
    fn special_mailbox_stashes_and_drains_in_order() {
        let mut m = Messenger::default();
        m.stash_early(msg(1, nid(5), 0));
        m.stash_early(msg(2, nid(5), 0));
        m.stash_early(msg(3, nid(6), 0));
        assert_eq!(m.early_waiting(), 3);
        let drained = m.drain_early(&nid(5));
        assert_eq!(drained.iter().map(|m| m.seq).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(m.early_waiting(), 1);
        assert!(m.drain_early(&nid(5)).is_empty());
    }

    #[test]
    fn confirmations_recorded_and_inquired() {
        let mut m = Messenger::default();
        let sender = Sender::Naplet(nid(1));
        assert!(m.confirmation(&sender, 7).is_none());
        m.record_confirmation(sender.clone(), 7, "s3", Millis(44));
        let c = m.confirmation(&sender, 7).unwrap();
        assert_eq!(c.delivered_at, "s3");
        assert_eq!(c.at, Millis(44));
    }

    #[test]
    fn forward_cap_enforced() {
        let mut m = Messenger::new(2);
        assert!(m.may_forward(&msg(1, nid(1), 0)));
        assert!(m.may_forward(&msg(1, nid(1), 1)));
        assert!(!m.may_forward(&msg(1, nid(1), 2)));
        assert_eq!(m.forwards_performed, 2);
        assert_eq!(m.undeliverable, 1);
    }
}
