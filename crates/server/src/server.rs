//! The NapletServer: one dock of naplets per host (paper §2.2).
//!
//! A server wires the seven architecture components together —
//! NapletMonitor, NapletSecurityManager, ResourceManager,
//! NapletManager, Messenger, Navigator (the migration protocol in this
//! file) and Locator — plus dynamically created ServiceChannels. It is
//! written as a deterministic event handler: a driver feeds it
//! [`Input`]s and enacts the [`Output`]s, so the same server runs
//! under the discrete-event runtime and under threaded drivers.

use std::collections::HashMap;

use naplet_core::behavior::ActionRegistry;
use naplet_core::clock::Millis;
use naplet_core::codebase::{CodeCache, CodebaseRegistry};
use naplet_core::context::NapletContext;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::itinerary::{ActionSpec, Cursor, Step};
use naplet_core::message::{ControlVerb, Mailbox, Message, Payload, Sender};
use naplet_core::naplet::{AgentKind, Naplet, SharedNaplet};
use naplet_core::value::Value;
use naplet_vm::{ContextVmHost, VmImage, VmYield};

use naplet_obs::{ObsSink, TraceKind, COUNT_BOUNDS, LATENCY_BOUNDS_MS};

use crate::directory::{DirEvent, NapletDirectory};
use crate::events::{EventLog, Input, LocalEvent, LogEntry, Output, TransferEnvelope, Wire};
use crate::journal::{Journal, JournalPhase, RecoveryStats};
use crate::lease::{LeasePolicy, LeaseTable};
use crate::locator::Locator;
use crate::manager::{NapletManager, NapletStatus};
use crate::messenger::Messenger;
use crate::monitor::{MonitorPolicy, NapletMonitor, RunState};
use crate::repl::{DirOp, ReplConfig, ReplNote, ReplicaCore};
use crate::resources::ResourceManager;
use crate::retry::RetryPolicy;
use crate::security::{Permission, SecurityManager};
use crate::status::{ResidentStatus, StatusReport};

/// How naplets are traced and located (paper §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationMode {
    /// A centralized NapletDirectory at the named host.
    CentralDirectory(String),
    /// Distributed directory: each naplet's home manager tracks it
    /// (the home is derived from the naplet id).
    HomeManagers,
    /// No directory: footprint traces + message forwarding.
    ForwardingTrace,
    /// The directory replicated over the named hosts with the
    /// leader-lease consensus core ([`crate::repl`]): registrations
    /// commit on a majority, lookups are served from any replica's
    /// committed state, and the name space survives replica crashes.
    ReplicatedDirectory(Vec<String>),
}

/// Static server configuration. `Clone` so a crash driver can rebuild
/// a server from the same configuration it was born with.
#[derive(Clone)]
pub struct ServerConfig {
    /// This server's host name (one server per host).
    pub host: String,
    /// Location mode shared by the naplet space.
    pub mode: LocationMode,
    /// Security manager (policy + trusted keys).
    pub security: SecurityManager,
    /// Monitor resource policy.
    pub monitor_policy: MonitorPolicy,
    /// Codebase registry for native behaviours.
    pub codebase: CodebaseRegistry,
    /// Named post-actions.
    pub actions: ActionRegistry,
    /// Admission cap: refuse LANDING above this many residents.
    pub max_residents: Option<usize>,
    /// Retry/backoff parameters for the reliable-transfer layer.
    pub retry: RetryPolicy,
    /// Home-side lease policy for dispatched naplets. `None` (the
    /// default) disables leasing entirely — no lease timers, no extra
    /// wire traffic, byte totals identical to a lease-free server.
    pub lease: Option<LeasePolicy>,
    /// Retention window for dedup/bookkeeping tables (receiver-side
    /// transfer dedup, messenger confirmations): entries older than
    /// this are compacted away.
    pub retention_ms: u64,
    /// Ring capacity of the human-readable event log; the oldest lines
    /// are evicted (and counted) beyond this. 0 disables the log.
    pub log_capacity: usize,
    /// Consensus timing override for [`LocationMode::ReplicatedDirectory`]
    /// members. `None` (the default) derives [`ReplConfig::new`] from
    /// the mode's replica list; irrelevant in every other mode.
    pub repl: Option<ReplConfig>,
}

impl ServerConfig {
    /// Open configuration (allow-all security, defaults) for `host`.
    pub fn open(host: &str, mode: LocationMode) -> ServerConfig {
        ServerConfig {
            host: host.to_string(),
            mode,
            security: SecurityManager::open(),
            monitor_policy: MonitorPolicy::default(),
            codebase: CodebaseRegistry::new(),
            actions: ActionRegistry::new(),
            max_residents: None,
            retry: RetryPolicy::default(),
            lease: None,
            retention_ms: 600_000,
            log_capacity: 4096,
            repl: None,
        }
    }
}

/// Where an outbound migration stands in the acknowledged handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferPhase {
    /// LandingRequest sent; waiting for the LandingReply permit.
    AwaitingPermit,
    /// Transfer sent; waiting for the receiver's TransferAck. The
    /// origin retains the serialized naplet until then.
    AwaitingAck,
}

/// What the origin retains for an outbound migration.
enum RetainedAgent {
    /// The live in-memory handle: custody before the Transfer frame is
    /// sent, and (on the baseline profile) for the whole handoff.
    Local(SharedNaplet),
    /// After the Transfer is sent on the CoW path the origin keeps only
    /// the encoded image: the live handle rides in the frame, so the
    /// destination's admission is a move instead of a deep clone. The
    /// rare retransmit/failure paths decode the image back.
    Image {
        id: NapletId,
        bytes: std::sync::Arc<Vec<u8>>,
    },
}

impl RetainedAgent {
    fn id(&self) -> &NapletId {
        match self {
            RetainedAgent::Local(n) => n.id(),
            RetainedAgent::Image { id, .. } => id,
        }
    }

    /// The live handle, present outside the post-send CoW window.
    fn local(&self) -> Option<&SharedNaplet> {
        match self {
            RetainedAgent::Local(n) => Some(n),
            RetainedAgent::Image { .. } => None,
        }
    }

    /// Take the agent back into sole local custody (failure paths).
    fn into_naplet(self) -> Naplet {
        match self {
            RetainedAgent::Local(n) => n.into_owned(),
            RetainedAgent::Image { bytes, .. } => naplet_core::codec::from_bytes(&bytes)
                .expect("retained agent image decodes: it was produced by our own encoder"),
        }
    }
}

/// An outbound migration the navigator has not committed yet. The
/// naplet stays in the origin's custody until the destination
/// acknowledges the transfer, so a lost frame can be retried and a
/// dead destination can be failed over.
struct PendingTransfer {
    /// The retained custody copy — live handle or encoded image.
    naplet: RetainedAgent,
    action: Option<ActionSpec>,
    mailbox: Mailbox,
    dest: String,
    /// Cursor snapshot from before the `advance()` that chose `dest`;
    /// restored on permanent failure so the itinerary can re-decide
    /// (an `Alt` then falls back to its next branch).
    checkpoint: Cursor,
    phase: TransferPhase,
    attempt: u32,
    /// When the handoff opened (LandingRequest first sent) — the base
    /// of the handoff-RTT and landing-latency observations.
    started: Millis,
}

struct PendingQuery {
    msg: Message,
}

type AppHandler = Box<dyn FnMut(&str, &[u8]) -> Result<Vec<u8>> + Send>;
type StateHook = Box<dyn FnMut(&mut naplet_core::state::ServerStateView<'_>) + Send>;

/// One naplet server (a dock of naplets within a host).
pub struct NapletServer {
    host: String,
    mode: LocationMode,
    security: SecurityManager,
    /// Open + privileged services and live channels.
    pub resources: ResourceManager,
    /// Execution monitor.
    pub monitor: NapletMonitor,
    /// Naplet table + footprints.
    pub manager: NapletManager,
    /// Post-office state.
    pub messenger: Messenger,
    /// Location cache.
    pub locator: Locator,
    /// Directory shard: the registry itself when this host is (or
    /// serves as home for) a directory holder.
    pub directory: NapletDirectory,
    codebase: CodebaseRegistry,
    code_cache: CodeCache,
    actions: ActionRegistry,
    max_residents: Option<usize>,
    retry: RetryPolicy,
    /// Copy-on-write handoff fast path (default on). Off restores the
    /// pre-optimization costs — deep agent clones per transfer frame
    /// and a full re-encode per journal write — so the bench suite can
    /// measure the optimization honestly inside one process. Wire
    /// bytes and traces are identical either way.
    cow_handoff: bool,
    next_token: u64,
    pending_transfers: HashMap<u64, PendingTransfer>,
    pending_queries: HashMap<u64, PendingQuery>,
    /// Naplets whose LANDING we granted and whose transfer has not
    /// arrived yet: messages for them wait here instead of chasing a
    /// stale footprint trail (§4.2 case 3 under cyclic itineraries).
    expected_arrivals: HashMap<NapletId, Millis>,
    /// Transfers already admitted here, keyed by (origin host,
    /// transfer id): a retransmitted `Transfer` is re-acknowledged but
    /// never re-admitted (idempotent delivery).
    seen_transfers: HashMap<(String, u64), Millis>,
    /// Naplets stranded here after the reliable-transfer layer gave up
    /// on a required destination with no itinerary fallback. Held for
    /// owner inspection/recovery; their home is notified with
    /// [`NapletStatus::Parked`].
    pub parked: HashMap<NapletId, Naplet>,
    app_handler: Option<AppHandler>,
    state_hook: Option<StateHook>,
    /// Write-ahead journal: durable naplet snapshots at protocol
    /// boundaries, replayed by [`recover`](Self::recover).
    journal: Journal,
    /// Home-side lease policy; `None` disables leasing.
    lease_policy: Option<LeasePolicy>,
    /// Live leases for naplets dispatched from this (home) server.
    pub leases: LeaseTable,
    retention_ms: u64,
    last_sweep: Millis,
    /// Recovery diagnostics accumulated across crash replays.
    recovery: RecoveryStats,
    /// Receiver-side dedup entries evicted by the retention sweep.
    pub seen_evicted: u64,
    /// Navigation logs of journeys that completed at this server
    /// (diagnostics: duplicate-visit assertions read these).
    pub completed: Vec<(NapletId, naplet_core::navlog::NavigationLog)>,
    /// Listener reports received for naplets homed here.
    pub reports: Vec<(NapletId, Value)>,
    /// Application-level replies received at this host
    /// (token, tag, body).
    pub app_replies: Vec<(u64, String, Vec<u8>)>,
    /// Status-probe replies received at this host (token, report);
    /// `None` reports mark probes the peer's security policy refused.
    pub status_replies: Vec<(u64, Option<StatusReport>)>,
    /// Flight-recorder pages received at this host (token, segment);
    /// `None` segments mark reads the peer's security policy refused.
    pub trace_replies: Vec<(u64, Option<naplet_obs::TraceSegment>)>,
    /// Metrics-history pages received at this host (token, page);
    /// `None` pages mark reads the peer's security policy refused.
    pub metrics_history_replies: Vec<(u64, Option<naplet_obs::MetricsHistoryPage>)>,
    /// Human-readable event log (bounded ring).
    pub log: EventLog,
    /// Structured observation endpoint (shared with the driver).
    obs: ObsSink,
    /// Consensus core — present only when this host is a member of a
    /// [`LocationMode::ReplicatedDirectory`] replica set.
    repl: Option<ReplicaCore>,
    /// Rotating index into the replica set for non-member hosts;
    /// bumped on registration retries and stale lookups so a dead
    /// replica is routed around.
    replica_hint: usize,
    /// Leader-side registrations awaiting commit: log index →
    /// (ack destination, naplet). The `DirAck` is released only once
    /// the entry is majority-replicated — a committed registration is
    /// never lost to a leader crash.
    repl_pending_acks: HashMap<u64, (String, NapletId)>,
    /// Home-side lease probes in flight (token → naplet): in
    /// replicated mode an expired lease is verified against the
    /// replicated directory before the orphan is re-dispatched.
    pending_lease_probes: HashMap<u64, NapletId>,
    /// Probe attempts per naplet whose lease is in question.
    lease_probe_attempts: HashMap<NapletId, u32>,
    /// True while a `ReplTick` is scheduled; keeps exactly one tick
    /// chain alive so an idle replica schedules nothing.
    repl_tick_armed: bool,
}

impl NapletServer {
    /// Build a server from its configuration.
    pub fn new(config: ServerConfig) -> NapletServer {
        let journal = Journal::in_memory();
        let repl = match &config.mode {
            LocationMode::ReplicatedDirectory(replicas) if replicas.contains(&config.host) => {
                let cfg = config
                    .repl
                    .clone()
                    .unwrap_or_else(|| ReplConfig::new(replicas.clone()));
                Some(ReplicaCore::recover(&config.host, cfg, &journal))
            }
            _ => None,
        };
        NapletServer {
            host: config.host,
            mode: config.mode,
            security: config.security,
            resources: ResourceManager::new(),
            monitor: NapletMonitor::new(config.monitor_policy),
            manager: NapletManager::new(),
            messenger: Messenger::default(),
            locator: Locator::default(),
            directory: NapletDirectory::new(),
            codebase: config.codebase,
            code_cache: CodeCache::new(),
            actions: config.actions,
            max_residents: config.max_residents,
            retry: config.retry,
            cow_handoff: true,
            next_token: 0,
            pending_transfers: HashMap::new(),
            pending_queries: HashMap::new(),
            expected_arrivals: HashMap::new(),
            seen_transfers: HashMap::new(),
            parked: HashMap::new(),
            app_handler: None,
            state_hook: None,
            journal,
            lease_policy: config.lease,
            leases: LeaseTable::new(),
            retention_ms: config.retention_ms,
            last_sweep: Millis(0),
            recovery: RecoveryStats::default(),
            seen_evicted: 0,
            completed: Vec::new(),
            reports: Vec::new(),
            app_replies: Vec::new(),
            status_replies: Vec::new(),
            trace_replies: Vec::new(),
            metrics_history_replies: Vec::new(),
            log: EventLog::with_capacity(config.log_capacity),
            obs: ObsSink::default(),
            repl,
            replica_hint: 0,
            repl_pending_acks: HashMap::new(),
            pending_lease_probes: HashMap::new(),
            lease_probe_attempts: HashMap::new(),
            repl_tick_armed: false,
        }
    }

    /// Attach the shared observation sink (drivers call this so every
    /// server in a space records into one trace/metrics endpoint).
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The observation sink this server records into.
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// This server's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Install the application-level request handler (client/server
    /// baselines; metered as `Snmp` traffic).
    pub fn set_app_handler(
        &mut self,
        f: impl FnMut(&str, &[u8]) -> Result<Vec<u8>> + Send + 'static,
    ) {
        self.app_handler = Some(Box::new(f));
    }

    /// Install a hook run against every arriving naplet's state
    /// *through the mode-checked server view* (paper §2.1: "a naplet
    /// server can update a returning naplet with new information" —
    /// but only in entries whose protection mode admits this host).
    pub fn set_arrival_state_hook(
        &mut self,
        f: impl FnMut(&mut naplet_core::state::ServerStateView<'_>) + Send + 'static,
    ) {
        self.state_hook = Some(Box::new(f));
    }

    /// Mutable access to the security manager (policy reconfiguration).
    pub fn security_mut(&mut self) -> &mut SecurityManager {
        &mut self.security
    }

    /// Toggle the copy-on-write handoff fast path (default on).
    /// Turning it off restores the pre-optimization baseline — a deep
    /// agent clone per transfer frame and a full re-encode per journal
    /// write — and exists so the bench suite can A/B the optimization
    /// within one process. Observable behaviour (wire bytes, traces,
    /// journal contents) is identical either way.
    pub fn set_cow_handoff(&mut self, enabled: bool) {
        self.cow_handoff = enabled;
    }

    /// Mutable access to the action registry.
    pub fn actions_mut(&mut self) -> &mut ActionRegistry {
        &mut self.actions
    }

    /// Replace the journal (e.g. with a [`crate::journal::FileStore`]
    /// backing, or to hand a crashed server's journal to its rebuilt
    /// replacement). Call before any naplets are hosted.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Take the journal out of the server, leaving a fresh in-memory
    /// one. Crash drivers use this: the journal is the only state that
    /// survives the wipe.
    pub fn take_journal(&mut self) -> Journal {
        std::mem::replace(&mut self.journal, Journal::in_memory())
    }

    /// Read access to the journal (diagnostics/tests).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Recovery diagnostics: naplets rehydrated, replays suppressed,
    /// handoffs resumed, plus the lease table's expiry counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut stats = self.recovery;
        stats.leases_expired = self.leases.expired;
        stats.orphans_redispatched = self.leases.redispatched;
        stats.agents_lost = self.leases.lost;
        stats
    }

    fn logf(&mut self, now: Millis, line: String) {
        self.log.push(LogEntry { at: now, line });
    }

    /// High-water mark of the special (early-arrival) mailbox.
    fn note_special_mailbox_depth(&self) {
        self.obs.metrics.gauge_max(
            "special_mailbox_depth",
            self.messenger.early_waiting() as u64,
        );
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        // durably advance the watermark so a recovered server never
        // reissues a transfer id that may be live in a peer's dedup set
        let _ = self.journal.set_token_watermark(self.next_token);
        self.next_token
    }

    /// Journal a naplet snapshot, logging (not failing) on store errors
    /// — a degraded journal weakens durability, never the live run.
    fn journal_naplet(&mut self, naplet: &Naplet, phase: JournalPhase, now: Millis) {
        let id = naplet.id().clone();
        let phase_label = phase_label(&phase);
        if let Err(e) = self.journal.record_naplet(&id, naplet, phase, now) {
            self.logf(now, format!("JOURNAL write failed for {id}: {e}"));
        }
        let records = self.journal.len() as u64;
        self.obs
            .metrics
            .observe("journal_records", COUNT_BOUNDS, records);
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::JournalAppend {
                phase: phase_label.to_string(),
                records,
            });
    }

    /// Journal a snapshot from a shared agent image, reusing its cached
    /// encoding instead of re-serializing the whole agent per write.
    /// Falls back to the re-encoding path when the CoW fast path is
    /// disabled (bench baseline) or encoding fails.
    fn journal_shared(&mut self, naplet: &SharedNaplet, phase: JournalPhase, now: Millis) {
        if !self.cow_handoff {
            let owned = naplet.get().clone();
            self.journal_naplet(&owned, phase, now);
            return;
        }
        let bytes = match naplet.wire_bytes() {
            Ok(bytes) => bytes,
            Err(_) => {
                let owned = naplet.get().clone();
                self.journal_naplet(&owned, phase, now);
                return;
            }
        };
        let id = naplet.id().clone();
        self.journal_image(&id, &bytes, phase, now);
    }

    /// Journal a pre-encoded agent image directly.
    fn journal_image(&mut self, id: &NapletId, bytes: &[u8], phase: JournalPhase, now: Millis) {
        let phase_label = phase_label(&phase);
        if let Err(e) = self.journal.record_naplet_bytes(id, bytes, phase, now) {
            self.logf(now, format!("JOURNAL write failed for {id}: {e}"));
        }
        let records = self.journal.len() as u64;
        self.obs
            .metrics
            .observe("journal_records", COUNT_BOUNDS, records);
        self.obs
            .emit(now, &self.host, Some(id), || TraceKind::JournalAppend {
                phase: phase_label.to_string(),
                records,
            });
    }

    /// Journal from whatever custody form the origin currently holds.
    fn journal_retained(&mut self, retained: &RetainedAgent, phase: JournalPhase, now: Millis) {
        match retained {
            RetainedAgent::Local(n) => self.journal_shared(n, phase, now),
            RetainedAgent::Image { id, bytes } => {
                let (id, bytes) = (id.clone(), std::sync::Arc::clone(bytes));
                self.journal_image(&id, &bytes, phase, now);
            }
        }
    }

    /// Retire a naplet's journal record and trace the shrink.
    fn journal_retire(&mut self, id: &NapletId, now: Millis) {
        if let Err(e) = self.journal.retire(id) {
            self.logf(now, format!("JOURNAL retire failed for {id}: {e}"));
        }
        let records = self.journal.len() as u64;
        self.obs
            .emit(now, &self.host, Some(id), || TraceKind::JournalRetire {
                records,
            });
    }

    /// Periodic compaction of dedup/bookkeeping tables under the
    /// retention window (satellite: these tables previously grew for
    /// the life of the server).
    fn sweep_retention(&mut self, now: Millis) {
        if now.since(self.last_sweep) < self.retention_ms / 4 {
            return;
        }
        self.last_sweep = now;
        let ttl = self.retention_ms;
        let before = self.seen_transfers.len();
        self.seen_transfers.retain(|_, t| now.since(*t) < ttl);
        self.seen_evicted += (before - self.seen_transfers.len()) as u64;
        // the durable copies of the same entries age out in lock-step
        let _ = self.journal.compact_seen(now, ttl);
        self.messenger.compact(now, ttl);
    }

    /// The host that holds directory state for `id` under the current
    /// mode, or `None` in pure forwarding mode.
    fn directory_holder(&self, id: &NapletId) -> Option<String> {
        match &self.mode {
            LocationMode::CentralDirectory(host) => Some(host.clone()),
            LocationMode::HomeManagers => Some(id.home().to_string()),
            LocationMode::ForwardingTrace => None,
            LocationMode::ReplicatedDirectory(replicas) => {
                if let Some(repl) = &self.repl {
                    // a member handles (or forwards) locally; prefer
                    // the leader when known so one hop suffices
                    Some(repl.leader_hint().unwrap_or(&self.host).to_string())
                } else if replicas.is_empty() {
                    None
                } else {
                    Some(replicas[self.replica_hint % replicas.len()].clone())
                }
            }
        }
    }

    // =====================================================================
    // Replicated directory (consensus core hosting)
    // =====================================================================

    /// Keep exactly one `ReplTick` chain alive for the consensus core.
    fn arm_repl_tick(&mut self, out: &mut Vec<Output>) {
        if self.repl_tick_armed {
            return;
        }
        let Some(repl) = &self.repl else {
            return;
        };
        self.repl_tick_armed = true;
        out.push(Output::Schedule {
            delay_ms: repl.config().tick_ms,
            event: LocalEvent::ReplTick,
        });
    }

    /// Mark the initial consensus tick as armed (the driver schedules
    /// the matching `ReplTick` itself when installing the server).
    /// Returns the tick interval, or `None` when this host is not a
    /// directory replica.
    pub fn arm_initial_repl_tick(&mut self) -> Option<u64> {
        let Some(repl) = &self.repl else {
            return None;
        };
        if self.repl_tick_armed {
            return None;
        }
        self.repl_tick_armed = true;
        Some(repl.config().tick_ms)
    }

    /// Whether this host is a directory replica (diagnostics/tests).
    pub fn repl_core(&self) -> Option<&ReplicaCore> {
        self.repl.as_ref()
    }

    /// Route a replicated directory operation: the leader proposes it,
    /// a follower forwards the original wire to its leader, and a
    /// leaderless replica drops it for the sender's retry machinery.
    fn repl_submit(&mut self, op: DirOp, forward: Wire, now: Millis, out: &mut Vec<Output>) {
        let Some(repl) = self.repl.as_mut() else {
            return;
        };
        let woke = repl.client_activity(now);
        if repl.is_leader() {
            let appending = self.obs.profiling_enabled().then(std::time::Instant::now);
            let (index, rout) = repl.propose(op, now, &mut self.journal);
            if let Some(started) = appending {
                self.obs.metrics.observe(
                    "repl_append_us",
                    naplet_obs::HANDLER_BOUNDS_US,
                    started.elapsed().as_micros() as u64,
                );
            }
            if let Some(index) = index {
                if let Wire::DirRegister {
                    id,
                    ack_to: Some(ack_to),
                    ..
                } = forward
                {
                    self.repl_pending_acks.insert(index, (ack_to, id));
                }
            }
            self.enact_repl(now, rout, out);
        } else if let Some(leader) = repl.leader_hint().map(|l| l.to_string()) {
            self.obs.metrics.incr("repl.forwarded", 1);
            out.push(Output::Send {
                to: leader,
                wire: forward,
            });
        } else {
            // no leader yet (election in progress): drop — the
            // registrar's RegisterTimeout machinery re-sends, and the
            // wake above makes sure an election is actually running
            self.obs.metrics.incr("repl.no_leader_drops", 1);
        }
        if woke {
            self.arm_repl_tick(out);
        }
    }

    /// Turn a [`crate::repl::ReplOut`] into wire traffic, committed-op
    /// side effects, metrics and trace events.
    fn enact_repl(&mut self, now: Millis, rout: crate::repl::ReplOut, out: &mut Vec<Output>) {
        for (to, msg) in rout.msgs {
            out.push(Output::Send {
                to,
                wire: Wire::Repl { msg },
            });
        }
        for note in rout.notes {
            match note {
                ReplNote::ElectionStarted { term } => {
                    self.obs.metrics.incr("repl.elections", 1);
                    self.logf(now, format!("REPL campaigning for term {term}"));
                    self.obs
                        .emit(now, &self.host, None, || TraceKind::ReplElection { term });
                }
                ReplNote::LeaderElected { term } => {
                    self.obs.metrics.incr("repl.leader_changes", 1);
                    self.logf(now, format!("REPL won leadership of term {term}"));
                    let leader = self.host.clone();
                    self.obs
                        .emit(now, &self.host, None, || TraceKind::ReplLeader {
                            term,
                            leader,
                        });
                }
                ReplNote::LeaderChanged { term, leader } => {
                    self.obs.metrics.incr("repl.leader_changes", 1);
                    self.logf(now, format!("REPL leader of term {term} is {leader}"));
                    self.obs
                        .emit(now, &self.host, None, || TraceKind::ReplLeader {
                            term,
                            leader,
                        });
                }
                ReplNote::SnapshotInstalled { index } => {
                    self.obs.metrics.incr("repl.snapshots_installed", 1);
                    self.logf(now, format!("REPL snapshot installed through {index}"));
                    self.obs
                        .emit(now, &self.host, None, || TraceKind::ReplSnapshot { index });
                }
            }
        }
        let committing = (!rout.committed.is_empty() && self.obs.profiling_enabled())
            .then(std::time::Instant::now);
        for (index, op, lag) in rout.committed {
            self.obs.metrics.incr("repl.commits", 1);
            if let Some(lag) = lag {
                self.obs
                    .metrics
                    .observe("repl_commit_lag_ms", LATENCY_BOUNDS_MS, lag);
            }
            let label = match &op {
                DirOp::Register { .. } => "register",
                DirOp::Remove { .. } => "remove",
                DirOp::Noop => "noop",
            };
            self.obs
                .emit(now, &self.host, op.subject(), || TraceKind::ReplCommit {
                    index,
                    op: label.to_string(),
                });
            if let DirOp::Register {
                id, host, event, ..
            } = op
            {
                // every replica keeps its liveness/status views fresh
                // from the committed stream
                if id.home() == self.host {
                    self.leases.renew(&id, now);
                }
                let status = if event == DirEvent::Arrival {
                    NapletStatus::Running
                } else {
                    NapletStatus::InTransit
                };
                self.manager.update_status(&id, status, &host, now);
                if self.repl.as_ref().is_some_and(|r| r.is_leader()) {
                    if let Some((ack_to, ack_id)) = self.repl_pending_acks.remove(&index) {
                        if ack_to == self.host {
                            // registrar and leader are the same host:
                            // release the execution gate inline
                            let waiting = self
                                .monitor
                                .get_mut(&ack_id)
                                .is_some_and(|e| e.state == RunState::AwaitingArrivalAck);
                            if waiting {
                                self.proceed_after_registration(&ack_id, false, now, out);
                            }
                        } else {
                            out.push(Output::Send {
                                to: ack_to,
                                wire: Wire::DirAck { id: ack_id },
                            });
                        }
                    }
                    // echo committed movement to a non-replica home so
                    // its lease table still sees signs of life
                    let home = id.home().to_string();
                    let home_is_replica = matches!(
                        &self.mode,
                        LocationMode::ReplicatedDirectory(replicas)
                            if replicas.contains(&home)
                    );
                    if home != self.host && !home_is_replica {
                        out.push(Output::Send {
                            to: home,
                            wire: Wire::DirRegister {
                                id,
                                host,
                                event,
                                ack_to: None,
                                attempt: 1,
                            },
                        });
                    }
                }
            }
        }
        if let Some(started) = committing {
            self.obs.metrics.observe(
                "repl_commit_us",
                naplet_obs::HANDLER_BOUNDS_US,
                started.elapsed().as_micros() as u64,
            );
        }
        if rout.rearm {
            self.arm_repl_tick(out);
        }
    }

    // =====================================================================
    // Entry points
    // =====================================================================

    /// Launch a locally created naplet on its journey. Must be called
    /// on the naplet's home server.
    pub fn launch(&mut self, naplet: Naplet, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        let id = naplet.id().clone();
        self.manager.record_launch(id.clone(), &self.host, now);
        self.manager.record_arrival(&id, None, now);
        self.logf(now, format!("LAUNCH {id}"));
        if self.lease_policy.is_some() {
            // durable creation record first, so an orphan can be
            // re-dispatched even after this server itself crashes
            if let Err(e) = self.journal.record_creation(&id, &naplet) {
                self.logf(now, format!("JOURNAL creation failed for {id}: {e}"));
            }
            self.leases.grant(&id, now);
            self.arm_lease_timer(&id, &mut out);
        }
        self.continue_journey(naplet, Mailbox::new(), now, &mut out);
        out
    }

    /// Post a message on behalf of the owner/console at this host
    /// (remote control and owner→agent data). Routed through the full
    /// post-office protocol.
    pub fn owner_post(&mut self, to: NapletId, payload: Payload, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        let seq = self.messenger.next_seq();
        let msg = Message {
            seq,
            from: Sender::Owner(self.host.clone()),
            to,
            sent_at: now,
            payload,
            forward_hops: 0,
        };
        self.route_message(msg, None, now, &mut out);
        out
    }

    /// Handle one input, producing effects for the driver.
    pub fn handle(&mut self, now: Millis, input: Input) -> Vec<Output> {
        // wall-clock profiling is opt-in (live daemons only): label
        // resolution and the clock read cost nothing when off, and the
        // simulation's deterministic exports never see these readings
        let profile = if self.obs.profiling_enabled() {
            Some((
                match &input {
                    Input::Wire { wire, .. } => wire.label(),
                    Input::Local(ev) => ev.label(),
                },
                std::time::Instant::now(),
            ))
        } else {
            None
        };
        self.sweep_retention(now);
        let mut out = Vec::new();
        match input {
            Input::Wire { from, wire } => self.handle_wire(now, &from, wire, &mut out),
            Input::Local(ev) => self.handle_local(now, ev, &mut out),
        }
        if let Some((label, started)) = profile {
            self.obs.metrics.observe(
                &format!("handler_us.{label}"),
                naplet_obs::HANDLER_BOUNDS_US,
                started.elapsed().as_micros() as u64,
            );
        }
        out
    }

    // =====================================================================
    // Wire handling
    // =====================================================================

    fn handle_wire(&mut self, now: Millis, from: &str, wire: Wire, out: &mut Vec<Output>) {
        match wire {
            Wire::LandingRequest {
                token,
                from_host,
                credential,
                naplet_id,
                est_bytes,
                attempt,
            } => {
                let decision = self.landing_decision(&credential, &naplet_id, est_bytes);
                let (granted, reason) = match decision {
                    Ok(()) => (true, String::new()),
                    Err(e) => (false, e.to_string()),
                };
                if granted {
                    // age out expectations whose transfer was lost so
                    // parked messages do not wait forever
                    self.expected_arrivals.retain(|_, t| now.since(*t) < 60_000);
                    self.expected_arrivals.insert(naplet_id.clone(), now);
                }
                self.logf(
                    now,
                    format!(
                        "LANDING {naplet_id} from {from_host} (attempt {attempt}): {}",
                        if granted { "grant" } else { "deny" }
                    ),
                );
                self.obs.metrics.incr(
                    if granted {
                        "landing.granted"
                    } else {
                        "landing.denied"
                    },
                    1,
                );
                self.obs.emit(now, &self.host, Some(&naplet_id), || {
                    TraceKind::LandingDecision {
                        origin: from_host.clone(),
                        granted,
                        reason: reason.clone(),
                    }
                });
                out.push(Output::Send {
                    to: from_host,
                    wire: Wire::LandingReply {
                        token,
                        granted,
                        reason,
                    },
                });
            }
            Wire::LandingReply {
                token,
                granted,
                reason,
            } => {
                // a reply is stray when the transfer was already
                // committed/failed, or a duplicate when a retried
                // request was answered more than once
                let stale = match self.pending_transfers.get(&token) {
                    None => true,
                    Some(p) => p.phase != TransferPhase::AwaitingPermit,
                };
                if stale {
                    self.logf(now, format!("stray LandingReply token {token}"));
                    return;
                }
                let pending = self.pending_transfers.remove(&token).unwrap();
                {
                    let id = pending.naplet.id().clone();
                    let (dest, started) = (pending.dest.clone(), pending.started);
                    self.obs.metrics.observe(
                        "landing_latency_ms",
                        LATENCY_BOUNDS_MS,
                        now.since(started),
                    );
                    self.obs
                        .emit(now, &self.host, Some(&id), || TraceKind::PermitReceived {
                            dest,
                            transfer_id: token,
                            granted,
                            started,
                        });
                }
                if granted {
                    self.complete_departure(token, pending, now, out);
                } else {
                    let id = pending.naplet.id().clone();
                    self.logf(
                        now,
                        format!("LANDING denied for {id} at {}: {reason}", pending.dest),
                    );
                    // itinerary exception: skip the refused visit
                    self.continue_journey(pending.naplet.into_naplet(), pending.mailbox, now, out);
                }
            }
            Wire::Transfer(envelope) => {
                let transfer_id = envelope.transfer_id;
                let id = envelope.naplet.id().clone();
                let key = (from.to_string(), transfer_id);
                let duplicate = self.seen_transfers.contains_key(&key);
                self.obs
                    .emit(now, &self.host, Some(&id), || TraceKind::TransferReceived {
                        origin: from.to_string(),
                        transfer_id,
                        duplicate,
                    });
                // acknowledge every attempt — the previous ack may have
                // been the frame that was lost
                out.push(Output::Send {
                    to: from.to_string(),
                    wire: Wire::TransferAck {
                        transfer_id,
                        id: id.clone(),
                    },
                });
                if duplicate {
                    self.logf(
                        now,
                        format!(
                            "duplicate TRANSFER {id} (attempt {}): already admitted",
                            envelope.attempt
                        ),
                    );
                    return;
                }
                // durable dedup note: a crashed-and-recovered receiver
                // must still re-ack (not re-admit) a late retransmission
                if let Err(e) = self.journal.note_seen(from, transfer_id, now) {
                    self.logf(now, format!("JOURNAL seen failed for {id}: {e}"));
                }
                self.seen_transfers.insert(key, now);
                self.admit_arrival(envelope, Some(from), Mailbox::new(), now, out);
            }
            Wire::TransferAck { transfer_id, id } => {
                if let Some(pending) = self.pending_transfers.remove(&transfer_id) {
                    // commit: the destination has the agent — release
                    // the retained copy and retire the journal record
                    // (the destination journaled it before acking)
                    self.journal_retire(&id, now);
                    self.logf(now, format!("HANDOFF commit {id} (transfer {transfer_id})"));
                    self.obs.metrics.incr("handoff.commits", 1);
                    self.obs.metrics.observe(
                        "handoff_rtt_ms",
                        LATENCY_BOUNDS_MS,
                        now.since(pending.started),
                    );
                    self.obs.metrics.observe(
                        "transfer_attempts",
                        COUNT_BOUNDS,
                        u64::from(pending.attempt),
                    );
                    self.obs
                        .emit(now, &self.host, Some(&id), || TraceKind::HandoffCommit {
                            dest: pending.dest.clone(),
                            transfer_id,
                            started: pending.started,
                            attempts: pending.attempt,
                        });
                }
            }
            Wire::DirRegister {
                id,
                host,
                event,
                ack_to,
                attempt,
            } => {
                if self.repl.is_some() {
                    let op = DirOp::Register {
                        id: id.clone(),
                        host: host.clone(),
                        event,
                        at: now,
                    };
                    let forward = Wire::DirRegister {
                        id,
                        host,
                        event,
                        ack_to,
                        attempt,
                    };
                    self.repl_submit(op, forward, now, out);
                    return;
                }
                self.directory.register(&id, &host, event, now);
                // any movement registration is a sign of life
                self.leases.renew(&id, now);
                if event == DirEvent::Arrival {
                    self.manager
                        .update_status(&id, NapletStatus::Running, &host, now);
                } else {
                    self.manager
                        .update_status(&id, NapletStatus::InTransit, &host, now);
                }
                if let Some(ack_to) = ack_to {
                    out.push(Output::Send {
                        to: ack_to,
                        wire: Wire::DirAck { id },
                    });
                }
            }
            Wire::DirAck { id } => {
                if let Some(e) = self.monitor.get_mut(&id) {
                    if e.state == RunState::AwaitingArrivalAck {
                        self.proceed_after_registration(&id, false, now, out);
                    }
                }
            }
            Wire::DirRemove { id } => {
                if self.repl.is_some() {
                    let op = DirOp::Remove { id: id.clone() };
                    self.repl_submit(op, Wire::DirRemove { id }, now, out);
                    return;
                }
                self.directory.remove(&id);
            }
            Wire::DirQuery {
                token,
                id,
                reply_to,
            } => {
                // a replica answers from the committed replicated state;
                // any member may serve reads (stale hits are healed by
                // the locator's forwarding chain)
                let entry = if let Some(repl) = &self.repl {
                    repl.state
                        .lookup(&id)
                        .map(|e| (e.host.clone(), e.event, e.at))
                } else {
                    self.directory
                        .lookup(&id)
                        .map(|e| (e.host.clone(), e.event, e.at))
                };
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::DirReply { token, id, entry },
                });
            }
            Wire::DirReply { token, id, entry } => {
                if let Some(probe_id) = self.pending_lease_probes.remove(&token) {
                    self.resolve_lease_probe(probe_id, entry, now, out);
                    return;
                }
                let Some(pending) = self.pending_queries.remove(&token) else {
                    return;
                };
                match entry {
                    Some((host, _event, _at)) => {
                        self.cache_location(id.clone(), &host, now);
                        self.send_post(pending.msg, &host, now, out);
                    }
                    None => {
                        // unknown to the directory: the naplet may not
                        // have landed anywhere yet — park the message at
                        // its home server's special mailbox (case 3)
                        let home = id.home().to_string();
                        if home == self.host {
                            self.messenger.stash_early(pending.msg, &self.host);
                        } else {
                            self.send_post(pending.msg, &home, now, out);
                        }
                    }
                }
            }
            Wire::Repl { msg } => {
                let Some(repl) = self.repl.as_mut() else {
                    // not a replica: a stale peer list sent us consensus
                    // traffic — drop it
                    return;
                };
                let rout = repl.receive(now, from, msg, &mut self.journal);
                self.enact_repl(now, rout, out);
            }
            Wire::Post { msg, origin_host } => {
                self.deliver_or_chase(msg, origin_host, now, out);
            }
            Wire::PostConfirm {
                sender,
                seq,
                target,
                delivered_at,
            } => {
                self.messenger
                    .record_confirmation(sender, seq, &delivered_at, now);
                // the confirmation doubles as a fresh location hint
                self.cache_location(target, &delivered_at, now);
            }
            Wire::Report { id, body } => {
                self.logf(now, format!("REPORT from {id}"));
                self.leases.renew(&id, now);
                self.reports.push((id, body));
            }
            Wire::Notify {
                id,
                status,
                host,
                detail,
            } => {
                if !detail.is_empty() {
                    self.logf(now, format!("NOTIFY {id}: {status:?} at {host}: {detail}"));
                }
                self.note_status_at_home(&id, status, now);
                self.manager.update_status(&id, status, &host, now);
            }
            Wire::AppRequest {
                token,
                reply_to,
                tag,
                body,
            } => {
                let result: Result<Vec<u8>> = match self.app_handler.as_mut() {
                    Some(h) => h(&tag, &body),
                    None => Err(NapletError::Service(format!(
                        "no app handler at `{}`",
                        self.host
                    ))),
                };
                let encoded: std::result::Result<Vec<u8>, String> =
                    result.map_err(|e| e.to_string());
                let body = naplet_core::codec::to_bytes(&encoded).unwrap_or_default();
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::AppReply { token, tag, body },
                });
            }
            Wire::AppReply { token, tag, body } => {
                // collected for local application code (e.g. the
                // centralized management baseline running at this host)
                self.app_replies.push((token, tag, body));
            }
            Wire::StatusRequest {
                token,
                reply_to,
                credential,
            } => {
                // the probe is privileged: only credentials the policy
                // matrix grants PrivilegedService("status") may read a
                // server's internals
                let report = match self
                    .security
                    .check(&credential, Permission::PrivilegedService("status".into()))
                {
                    Ok(()) => {
                        self.obs.metrics.incr("status.probes", 1);
                        Some(self.status_report(now))
                    }
                    Err(e) => {
                        self.obs.metrics.incr("status.refused", 1);
                        self.logf(now, format!("STATUS probe from {from} refused: {e}"));
                        None
                    }
                };
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::StatusReply { token, report },
                });
            }
            Wire::StatusReply { token, report } => {
                // collected for the polling side (peer server, the
                // centralized manager, or a figures CLI station)
                self.status_replies.push((token, report));
            }
            Wire::TraceSegmentRequest {
                token,
                reply_to,
                credential,
                from_seq,
                max_events,
            } => {
                // the flight recorder holds the same internals as a
                // status report (hosts, journeys, failures), so reads
                // ride the same privileged-service grant
                let segment = match self
                    .security
                    .check(&credential, Permission::PrivilegedService("status".into()))
                {
                    Ok(()) => {
                        self.obs.metrics.incr("trace.reads", 1);
                        Some(
                            self.obs
                                .recorder
                                .segment(&self.host, from_seq, max_events as usize),
                        )
                    }
                    Err(e) => {
                        self.obs.metrics.incr("trace.refused", 1);
                        self.logf(now, format!("TRACE read from {from} refused: {e}"));
                        None
                    }
                };
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::TraceSegmentReply { token, segment },
                });
            }
            Wire::TraceSegmentReply { token, segment } => {
                self.trace_replies.push((token, segment));
            }
            Wire::MetricsHistoryRequest {
                token,
                reply_to,
                credential,
                from_seq,
                max_samples,
            } => {
                // the history ring is the metrics registry over time —
                // same sensitivity, same privileged-service grant
                let page = match self
                    .security
                    .check(&credential, Permission::PrivilegedService("status".into()))
                {
                    Ok(()) => {
                        self.obs.metrics.incr("history.reads", 1);
                        Some(
                            self.obs
                                .history
                                .page(&self.host, from_seq, max_samples as usize),
                        )
                    }
                    Err(e) => {
                        self.obs.metrics.incr("history.refused", 1);
                        self.logf(now, format!("HISTORY read from {from} refused: {e}"));
                        None
                    }
                };
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::MetricsHistoryReply { token, page },
                });
            }
            Wire::MetricsHistoryReply { token, page } => {
                self.metrics_history_replies.push((token, page));
            }
        }
    }

    // =====================================================================
    // Local events
    // =====================================================================

    fn handle_local(&mut self, now: Millis, ev: LocalEvent, out: &mut Vec<Output>) {
        match ev {
            LocalEvent::VisitDone { id } => {
                let Some(entry) = self.monitor.take(&id) else {
                    return;
                };
                match entry.state {
                    RunState::Suspended => {
                        // stay parked; Resume reschedules
                        self.monitor.restore(entry);
                    }
                    _ => {
                        let mut naplet = entry.naplet;
                        let mailbox = entry.mailbox;
                        naplet.nav_log.record_departure(now);
                        // the visit is over: fold it into the monitor's
                        // cumulative per-naplet resource accounting
                        let state_bytes = naplet.state.deep_size();
                        self.monitor.account_visit(
                            &id,
                            entry.gas_this_visit,
                            entry.msg_bytes_this_visit,
                            state_bytes,
                        );
                        let dwell = now.since(entry.arrived_at);
                        self.obs
                            .metrics
                            .observe("visit_dwell_ms", LATENCY_BOUNDS_MS, dwell);
                        let (arrived_at, gas, msg_bytes) = (
                            entry.arrived_at,
                            entry.gas_this_visit,
                            entry.msg_bytes_this_visit,
                        );
                        let epoch = naplet.nav_log.visit_epoch();
                        self.obs
                            .emit(now, &self.host, Some(&id), || TraceKind::VisitEnd {
                                started: arrived_at,
                                epoch,
                                gas,
                                msg_bytes,
                            });
                        self.continue_journey(naplet, mailbox, now, out);
                    }
                }
            }
            LocalEvent::CodeReady { id } => {
                if let Some(e) = self.monitor.get_mut(&id) {
                    if e.state == RunState::AwaitingCode {
                        e.state = RunState::Runnable;
                        self.execute_visit(&id, now, out);
                    }
                }
            }
            LocalEvent::TransferTimeout {
                transfer_id,
                attempt,
            } => {
                let Some(pending) = self.pending_transfers.remove(&transfer_id) else {
                    return; // acknowledged (or failed) in the meantime
                };
                if pending.attempt != attempt {
                    // a newer attempt has its own timer; this one is stale
                    self.pending_transfers.insert(transfer_id, pending);
                    return;
                }
                if pending.attempt >= self.retry.max_retries {
                    self.fail_migration(transfer_id, pending, now, out);
                    return;
                }
                self.retransmit(transfer_id, pending, now, out);
            }
            LocalEvent::RegisterTimeout { id, attempt } => {
                let waiting = self
                    .monitor
                    .get_mut(&id)
                    .is_some_and(|e| e.state == RunState::AwaitingArrivalAck);
                if !waiting {
                    return; // acked (or gone) in the meantime
                }
                if attempt >= self.retry.max_retries {
                    // the directory holder is unreachable: executing
                    // with a possibly stale directory entry beats
                    // stranding the agent — the forwarding chase and
                    // delivery confirmations repair stale locations
                    self.logf(
                        now,
                        format!("REGISTER unacked for {id} after {attempt} attempts: proceeding"),
                    );
                    self.proceed_after_registration(&id, true, now, out);
                    return;
                }
                if matches!(self.mode, LocationMode::ReplicatedDirectory(_)) {
                    // rotate the contact replica: the one we tried may
                    // be the dead node that forced this retry
                    self.replica_hint = self.replica_hint.wrapping_add(1);
                }
                let Some(holder) = self.directory_holder(&id) else {
                    self.proceed_after_registration(&id, false, now, out);
                    return;
                };
                let next = attempt + 1;
                self.logf(now, format!("RETRY register {id} (attempt {next})"));
                let wire = Wire::DirRegister {
                    id: id.clone(),
                    host: self.host.clone(),
                    event: DirEvent::Arrival,
                    ack_to: Some(self.host.clone()),
                    attempt: next,
                };
                if holder == self.host && self.repl.is_some() {
                    // this host is itself a replica: submit directly
                    // instead of a self-addressed wire
                    let op = DirOp::Register {
                        id: id.clone(),
                        host: self.host.clone(),
                        event: DirEvent::Arrival,
                        at: now,
                    };
                    self.repl_submit(op, wire, now, out);
                } else {
                    out.push(Output::Send { to: holder, wire });
                }
                self.arm_register_timer(&id, next, out);
            }
            LocalEvent::LeaseCheck { id } => {
                self.check_lease(&id, now, out);
            }
            LocalEvent::ReplTick => {
                self.repl_tick_armed = false;
                let Some(repl) = self.repl.as_mut() else {
                    return;
                };
                let rout = repl.tick(now, &mut self.journal);
                self.enact_repl(now, rout, out);
            }
            LocalEvent::PostTimeout {
                sender,
                seq,
                attempt,
            } => {
                let Some(rec) = self.messenger.unconfirmed(&sender, seq) else {
                    return; // confirmed or abandoned in the meantime
                };
                if rec.attempts != attempt {
                    return; // stale timer from an earlier attempt
                }
                if attempt >= self.retry.max_retries {
                    self.messenger.give_up(&sender, seq);
                    self.logf(
                        now,
                        format!("REDELIVERY exhausted for message {seq} from {sender:?}"),
                    );
                    return;
                }
                let Some(msg) = self.messenger.begin_redelivery(&sender, seq) else {
                    return;
                };
                // whatever hint routed the lost attempt is suspect —
                // drop the cached location and re-resolve from scratch
                self.locator.invalidate(&msg.to);
                let next = attempt + 1;
                self.logf(
                    now,
                    format!("REDELIVER message {seq} to {} (attempt {next})", msg.to),
                );
                self.obs.metrics.incr("post.redeliveries", 1);
                self.obs.emit(now, &self.host, Some(&msg.to), || {
                    TraceKind::PostRedeliver { seq, attempt: next }
                });
                out.push(Output::Schedule {
                    delay_ms: self.retry.jittered_backoff_ms(seq ^ 0x504f_5354, next),
                    event: LocalEvent::PostTimeout {
                        sender,
                        seq,
                        attempt: next,
                    },
                });
                self.route_message(msg, None, now, out);
            }
        }
    }

    // =====================================================================
    // Navigator: migration protocol
    // =====================================================================

    fn landing_decision(
        &self,
        credential: &naplet_core::credential::Credential,
        _naplet_id: &NapletId,
        _est_bytes: u64,
    ) -> Result<()> {
        self.security.verify(credential)?;
        self.security.check(credential, Permission::Landing)?;
        if let Some(cap) = self.max_residents {
            if self.monitor.len() >= cap {
                return Err(NapletError::ResourceExhausted {
                    resource: "residents".into(),
                    detail: format!("server full ({cap})"),
                });
            }
        }
        Ok(())
    }

    /// Drive the itinerary forward from the current host until the
    /// naplet migrates, parks, or finishes.
    fn continue_journey(
        &mut self,
        mut naplet: Naplet,
        mut mailbox: Mailbox,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        loop {
            // snapshot the traversal state before deciding the next
            // step, so a permanently failed migration can rewind and
            // re-decide with the destination marked unreachable
            let checkpoint = naplet.cursor().clone();
            match naplet.advance() {
                Step::Visit { host, action } => {
                    if host == self.host {
                        // a visit to the current host needs no
                        // migration; unread mail stays in the naplet's
                        // custody and rides straight into the new entry
                        let envelope = TransferEnvelope {
                            naplet: naplet.into(),
                            action,
                            transfer_id: 0, // same-host: no handoff protocol
                            attempt: 1,
                        };
                        self.admit_arrival(envelope, None, mailbox, now, out);
                    } else {
                        self.begin_migration(naplet, mailbox, action, host, checkpoint, now, out);
                    }
                    return;
                }
                Step::Fork { clones } => {
                    if let Err(e) = self.security.check(naplet.credential(), Permission::Clone) {
                        self.logf(now, format!("CLONE denied for {}: {e}", naplet.id()));
                        continue; // parent continues; branches abandoned
                    }
                    for branch in clones {
                        let clone = naplet.clone_for_branch(branch, &self.host);
                        let cid = clone.id().clone();
                        self.manager.record_launch(cid.clone(), &self.host, now);
                        self.manager.record_arrival(&cid, None, now);
                        self.logf(now, format!("CLONE {cid}"));
                        self.continue_journey(clone, Mailbox::new(), now, out);
                    }
                    // parent keeps advancing in this loop
                }
                Step::Action(action) => {
                    self.run_action_standalone(&mut naplet, &mut mailbox, &action, now, out);
                }
                Step::Done => {
                    // a VM agent parked at travel_next learns the
                    // journey is over (nil) and gets a final slice to
                    // report/clean up before destruction
                    if matches!(naplet.kind(), AgentKind::Vm(_)) {
                        self.final_vm_run(&mut naplet, &mut mailbox, now, out);
                    }
                    self.finish_journey(naplet, now, "completed", true, out);
                    return;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_migration(
        &mut self,
        naplet: Naplet,
        mailbox: Mailbox,
        action: Option<ActionSpec>,
        dest: String,
        checkpoint: Cursor,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        if let Err(e) = self.security.check(naplet.credential(), Permission::Launch) {
            self.logf(now, format!("LAUNCH denied for {}: {e}", naplet.id()));
            // skip this visit entirely
            self.continue_journey(naplet, mailbox, now, out);
            return;
        }
        let transfer_id = self.token();
        // from here the agent travels as a shared image: the pending
        // copy, journal snapshots and transfer frames all reuse one
        // encoding computed at most once per itinerary hop
        let naplet = SharedNaplet::new(naplet);
        let est_bytes = self.estimate_wire_size(&naplet);
        let wire = Wire::LandingRequest {
            token: transfer_id,
            from_host: self.host.clone(),
            credential: naplet.credential().clone(),
            naplet_id: naplet.id().clone(),
            est_bytes,
            attempt: 1,
        };
        // journal before the first frame leaves: a crash here resumes
        // the handoff instead of losing the departing agent
        self.journal_shared(
            &naplet,
            JournalPhase::InFlight {
                transfer_id,
                dest: dest.clone(),
                checkpoint: checkpoint.clone(),
                awaiting_ack: false,
                attempt: 1,
                action: action.clone(),
            },
            now,
        );
        let id = naplet.id().clone();
        self.pending_transfers.insert(
            transfer_id,
            PendingTransfer {
                naplet: RetainedAgent::Local(naplet),
                action,
                mailbox,
                dest: dest.clone(),
                checkpoint,
                phase: TransferPhase::AwaitingPermit,
                attempt: 1,
                started: now,
            },
        );
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::LandingRequested {
                dest: dest.clone(),
                transfer_id,
            });
        out.push(Output::Send { to: dest, wire });
        self.arm_transfer_timer(transfer_id, 1, out);
    }

    /// Wire-size estimate for a landing request. The fast path reads
    /// the shared image's cached size (computed once per hop); the
    /// baseline path re-encodes the whole agent, as the code did
    /// before the CoW optimization.
    fn estimate_wire_size(&self, naplet: &SharedNaplet) -> u64 {
        if self.cow_handoff {
            naplet.wire_size().unwrap_or(0)
        } else {
            naplet_core::codec::to_bytes(naplet.get())
                .map(|b| b.len() as u64)
                .unwrap_or(0)
        }
    }

    /// The agent image that rides in a transfer frame: an `Arc` bump on
    /// the fast path, a deep clone on the baseline path.
    fn clone_for_wire(&self, naplet: &SharedNaplet) -> SharedNaplet {
        if self.cow_handoff {
            naplet.clone()
        } else {
            SharedNaplet::new(naplet.get().clone())
        }
    }

    /// Rebuild a wire copy from whatever custody form we retained: the
    /// live handle (baseline, or pre-encode failure) or the encoded
    /// image kept after the first transmission.
    fn wire_copy(&self, retained: &RetainedAgent) -> SharedNaplet {
        match retained {
            RetainedAgent::Local(n) => self.clone_for_wire(n),
            RetainedAgent::Image { bytes, .. } => SharedNaplet::new(
                naplet_core::codec::from_bytes(bytes)
                    .expect("retained agent image decodes: it was produced by our own encoder"),
            ),
        }
    }

    /// Arm the acknowledgement timer for the given attempt of an
    /// outstanding transfer (shared by both handoff phases).
    fn arm_transfer_timer(&self, transfer_id: u64, attempt: u32, out: &mut Vec<Output>) {
        out.push(Output::Schedule {
            delay_ms: self.retry.jittered_backoff_ms(transfer_id, attempt),
            event: LocalEvent::TransferTimeout {
                transfer_id,
                attempt,
            },
        });
    }

    /// Arm the acknowledgement timer for an arrival registration; keyed
    /// on the naplet id so concurrent arrivals jitter apart.
    fn arm_register_timer(&self, id: &NapletId, attempt: u32, out: &mut Vec<Output>) {
        let key = id.to_string().bytes().fold(0x5245_4749u64, |h, b| {
            h.wrapping_mul(131).wrapping_add(u64::from(b))
        });
        out.push(Output::Schedule {
            delay_ms: self.retry.jittered_backoff_ms(key, attempt),
            event: LocalEvent::RegisterTimeout {
                id: id.clone(),
                attempt,
            },
        });
    }

    /// The landing permit arrived: perform the one-time departure side
    /// effects and send the agent. The naplet stays in our custody
    /// (phase `AwaitingAck`) until the destination acknowledges it.
    fn complete_departure(
        &mut self,
        transfer_id: u64,
        pending: PendingTransfer,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let PendingTransfer {
            naplet,
            action,
            mut mailbox,
            dest,
            checkpoint,
            started,
            ..
        } = pending;
        let id = naplet.id().clone();
        self.manager.record_departure(&id, &dest, now);
        self.resources.release(&id);
        // DEPART registration (no ack needed, paper §4.1)
        if let Some(holder) = self.directory_holder(&id) {
            let wire = Wire::DirRegister {
                id: id.clone(),
                host: self.host.clone(),
                event: DirEvent::Departure,
                ack_to: None,
                attempt: 1,
            };
            if holder == self.host {
                self.directory
                    .register(&id, &self.host, DirEvent::Departure, now);
            } else {
                out.push(Output::Send { to: holder, wire });
            }
        }
        self.logf(now, format!("DEPART {id} -> {dest}"));
        // forward any early-stashed messages for it towards the
        // destination so the chase can catch up, and likewise any
        // unread mailbox messages — the post office keeps custody of
        // undelivered mail rather than dropping it with the mailbox
        for (mut m, origin) in self.messenger.drain_early(&id) {
            m.forward_hops += 1;
            self.send_post_from(m, &dest, origin, now, out);
        }
        for mut m in mailbox.drain() {
            // unread mail leaves local custody: forget its delivery so
            // the chase can deliver it here again on a future revisit
            self.messenger.forget_delivery(&m.from, m.seq, m.sent_at);
            m.forward_hops += 1;
            self.send_post(m, &dest, now, out);
        }
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::TransferSent {
                dest: dest.clone(),
                transfer_id,
            });
        let naplet = match naplet {
            RetainedAgent::Local(n) => n,
            RetainedAgent::Image { bytes, .. } => SharedNaplet::new(
                naplet_core::codec::from_bytes(&bytes)
                    .expect("retained agent image decodes: it was produced by our own encoder"),
            ),
        };
        // advance the journaled phase: past the permit, transfer sent
        self.journal_shared(
            &naplet,
            JournalPhase::InFlight {
                transfer_id,
                dest: dest.clone(),
                checkpoint: checkpoint.clone(),
                awaiting_ack: true,
                attempt: 1,
                action: action.clone(),
            },
            now,
        );
        // CoW path: the origin keeps only the encoded image, so the
        // live handle moves into the frame and the destination admits
        // it without a clone. Baseline path: deep-clone for the wire
        // and keep the in-memory copy, as the pre-optimization code did.
        let (wire_naplet, retained) = if self.cow_handoff {
            match naplet.wire_bytes() {
                Ok(bytes) => {
                    let retained = RetainedAgent::Image {
                        id: id.clone(),
                        bytes,
                    };
                    (naplet, retained)
                }
                Err(_) => (naplet.clone(), RetainedAgent::Local(naplet)),
            }
        } else {
            (
                SharedNaplet::new(naplet.get().clone()),
                RetainedAgent::Local(naplet),
            )
        };
        out.push(Output::Send {
            to: dest.clone(),
            wire: Wire::Transfer(TransferEnvelope {
                naplet: wire_naplet,
                action: action.clone(),
                transfer_id,
                attempt: 1,
            }),
        });
        self.pending_transfers.insert(
            transfer_id,
            PendingTransfer {
                naplet: retained,
                action,
                mailbox: Mailbox::new(),
                dest,
                checkpoint,
                phase: TransferPhase::AwaitingAck,
                attempt: 1,
                started,
            },
        );
        self.arm_transfer_timer(transfer_id, 1, out);
    }

    /// An acknowledgement timer expired with retries left: resend the
    /// current phase's wire with the next attempt number.
    fn retransmit(
        &mut self,
        transfer_id: u64,
        mut pending: PendingTransfer,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        pending.attempt += 1;
        let attempt = pending.attempt;
        let dest = pending.dest.clone();
        let id = pending.naplet.id().clone();
        let wire = match pending.phase {
            TransferPhase::AwaitingPermit => {
                let local = pending
                    .naplet
                    .local()
                    .expect("permit phase retains the live agent");
                Wire::LandingRequest {
                    token: transfer_id,
                    from_host: self.host.clone(),
                    credential: local.credential().clone(),
                    naplet_id: id.clone(),
                    est_bytes: self.estimate_wire_size(local),
                    attempt,
                }
            }
            TransferPhase::AwaitingAck => Wire::Transfer(TransferEnvelope {
                naplet: self.wire_copy(&pending.naplet),
                action: pending.action.clone(),
                transfer_id,
                attempt,
            }),
        };
        // keep the journaled attempt in step so a recovered origin
        // picks up the retry budget where it left off
        self.journal_retained(
            &pending.naplet,
            JournalPhase::InFlight {
                transfer_id,
                dest: dest.clone(),
                checkpoint: pending.checkpoint.clone(),
                awaiting_ack: pending.phase == TransferPhase::AwaitingAck,
                attempt,
                action: pending.action.clone(),
            },
            now,
        );
        let phase = match pending.phase {
            TransferPhase::AwaitingPermit => "permit",
            TransferPhase::AwaitingAck => "transfer",
        };
        self.pending_transfers.insert(transfer_id, pending);
        self.logf(now, format!("RETRY {id} -> {dest} (attempt {attempt})"));
        self.obs.metrics.incr("handoff.retransmits", 1);
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::Retransmit {
                dest: dest.clone(),
                transfer_id,
                attempt,
                phase: phase.to_string(),
            });
        out.push(Output::Send { to: dest, wire });
        self.arm_transfer_timer(transfer_id, attempt, out);
    }

    /// All retries exhausted: rewind the itinerary to the pre-departure
    /// checkpoint, record the failure, and either fall back to another
    /// branch (`Alt`) or park the naplet here.
    fn fail_migration(
        &mut self,
        transfer_id: u64,
        pending: PendingTransfer,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let PendingTransfer {
            naplet,
            mailbox,
            dest,
            checkpoint,
            phase,
            attempt,
            ..
        } = pending;
        // the agent is back in our sole custody: unshare for mutation
        let mut naplet = naplet.into_naplet();
        let id = naplet.id().clone();
        let reason = match phase {
            TransferPhase::AwaitingPermit => "no landing reply",
            TransferPhase::AwaitingAck => "transfer unacknowledged",
        };
        self.logf(
            now,
            format!(
                "HANDOFF failed {id} -> {dest} after {attempt} attempts \
                 ({reason}; transfer {transfer_id})"
            ),
        );
        self.obs.metrics.incr("handoff.failures", 1);
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::HandoffFailed {
                dest: dest.clone(),
                transfer_id,
                attempts: attempt,
                reason: reason.to_string(),
            });
        naplet.set_cursor(checkpoint);
        naplet.nav_log.record_failure(&dest, now, attempt, reason);
        if phase == TransferPhase::AwaitingAck {
            // departure bookkeeping already ran optimistically when the
            // permit arrived; the agent is back in our custody now
            self.manager.record_arrival(&id, None, now);
        }
        // with `dest` now in the unreachable set, an Alt re-decides;
        // if the next step is still the same dead destination this is
        // a hard (Seq) requirement — park instead of looping
        match naplet.peek_next_host() {
            Some(next) if next == dest => self.park(naplet, mailbox, &dest, attempt, now, out),
            _ => self.continue_journey(naplet, mailbox, now, out),
        }
    }

    /// Strand the naplet at this server after an unrecoverable
    /// migration failure: re-register it here, notify its home with
    /// [`NapletStatus::Parked`] and keep it for owner recovery. Unread
    /// mail returns to the special mailbox rather than being dropped.
    fn park(
        &mut self,
        naplet: Naplet,
        mut mailbox: Mailbox,
        dest: &str,
        attempts: u32,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let id = naplet.id().clone();
        self.logf(
            now,
            format!("PARK {id}: {dest} unreachable after {attempts} attempts"),
        );
        self.obs.metrics.incr("handoff.parked", 1);
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::Parked {
                dest: dest.to_string(),
                attempts,
            });
        for m in mailbox.drain() {
            self.messenger.forget_delivery(&m.from, m.seq, m.sent_at);
            self.messenger.stash_early(m, &self.host);
        }
        self.note_special_mailbox_depth();
        // make the parked naplet locatable here again
        if let Some(holder) = self.directory_holder(&id) {
            if holder == self.host {
                self.directory
                    .register(&id, &self.host.clone(), DirEvent::Arrival, now);
            } else {
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirRegister {
                        id: id.clone(),
                        host: self.host.clone(),
                        event: DirEvent::Arrival,
                        ack_to: None,
                        attempt: 1,
                    },
                });
            }
        }
        self.notify_home(
            &id,
            NapletStatus::Parked,
            &format!("destination {dest} unreachable"),
            now,
            out,
        );
        // a parked agent held for owner recovery must survive a crash
        // of the server holding it
        self.journal_naplet(&naplet, JournalPhase::Parked, now);
        self.parked.insert(id, naplet);
    }

    /// Outbound migrations currently awaiting a permit or an
    /// acknowledgement (diagnostics/tests).
    pub fn pending_transfer_count(&self) -> usize {
        self.pending_transfers.len()
    }

    /// Assemble this server's health probe report: a deterministic,
    /// read-only aggregation of the monitor's run table, the post
    /// office's queues, the journal's un-retired lag, the lease table
    /// and the locator's cache counters. Sorted collections only, so
    /// the codec encoding of the report is byte-stable. No new locks,
    /// no hot-path bookkeeping — probing costs what a diagnostics
    /// dump costs.
    pub fn status_report(&self, now: Millis) -> StatusReport {
        let mut residents = Vec::new();
        let mut mailbox_depth = 0u64;
        for id in self.monitor.resident() {
            let Some(entry) = self.monitor.get(&id) else {
                continue;
            };
            let usage = self
                .monitor
                .usage()
                .get(&id.to_string())
                .copied()
                .unwrap_or_default();
            let mailbox = entry.mailbox.len() as u64;
            mailbox_depth += mailbox;
            residents.push(ResidentStatus {
                id: id.to_string(),
                visit_epoch: entry.naplet.nav_log.visit_epoch(),
                dwell_ms: now.since(entry.arrived_at),
                mailbox,
                visits: usage.visits,
                gas: usage.gas,
                msg_bytes: usage.msg_bytes,
                peak_state_bytes: usage.peak_state_bytes,
            });
        }
        let (journal_entries, journal_bytes) = self.journal.lag();
        StatusReport {
            host: self.host.clone(),
            at: now,
            residents,
            parked: self.parked.len() as u64,
            mailbox_depth,
            special_mailbox_depth: self.messenger.early_waiting() as u64,
            journal_entries,
            journal_bytes,
            leases_held: self.leases.held() as u64,
            leases_expired: self.leases.expired,
            leases_redispatched: self.leases.redispatched,
            leases_lost: self.leases.lost,
            locator_entries: self.locator.len() as u64,
            locator_hits: self.locator.hits,
            locator_misses: self.locator.misses,
            locator_stale_hits: self.locator.stale_hits,
            locator_evictions: self.locator.evictions,
            locator_oldest_age_ms: self.locator.oldest_hint_age(now),
            pending_transfers: self.pending_transfers.len() as u64,
            outstanding_posts: self.messenger.outstanding_count() as u64,
            repl: self.repl.as_ref().map(|r| crate::status::ReplStatus {
                role: r.role().name().to_string(),
                term: r.term(),
                commit: r.commit_index(),
                last_index: r.last_index(),
                leader: r.leader_hint().map(str::to_string),
                entries: r.state.len() as u64,
            }),
        }
    }

    /// Arrival processing (local continuation or network transfer).
    /// `carry` is mail already in the naplet's custody (same-host
    /// continuations); it bypasses the delivery-dedup check because it
    /// was delivered once already.
    fn admit_arrival(
        &mut self,
        envelope: TransferEnvelope,
        from: Option<&str>,
        mut carry: Mailbox,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let TransferEnvelope { naplet, action, .. } = envelope;
        // sole owner on the receiving side (the origin's retained copy
        // lives in another process/server), so this is move-or-clone
        let mut naplet = naplet.into_owned();
        let id = naplet.id().clone();
        if let Err(e) = self.security.verify_naplet(&naplet) {
            self.logf(now, format!("ARRIVAL rejected for {id}: {e}"));
            self.notify_home(&id, NapletStatus::Destroyed, &e.to_string(), now, out);
            return;
        }
        self.expected_arrivals.remove(&id);
        if from.is_some() {
            self.manager.record_arrival(&id, from, now);
        }
        naplet.nav_log.record_arrival(&self.host, now);
        // server-side state inspection/update under protection modes
        if let Some(hook) = &mut self.state_hook {
            let mut view = naplet.state.server_view(&self.host);
            hook(&mut view);
        }
        self.logf(now, format!("ARRIVAL {id}"));
        // durable before the TransferAck (already queued) can commit
        // the origin's release: from here this server owns the agent.
        // `applied_epoch` is one behind — this visit has not run yet.
        let epoch = naplet.nav_log.visit_epoch();
        self.journal_naplet(
            &naplet,
            JournalPhase::Resident {
                applied_epoch: epoch.saturating_sub(1),
                action: action.clone(),
            },
            now,
        );

        let state = RunState::AwaitingArrivalAck;
        let entry = self.monitor.admit(naplet, action, state, now);
        let mut pending_controls = Vec::new();
        // custody mail rides straight back into the new entry
        for m in carry.drain() {
            match &m.payload {
                Payload::System(verb) => pending_controls.push(verb.clone()),
                Payload::User(_) => entry.mailbox.deposit(m),
            }
        }
        // deliver any messages that arrived before the naplet (§4.2
        // case 3): user messages into the mailbox, system messages as
        // interrupts after the arrival bookkeeping below; each drained
        // message is confirmed to its origin (duplicates too — the
        // earlier confirmation may be the frame that was lost)
        for (m, origin) in self.messenger.drain_early(&id) {
            let sender = m.from.clone();
            let seq = m.seq;
            // redelivered copies may have been stashed more than once
            if self
                .messenger
                .record_delivery(sender.clone(), seq, m.sent_at)
            {
                match &m.payload {
                    Payload::System(verb) => pending_controls.push(verb.clone()),
                    Payload::User(_) => entry.mailbox.deposit(m),
                }
            }
            if origin == self.host {
                self.messenger
                    .record_confirmation(sender, seq, &self.host, now);
            } else {
                out.push(Output::Send {
                    to: origin,
                    wire: Wire::PostConfirm {
                        sender,
                        seq,
                        target: id.clone(),
                        delivered_at: self.host.clone(),
                    },
                });
            }
        }

        self.obs
            .metrics
            .gauge_max("mailbox_depth", entry.mailbox.len() as u64);

        // ARRIVAL registration: execution postponed until acknowledged
        self.reregister_arrival(&id, true, now, out);

        // early control messages now interrupt the just-arrived naplet
        for verb in pending_controls {
            self.apply_control(&id, &verb, now, out);
        }
    }

    /// Register an arrival with the directory holder. With
    /// `gate_execution` the resident waits in `AwaitingArrivalAck`
    /// until the registration is acknowledged (normal admission);
    /// without it the registration is fire-and-forget — used by
    /// recovery for visits whose execution already happened, where
    /// only the directory entry needs restoring.
    fn reregister_arrival(
        &mut self,
        id: &NapletId,
        gate_execution: bool,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        match self.directory_holder(id) {
            Some(holder) if holder != self.host => {
                out.push(Output::Send {
                    to: holder.clone(),
                    wire: Wire::DirRegister {
                        id: id.clone(),
                        host: self.host.clone(),
                        event: DirEvent::Arrival,
                        ack_to: gate_execution.then(|| self.host.clone()),
                        attempt: 1,
                    },
                });
                if gate_execution {
                    // stay in AwaitingArrivalAck until DirAck; the
                    // registration is retried like any other acked
                    // frame — a lost DirRegister/DirAck must not
                    // strand the agent
                    self.obs
                        .emit(now, &self.host, Some(id), || TraceKind::RegisterGated {
                            holder,
                        });
                    self.arm_register_timer(id, 1, out);
                }
            }
            Some(_) if self.repl.is_some() => {
                // we are a directory replica: the registration must go
                // through consensus like anyone else's; the gate is
                // released by the commit (repl_pending_acks) or by the
                // retry timer if no leader emerges
                let op = DirOp::Register {
                    id: id.clone(),
                    host: self.host.clone(),
                    event: DirEvent::Arrival,
                    at: now,
                };
                let wire = Wire::DirRegister {
                    id: id.clone(),
                    host: self.host.clone(),
                    event: DirEvent::Arrival,
                    ack_to: gate_execution.then(|| self.host.clone()),
                    attempt: 1,
                };
                self.repl_submit(op, wire, now, out);
                if gate_execution {
                    let holder = self.host.clone();
                    self.obs
                        .emit(now, &self.host, Some(id), || TraceKind::RegisterGated {
                            holder,
                        });
                    self.arm_register_timer(id, 1, out);
                }
            }
            Some(_) => {
                // we are the directory holder: register synchronously
                self.directory
                    .register(id, &self.host.clone(), DirEvent::Arrival, now);
                if gate_execution {
                    self.proceed_after_registration(id, false, now, out);
                }
            }
            None => {
                if gate_execution {
                    self.proceed_after_registration(id, false, now, out);
                }
            }
        }
    }

    /// After arrival registration is acknowledged (or `forced` open
    /// because the directory holder stayed silent past the retry
    /// budget): fetch code if cold, then execute.
    fn proceed_after_registration(
        &mut self,
        id: &NapletId,
        forced: bool,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let Some(entry) = self.monitor.get_mut(id) else {
            return;
        };
        if entry.state == RunState::AwaitingArrivalAck {
            let started = entry.arrived_at;
            self.obs
                .emit(now, &self.host, Some(id), || TraceKind::RegisterAcked {
                    started,
                    forced,
                });
        }
        let Some(entry) = self.monitor.get_mut(id) else {
            return;
        };
        let naplet = &entry.naplet;
        match naplet.kind() {
            AgentKind::Native => {
                let codebase = naplet.codebase().to_string();
                let home = naplet.home().to_string();
                if self.code_cache.is_cached(&codebase) {
                    entry.state = RunState::Runnable;
                    self.execute_visit(id, now, out);
                } else {
                    match self.code_cache.load(&self.codebase, &codebase) {
                        Ok(bytes) => {
                            entry.state = RunState::AwaitingCode;
                            out.push(Output::FetchCode {
                                from: home,
                                bytes,
                                id: id.clone(),
                            });
                        }
                        Err(e) => {
                            self.destroy_resident(id, &format!("code load failed: {e}"), now, out);
                        }
                    }
                }
            }
            AgentKind::Vm(_) => {
                entry.state = RunState::Runnable;
                self.execute_visit(id, now, out);
            }
        }
    }

    // =====================================================================
    // Execution
    // =====================================================================

    fn execute_visit(&mut self, id: &NapletId, now: Millis, out: &mut Vec<Output>) {
        let Some(mut entry) = self.monitor.take(id) else {
            return;
        };
        let policy = self.monitor.policy().clone();

        let mut effects = Effects::default();
        let exec_result = (|| -> Result<ExecOutcome> {
            let outcome = match entry.naplet.kind().clone() {
                AgentKind::Native => {
                    let mut behavior = self.codebase.instantiate(entry.naplet.codebase())?;
                    let priority = crate::monitor::Priority::of(entry.naplet.credential());
                    let dwell = policy.dwell_for(priority, self.monitor.len() + 1);
                    let gas = dwell * policy.gas_per_ms;
                    NapletMonitor::charge_gas(&mut entry, &policy, gas)?;
                    let mut ctx = RunCtx::new(
                        &self.host,
                        now,
                        &mut entry.naplet,
                        &mut entry.mailbox,
                        &mut self.resources,
                        &self.security,
                        &mut effects,
                    );
                    behavior.on_start(&mut ctx)?;
                    ExecOutcome::Continue
                }
                AgentKind::Vm(image_bytes) => {
                    let mut image = VmImage::from_wire(&image_bytes)?;
                    if image.status == naplet_vm::VmStatus::AwaitingTravel {
                        // the strong-mobility resume: travel_next
                        // returns the new host's name
                        image.resume_after_travel(Some(&self.host))?;
                    }
                    let outcome = loop {
                        let before = image.gas_used;
                        let hops = entry.naplet.nav_log.hops();
                        let mut ctx = RunCtx::new(
                            &self.host,
                            now,
                            &mut entry.naplet,
                            &mut entry.mailbox,
                            &mut self.resources,
                            &self.security,
                            &mut effects,
                        );
                        let mut host_if = ContextVmHost::new(&mut ctx, hops);
                        let yielded = naplet_vm::run(&mut image, &mut host_if, policy.gas_slice)?;
                        NapletMonitor::charge_gas(&mut entry, &policy, image.gas_used - before)?;
                        match yielded {
                            VmYield::OutOfGas => continue,
                            VmYield::Travel => break ExecOutcome::Continue,
                            VmYield::Done(_) => break ExecOutcome::ProgramDone,
                        }
                    };
                    // persist execution progress into the carried image
                    *entry.naplet.kind_mut() = AgentKind::Vm(image.to_wire()?);
                    let extra = image.memory_footprint();
                    NapletMonitor::check_memory(&entry, &policy, extra)?;
                    outcome
                }
            };

            // the visit's post-action T
            if let Some(action) = entry.pending_action.take() {
                let mut ctx = RunCtx::new(
                    &self.host,
                    now,
                    &mut entry.naplet,
                    &mut entry.mailbox,
                    &mut self.resources,
                    &self.security,
                    &mut effects,
                );
                run_action(&self.actions, &action, &mut ctx)?;
            }
            NapletMonitor::check_memory(&entry, &policy, 0)?;
            Ok(outcome)
        })();

        let id = entry.naplet.id().clone();
        self.apply_effects(&id, &mut entry, effects, now, out);

        match exec_result {
            Ok(outcome) => {
                let dwell = match entry.naplet.kind() {
                    AgentKind::Native => {
                        let priority = crate::monitor::Priority::of(entry.naplet.credential());
                        policy.dwell_for(priority, self.monitor.len() + 1)
                    }
                    AgentKind::Vm(_) => {
                        NapletMonitor::gas_to_ms(&policy, entry.gas_this_visit.max(1))
                    }
                };
                match outcome {
                    ExecOutcome::Continue => {
                        entry.state = RunState::VisitDone;
                        // the visit's effects just escaped (messages,
                        // reports): ratchet the journaled epoch so a
                        // recovery replay resumes at the visit's end
                        // instead of running it again
                        let epoch = entry.naplet.nav_log.visit_epoch();
                        self.journal_naplet(
                            &entry.naplet,
                            JournalPhase::Resident {
                                applied_epoch: epoch,
                                action: None,
                            },
                            now,
                        );
                        self.monitor.restore(entry);
                        out.push(Output::Schedule {
                            delay_ms: dwell,
                            event: LocalEvent::VisitDone { id },
                        });
                    }
                    ExecOutcome::ProgramDone => {
                        // VM program finished: journey ends here
                        let naplet = entry.naplet;
                        self.resources.release(&id);
                        self.finish_journey(naplet, now.plus(dwell), "completed", true, out);
                    }
                }
            }
            Err(e) => {
                self.monitor.kills.push((id.clone(), e.kind().to_string()));
                self.monitor.restore(entry);
                self.destroy_resident(&id, &e.to_string(), now, out);
            }
        }
    }

    /// Give a VM agent whose itinerary just completed a final slice:
    /// its pending `travel_next` resolves to nil so the program can
    /// report results and halt.
    fn final_vm_run(
        &mut self,
        naplet: &mut Naplet,
        mailbox: &mut Mailbox,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let AgentKind::Vm(bytes) = naplet.kind().clone() else {
            return;
        };
        let policy = self.monitor.policy().clone();
        let mut effects = Effects::default();
        let result = (|| -> Result<()> {
            let mut image = VmImage::from_wire(&bytes)?;
            if image.status == naplet_vm::VmStatus::AwaitingTravel {
                image.resume_after_travel(None)?;
            }
            let mut spent = 0u64;
            loop {
                if spent >= policy.max_gas_per_visit {
                    return Err(NapletError::ResourceExhausted {
                        resource: "cpu".into(),
                        detail: "final slice budget exceeded".into(),
                    });
                }
                let before = image.gas_used;
                let hops = naplet.nav_log.hops();
                let mut ctx = RunCtx::new(
                    &self.host,
                    now,
                    naplet,
                    mailbox,
                    &mut self.resources,
                    &self.security,
                    &mut effects,
                );
                let mut host_if = ContextVmHost::new(&mut ctx, hops);
                match naplet_vm::run(&mut image, &mut host_if, policy.gas_slice)? {
                    VmYield::OutOfGas => {
                        spent += image.gas_used - before;
                        continue;
                    }
                    // a second travel request cannot be satisfied: the
                    // journey is over — treat as completion
                    VmYield::Travel | VmYield::Done(_) => break,
                }
            }
            Ok(())
        })();
        let id = naplet.id().clone();
        self.dispatch_effects(&id, naplet, effects, now, out);
        if let Err(e) = result {
            self.logf(now, format!("final VM slice failed for {id}: {e}"));
        }
    }

    /// Run a pattern-level action for a naplet that is between visits
    /// (not admitted to the monitor).
    fn run_action_standalone(
        &mut self,
        naplet: &mut Naplet,
        mailbox: &mut Mailbox,
        action: &ActionSpec,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let mut effects = Effects::default();
        let result = {
            let mut ctx = RunCtx::new(
                &self.host,
                now,
                naplet,
                mailbox,
                &mut self.resources,
                &self.security,
                &mut effects,
            );
            run_action(&self.actions, action, &mut ctx)
        };
        let id = naplet.id().clone();
        // standalone actions run outside a monitor entry; account
        // bandwidth against a scratch entry-less path (still metered
        // on the fabric)
        self.dispatch_effects(&id, naplet, effects, now, out);
        if let Err(e) = result {
            self.logf(now, format!("action {action:?} failed for {id}: {e}"));
        }
    }

    // =====================================================================
    // Effects: messages, reports, logs
    // =====================================================================

    fn apply_effects(
        &mut self,
        id: &NapletId,
        entry: &mut crate::monitor::RunEntry,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let policy = self.monitor.policy().clone();
        // bandwidth accounting: posts are charged in order; the first
        // one that exceeds the budget and everything after it are
        // dropped, but reports and logs still flow
        let mut effects = effects;
        let mut kept = Vec::with_capacity(effects.posts.len());
        for (to, hint, body) in effects.posts.drain(..) {
            let bytes = naplet_core::codec::encoded_size(&body).unwrap_or(0);
            match NapletMonitor::charge_msg_bytes(entry, &policy, bytes) {
                Ok(()) => kept.push((to, hint, body)),
                Err(e) => {
                    self.logf(now, format!("bandwidth budget hit for {id}: {e}"));
                    break;
                }
            }
        }
        effects.posts = kept;
        let naplet_home = entry.naplet.home().to_string();
        self.route_effects(id, &naplet_home, effects, now, out);
    }

    fn dispatch_effects(
        &mut self,
        id: &NapletId,
        naplet: &Naplet,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let home = naplet.home().to_string();
        self.route_effects(id, &home, effects, now, out);
    }

    fn route_effects(
        &mut self,
        id: &NapletId,
        home: &str,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        for line in effects.logs {
            self.logf(now, format!("[{}] {line}", id.short()));
        }
        for body in effects.reports {
            if home == self.host {
                // a naplet reporting at its own home is a sign of life
                self.leases.renew(id, now);
                self.reports.push((id.clone(), body));
            } else {
                out.push(Output::Send {
                    to: home.to_string(),
                    wire: Wire::Report {
                        id: id.clone(),
                        body,
                    },
                });
            }
        }
        for (to, hint, body) in effects.posts {
            let seq = self.messenger.next_seq();
            let msg = Message::user(seq, Sender::Naplet(id.clone()), to, now, body);
            self.route_message(msg, Some(&hint), now, out);
        }
    }

    // =====================================================================
    // Post office routing (paper §4.2)
    // =====================================================================

    fn send_post(&mut self, msg: Message, to_host: &str, now: Millis, out: &mut Vec<Output>) {
        let origin = self.host.clone();
        self.send_post_from(msg, to_host, origin, now, out);
    }

    /// Like [`send_post`](Self::send_post), but preserving a message's
    /// original confirmation destination when this server is merely
    /// relaying (e.g. forwarding early-stashed mail after a departure).
    fn send_post_from(
        &mut self,
        msg: Message,
        to_host: &str,
        origin: String,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        if to_host == self.host {
            // route internally without the wire
            let mut tmp = Vec::new();
            self.deliver_or_chase(msg, origin, now, &mut tmp);
            out.extend(tmp);
        } else {
            out.push(Output::Send {
                to: to_host.to_string(),
                wire: Wire::Post {
                    msg,
                    origin_host: origin,
                },
            });
        }
    }

    /// Install a location hint, surfacing capacity evictions to the
    /// space-wide metrics registry (`locator_cache_evictions`).
    fn cache_location(&mut self, id: NapletId, host: &str, now: Millis) {
        if self.locator.put(id, host, now) {
            self.obs.metrics.incr("locator_cache_evictions", 1);
        }
    }

    /// First-hop routing for a locally posted message. Also the
    /// redelivery entry point: the origin retains a copy and arms a
    /// timer, so a message lost in flight is re-routed until its
    /// delivery confirmation arrives (or retries run out).
    fn route_message(
        &mut self,
        msg: Message,
        hint: Option<&str>,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let target = msg.to.clone();
        if self.messenger.track_outstanding(&msg, now) {
            out.push(Output::Schedule {
                delay_ms: self.retry.jittered_backoff_ms(msg.seq ^ 0x504f_5354, 1),
                event: LocalEvent::PostTimeout {
                    sender: msg.from.clone(),
                    seq: msg.seq,
                    attempt: 1,
                },
            });
        }
        // resident here?
        if self.monitor.get(&target).is_some() {
            let origin = self.host.clone();
            self.deliver_or_chase(msg, origin, now, out);
            return;
        }
        // locator cache
        if let Some(loc) = self.locator.get(&target) {
            let host = loc.host.clone();
            self.obs.metrics.incr("locator_cache_hits", 1);
            self.send_post(msg, &host, now, out);
            return;
        }
        // directory query, or trace/hint
        match self.directory_holder(&target) {
            Some(holder) if holder != self.host => {
                let token = self.token();
                self.pending_queries.insert(token, PendingQuery { msg });
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirQuery {
                        token,
                        id: target,
                        reply_to: self.host.clone(),
                    },
                });
            }
            Some(_) => {
                // we hold the directory shard (a replica answers from
                // its committed replicated state)
                let hit = if let Some(repl) = &self.repl {
                    repl.state.lookup(&target).map(|e| e.host.clone())
                } else {
                    self.directory.lookup(&target).map(|e| e.host.clone())
                };
                match hit {
                    Some(host) => {
                        self.cache_location(target, &host, now);
                        self.send_post(msg, &host, now, out);
                    }
                    None => self.messenger.stash_early(msg, &self.host),
                }
            }
            None => {
                // forwarding mode: local trace, then the address-book hint
                match self.manager.trace(&target) {
                    Some(Some(next)) => {
                        let next = next.to_string();
                        self.send_post(msg, &next, now, out);
                    }
                    Some(None) => self.messenger.stash_early(msg, &self.host),
                    None => match hint {
                        Some(h) if h != self.host => {
                            let h = h.to_string();
                            self.send_post(msg, &h, now, out);
                        }
                        _ => self.messenger.stash_early(msg, &self.host),
                    },
                }
            }
        }
    }

    /// §4.2 delivery cases at a receiving messenger.
    fn deliver_or_chase(
        &mut self,
        mut msg: Message,
        origin_host: String,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let target = msg.to.clone();
        if self.monitor.get(&target).is_some() {
            // case 1: resident — deliver and confirm; a retransmitted
            // duplicate is re-confirmed (the earlier confirmation may
            // be what was lost) but never deposited twice
            let sender = msg.from.clone();
            let seq = msg.seq;
            let fresh = self
                .messenger
                .record_delivery(sender.clone(), seq, msg.sent_at);
            if fresh {
                match &msg.payload {
                    Payload::System(verb) => {
                        let verb = verb.clone();
                        self.apply_control(&target, &verb, now, out);
                    }
                    Payload::User(_) => {
                        if let Some(e) = self.monitor.get_mut(&target) {
                            e.mailbox.deposit(msg);
                            let depth = e.mailbox.len() as u64;
                            self.obs.metrics.gauge_max("mailbox_depth", depth);
                        }
                    }
                }
            } else {
                self.logf(now, format!("duplicate message {seq} for {target}"));
            }
            if origin_host == self.host {
                self.messenger
                    .record_confirmation(sender, seq, &self.host.clone(), now);
            } else {
                out.push(Output::Send {
                    to: origin_host,
                    wire: Wire::PostConfirm {
                        sender,
                        seq,
                        target,
                        delivered_at: self.host.clone(),
                    },
                });
            }
            return;
        }
        // not resident — but if its landing was granted here and the
        // transfer is still in flight, wait for it (case 3) rather
        // than chasing a stale trail
        if self.expected_arrivals.contains_key(&target) {
            self.messenger.stash_early(msg, &origin_host);
            self.note_special_mailbox_depth();
            return;
        }
        match self.manager.trace(&target) {
            Some(Some(next)) => {
                // case 2: it moved on — forward the chase, and refresh
                // our own cache with the footprint's fresher pointer.
                // Whatever hint routed the chase here was stale.
                let next = next.to_string();
                self.locator.note_stale();
                self.obs.metrics.incr("locator_cache_stale_hits", 1);
                self.cache_location(target.clone(), &next, now);
                if self.messenger.may_forward(&msg) {
                    msg.forward_hops += 1;
                    self.obs.metrics.incr("post.forward_hops", 1);
                    let (seq, hops) = (msg.seq, msg.forward_hops);
                    self.obs
                        .emit(now, &self.host, Some(&target), || TraceKind::ForwardHop {
                            to: next.clone(),
                            seq,
                            hops,
                        });
                    out.push(Output::Send {
                        to: next,
                        wire: Wire::Post { msg, origin_host },
                    });
                } else {
                    self.logf(now, format!("undeliverable message to {target} (cap)"));
                }
            }
            _ => {
                // case 3: no record — it may not have arrived yet.
                // Whatever cached location pointed this chase here is
                // stale; forget it so the next resolution starts fresh.
                self.locator.note_stale();
                self.obs.metrics.incr("locator_cache_stale_hits", 1);
                self.locator.invalidate(&target);
                self.messenger.stash_early(msg, &origin_host);
                self.note_special_mailbox_depth();
            }
        }
    }

    // =====================================================================
    // Control (system messages)
    // =====================================================================

    fn apply_control(
        &mut self,
        id: &NapletId,
        verb: &ControlVerb,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        match verb {
            ControlVerb::Terminate => {
                self.destroy_resident(id, "terminated by control message", now, out);
            }
            ControlVerb::Suspend => {
                if self.monitor.suspend(id) {
                    self.logf(now, format!("SUSPEND {id}"));
                }
            }
            ControlVerb::Resume => {
                if self.monitor.resume(id) {
                    self.logf(now, format!("RESUME {id}"));
                    out.push(Output::Schedule {
                        delay_ms: 0,
                        event: LocalEvent::VisitDone { id: id.clone() },
                    });
                }
            }
            ControlVerb::Callback | ControlVerb::Custom(_) => {
                // cast the interrupt: the creator-defined on_interrupt
                let Some(mut entry) = self.monitor.take(id) else {
                    return;
                };
                if let AgentKind::Native = entry.naplet.kind() {
                    let mut effects = Effects::default();
                    let res = self.codebase.instantiate(entry.naplet.codebase()).and_then(
                        |mut behavior| {
                            let mut ctx = RunCtx::new(
                                &self.host,
                                now,
                                &mut entry.naplet,
                                &mut entry.mailbox,
                                &mut self.resources,
                                &self.security,
                                &mut effects,
                            );
                            behavior.on_interrupt(&mut ctx, verb)
                        },
                    );
                    let nid = entry.naplet.id().clone();
                    self.apply_effects(&nid, &mut entry, effects, now, out);
                    if let Err(e) = res {
                        self.logf(now, format!("on_interrupt failed for {id}: {e}"));
                    }
                }
                self.monitor.restore(entry);
            }
        }
    }

    // =====================================================================
    // Destruction / completion
    // =====================================================================

    fn destroy_resident(
        &mut self,
        id: &NapletId,
        reason: &str,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let Some(mut entry) = self.monitor.evict(id) else {
            return;
        };
        self.resources.release(id);
        // on_destroy hook for native agents
        if let AgentKind::Native = entry.naplet.kind() {
            if let Ok(mut behavior) = self.codebase.instantiate(entry.naplet.codebase()) {
                let mut effects = Effects::default();
                {
                    let mut ctx = RunCtx::new(
                        &self.host,
                        now,
                        &mut entry.naplet,
                        &mut entry.mailbox,
                        &mut self.resources,
                        &self.security,
                        &mut effects,
                    );
                    let _ = behavior.on_destroy(&mut ctx);
                }
                let nid = entry.naplet.id().clone();
                self.dispatch_effects(&nid.clone(), &entry.naplet, effects, now, out);
            }
        }
        self.logf(now, format!("DESTROY {id}: {reason}"));
        self.journal_retire(id, now);
        self.obs.metrics.incr("journeys.destroyed", 1);
        self.obs
            .emit(now, &self.host, Some(id), || TraceKind::JourneyDone {
                status: "destroyed".to_string(),
            });
        self.notify_home(id, NapletStatus::Destroyed, reason, now, out);
        self.dir_remove(id, now, out);
    }

    fn finish_journey(
        &mut self,
        naplet: Naplet,
        now: Millis,
        detail: &str,
        normal: bool,
        out: &mut Vec<Output>,
    ) {
        let id = naplet.id().clone();
        self.logf(now, format!("COMPLETE {id}"));
        let status = if normal {
            NapletStatus::Completed
        } else {
            NapletStatus::Destroyed
        };
        self.notify_home(&id, status, detail, now, out);
        self.dir_remove(&id, now, out);
        self.monitor.evict(&id);
        self.resources.release(&id);
        self.journal_retire(&id, now);
        let label = if normal { "completed" } else { "destroyed" };
        self.obs.metrics.incr(
            if normal {
                "journeys.completed"
            } else {
                "journeys.destroyed"
            },
            1,
        );
        self.obs
            .emit(now, &self.host, Some(&id), || TraceKind::JourneyDone {
                status: label.to_string(),
            });
        self.completed.push((id, naplet.nav_log.clone()));
    }

    fn notify_home(
        &mut self,
        id: &NapletId,
        status: NapletStatus,
        detail: &str,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let home = id.home().to_string();
        let wire = Wire::Notify {
            id: id.clone(),
            status,
            host: self.host.clone(),
            detail: detail.to_string(),
        };
        if home == self.host {
            if let Wire::Notify {
                id, status, host, ..
            } = &wire
            {
                self.note_status_at_home(id, *status, now);
                self.manager.update_status(id, *status, host, now);
            }
        } else {
            out.push(Output::Send { to: home, wire });
        }
    }

    // =====================================================================
    // Home-side leases
    // =====================================================================

    /// A life-cycle status reached this (home) server: terminal states
    /// end the lease and drop the creation record; anything else is a
    /// sign of life.
    fn note_status_at_home(&mut self, id: &NapletId, status: NapletStatus, now: Millis) {
        match status {
            NapletStatus::Completed
            | NapletStatus::Destroyed
            | NapletStatus::Parked
            | NapletStatus::Lost => {
                self.leases.release(id);
                let _ = self.journal.remove_creation(id);
            }
            _ => self.leases.renew(id, now),
        }
    }

    /// Arm the next lease-expiry check for `id`.
    fn arm_lease_timer(&self, id: &NapletId, out: &mut Vec<Output>) {
        let Some(policy) = &self.lease_policy else {
            return;
        };
        out.push(Output::Schedule {
            delay_ms: policy.duration_ms + 1,
            event: LocalEvent::LeaseCheck { id: id.clone() },
        });
    }

    /// A lease timer came due: either the lease was renewed in the
    /// meantime (re-arm for the remaining window) or the agent is
    /// orphaned — re-dispatch it from the creation record if the
    /// policy's budget allows, else declare it [`NapletStatus::Lost`].
    fn check_lease(&mut self, id: &NapletId, now: Millis, out: &mut Vec<Output>) {
        let Some(policy) = self.lease_policy.clone() else {
            return;
        };
        let Some(lease) = self.leases.get(id) else {
            return; // released (terminal status) — nothing to watch
        };
        let age = now.since(lease.last_renewed);
        if age <= policy.duration_ms {
            // renewed since the timer was armed: watch the rest of the
            // current window
            out.push(Output::Schedule {
                delay_ms: policy.duration_ms - age + 1,
                event: LocalEvent::LeaseCheck { id: id.clone() },
            });
            return;
        }
        if matches!(self.mode, LocationMode::ReplicatedDirectory(_)) && self.repl.is_none() {
            // a non-replica home sees little direct registration
            // traffic in replicated mode (the leader's commit echo can
            // lag or drop): before declaring the agent orphaned, ask
            // the replica set whether it has seen recent movement
            let attempts = self.lease_probe_attempts.entry(id.clone()).or_insert(0);
            if *attempts < self.retry.max_retries {
                *attempts += 1;
                let attempt = *attempts;
                if let Some(holder) = self.directory_holder(id) {
                    let token = self.token();
                    self.pending_lease_probes.insert(token, id.clone());
                    self.obs.metrics.incr("lease.probes", 1);
                    self.logf(now, format!("LEASE probe {attempt} for {id} via {holder}"));
                    out.push(Output::Send {
                        to: holder,
                        wire: Wire::DirQuery {
                            token,
                            id: id.clone(),
                            reply_to: self.host.clone(),
                        },
                    });
                    // rotate in case this replica is the dead one
                    self.replica_hint = self.replica_hint.wrapping_add(1);
                    let key = token ^ 0x4c50_524f_4245u64;
                    out.push(Output::Schedule {
                        delay_ms: self.retry.jittered_backoff_ms(key, attempt),
                        event: LocalEvent::LeaseCheck { id: id.clone() },
                    });
                    return;
                }
            } else {
                self.lease_probe_attempts.remove(id);
            }
        }
        self.leases.expired += 1;
        self.logf(
            now,
            format!("LEASE expired for {id} ({age}ms without sign of life)"),
        );
        let creation = self.journal.creation(id);
        let can_redispatch =
            policy.redispatch && lease.redispatches < policy.max_redispatches && creation.is_some();
        self.obs.metrics.incr("lease.expired", 1);
        self.obs
            .emit(now, &self.host, Some(id), || TraceKind::LeaseExpired {
                redispatched: can_redispatch,
            });
        if can_redispatch {
            let naplet = creation.unwrap();
            self.leases.note_redispatch(id, now);
            self.leases.redispatched += 1;
            self.obs.metrics.incr("lease.redispatched", 1);
            self.logf(
                now,
                format!(
                    "REDISPATCH {id} from creation record (attempt {})",
                    lease.redispatches + 1
                ),
            );
            self.manager.record_launch(id.clone(), &self.host, now);
            self.manager.record_arrival(id, None, now);
            self.arm_lease_timer(id, out);
            self.continue_journey(naplet, Mailbox::new(), now, out);
        } else {
            self.leases.lost += 1;
            self.leases.release(id);
            let _ = self.journal.remove_creation(id);
            self.manager
                .update_status(id, NapletStatus::Lost, &self.host, now);
            self.logf(now, format!("LOST {id}: lease expired, no re-dispatch"));
        }
    }

    /// A directory replica answered a lease probe. A registration
    /// fresher than the lease window counts as a sign of life (the
    /// commit echo to this home was merely lost); a stale or missing
    /// entry is an authoritative verdict — stop probing so the pending
    /// [`LocalEvent::LeaseCheck`] runs the ordinary expiry path.
    fn resolve_lease_probe(
        &mut self,
        id: NapletId,
        entry: Option<(String, DirEvent, Millis)>,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let _ = out;
        let Some(policy) = self.lease_policy.clone() else {
            return;
        };
        if self.leases.get(&id).is_none() {
            self.lease_probe_attempts.remove(&id);
            return; // released in the meantime
        }
        let fresh = entry
            .as_ref()
            .is_some_and(|(_, _, at)| now.since(*at) <= policy.duration_ms);
        if fresh {
            self.lease_probe_attempts.remove(&id);
            self.leases.renew(&id, now);
            self.obs.metrics.incr("lease.probe_confirmed", 1);
            self.logf(now, format!("LEASE probe confirmed {id} alive"));
        } else {
            self.obs.metrics.incr("lease.probe_stale", 1);
            self.lease_probe_attempts
                .insert(id.clone(), self.retry.max_retries);
            self.logf(
                now,
                format!("LEASE probe found no recent movement for {id}"),
            );
        }
    }

    // =====================================================================
    // Crash recovery
    // =====================================================================

    /// Replay the journal after a crash wiped all volatile state.
    ///
    /// Rehydrates every journaled naplet: a resident whose visit
    /// already ran resumes at the visit's *end* — the visit-epoch
    /// ratchet suppresses a second application of its effects; a
    /// resident admitted but not yet run is re-admitted through the
    /// normal registration gate; an in-flight handoff re-enters the
    /// retry machinery under its original transfer id (an immediate
    /// timeout retransmits or fails over by the ordinary rules); a
    /// parked agent returns to the parked set. The receiver-side dedup
    /// table, the transfer-token watermark and any home-side leases
    /// are restored so idempotence, id-uniqueness and liveness
    /// tracking survive the crash.
    pub fn recover(&mut self, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        // consensus state first: term, vote and the replicated log are
        // durable — a rejoining replica must not regress its promises
        if let Some(old) = self.repl.take() {
            let cfg = old.config().clone();
            self.repl = Some(ReplicaCore::recover(&self.host, cfg, &self.journal));
            self.repl_tick_armed = false;
            self.arm_repl_tick(&mut out);
        }
        // dedup + token state first: nothing replayed below may admit
        // a duplicate or reuse a pre-crash transfer id
        for (key, at) in self.journal.seen() {
            self.seen_transfers.insert(key, at);
        }
        self.next_token = self.next_token.max(self.journal.token_watermark());
        let mut local = 0u64;
        let mut suppressed = 0u64;
        let mut resumed = 0u64;
        for (_key, record) in self.journal.naplet_records() {
            let Ok(naplet) = record.decode_naplet() else {
                continue; // undecodable record: nothing restorable
            };
            let id = naplet.id().clone();
            self.recovery.rehydrated += 1;
            local += 1;
            match record.phase {
                JournalPhase::Parked => {
                    self.logf(now, format!("RECOVER parked {id}"));
                    self.obs
                        .emit(now, &self.host, Some(&id), || TraceKind::RecoveryReplayed {
                            phase: "parked".to_string(),
                        });
                    self.parked.insert(id, naplet);
                }
                JournalPhase::Resident {
                    applied_epoch,
                    action,
                } => {
                    // restore the footprint so message chases find us
                    self.manager.record_arrival(&id, None, now);
                    if applied_epoch >= naplet.nav_log.visit_epoch() {
                        // effects already escaped: resume at visit end
                        self.recovery.replays_suppressed += 1;
                        suppressed += 1;
                        self.obs
                            .emit(now, &self.host, Some(&id), || TraceKind::RecoveryReplayed {
                                phase: "resident-applied".to_string(),
                            });
                        self.logf(now, format!("RECOVER resident {id} (visit applied)"));
                        self.monitor.admit(naplet, None, RunState::VisitDone, now);
                        self.reregister_arrival(&id, false, now, &mut out);
                        out.push(Output::Schedule {
                            delay_ms: 0,
                            event: LocalEvent::VisitDone { id: id.clone() },
                        });
                    } else {
                        // admitted but never run: re-run through the
                        // normal registration gate
                        self.obs
                            .emit(now, &self.host, Some(&id), || TraceKind::RecoveryReplayed {
                                phase: "resident-rerun".to_string(),
                            });
                        self.logf(now, format!("RECOVER resident {id} (re-running visit)"));
                        self.monitor
                            .admit(naplet, action, RunState::AwaitingArrivalAck, now);
                        self.reregister_arrival(&id, true, now, &mut out);
                    }
                }
                JournalPhase::InFlight {
                    transfer_id,
                    dest,
                    checkpoint,
                    awaiting_ack,
                    attempt,
                    action,
                } => {
                    self.recovery.handoffs_resumed += 1;
                    resumed += 1;
                    self.obs
                        .emit(now, &self.host, Some(&id), || TraceKind::RecoveryReplayed {
                            phase: "in-flight".to_string(),
                        });
                    self.logf(
                        now,
                        format!("RECOVER in-flight {id} -> {dest} (transfer {transfer_id})"),
                    );
                    self.pending_transfers.insert(
                        transfer_id,
                        PendingTransfer {
                            naplet: RetainedAgent::Local(naplet.into()),
                            action,
                            mailbox: Mailbox::new(),
                            dest,
                            started: now,
                            checkpoint,
                            phase: if awaiting_ack {
                                TransferPhase::AwaitingAck
                            } else {
                                TransferPhase::AwaitingPermit
                            },
                            attempt,
                        },
                    );
                    // an immediate timeout re-drives the handoff: the
                    // ordinary handler retransmits the current phase's
                    // frame or fails over — no recovery-special paths
                    out.push(Output::Schedule {
                        delay_ms: 0,
                        event: LocalEvent::TransferTimeout {
                            transfer_id,
                            attempt,
                        },
                    });
                }
            }
        }
        // re-arm leases for agents this (home) server dispatched that
        // are still outstanding; their redispatch budget restarts with
        // the rebuilt lease table
        if self.lease_policy.is_some() {
            for id_str in self.journal.creations() {
                let Ok(id) = id_str.parse::<NapletId>() else {
                    continue;
                };
                self.manager.record_launch(id.clone(), &self.host, now);
                self.leases.grant(&id, now);
                self.arm_lease_timer(&id, &mut out);
            }
        }
        self.logf(now, format!("RECOVER complete: {local} naplet(s)"));
        self.obs.metrics.incr("recovery.replays", 1);
        self.obs.metrics.incr("recovery.rehydrated", local);
        self.obs
            .emit(now, &self.host, None, || TraceKind::RecoveryDone {
                rehydrated: local,
                suppressed,
                resumed,
            });
        out
    }

    fn dir_remove(&mut self, id: &NapletId, now: Millis, out: &mut Vec<Output>) {
        match self.directory_holder(id) {
            Some(holder) if holder == self.host => {
                if self.repl.is_some() {
                    let op = DirOp::Remove { id: id.clone() };
                    self.repl_submit(op, Wire::DirRemove { id: id.clone() }, now, out);
                } else {
                    self.directory.remove(id);
                }
            }
            Some(holder) => {
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirRemove { id: id.clone() },
                });
            }
            None => {}
        }
    }
}

/// Stable label of a journal phase for traces/logs.
fn phase_label(phase: &JournalPhase) -> &'static str {
    match phase {
        JournalPhase::InFlight { .. } => "in-flight",
        JournalPhase::Resident { .. } => "resident",
        JournalPhase::Parked => "parked",
    }
}

/// Which way execution left the visit.
enum ExecOutcome {
    /// Business logic for this visit finished; itinerary continues.
    Continue,
    /// A VM program ran to completion: the agent is done regardless of
    /// remaining itinerary.
    ProgramDone,
}

/// Effects collected from behaviour execution, applied by the server
/// afterwards (keeps the context borrow-free of server internals).
#[derive(Default)]
struct Effects {
    /// (target, location hint, body)
    posts: Vec<(NapletId, String, Value)>,
    reports: Vec<Value>,
    logs: Vec<String>,
}

/// The transient run context handed to behaviours (paper §2.1: set by
/// the resource manager on arrival; never serialized).
struct RunCtx<'a> {
    host: &'a str,
    now: Millis,
    naplet: &'a mut Naplet,
    mailbox: &'a mut Mailbox,
    resources: &'a mut ResourceManager,
    security: &'a SecurityManager,
    effects: &'a mut Effects,
}

impl<'a> RunCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        host: &'a str,
        now: Millis,
        naplet: &'a mut Naplet,
        mailbox: &'a mut Mailbox,
        resources: &'a mut ResourceManager,
        security: &'a SecurityManager,
        effects: &'a mut Effects,
    ) -> RunCtx<'a> {
        RunCtx {
            host,
            now,
            naplet,
            mailbox,
            resources,
            security,
            effects,
        }
    }
}

impl NapletContext for RunCtx<'_> {
    fn host_name(&self) -> &str {
        self.host
    }
    fn naplet_id(&self) -> &NapletId {
        self.naplet.id()
    }
    fn state(&mut self) -> &mut naplet_core::state::NapletState {
        &mut self.naplet.state
    }
    fn address_book(&mut self) -> &mut naplet_core::address_book::AddressBook {
        &mut self.naplet.address_book
    }
    fn post_message(&mut self, to: &NapletId, body: Value) -> Result<()> {
        self.security
            .check(self.naplet.credential(), Permission::Messaging)?;
        let entry =
            self.naplet.address_book.lookup(to).ok_or_else(|| {
                NapletError::Communication(format!("peer {to} not in address book"))
            })?;
        self.effects
            .posts
            .push((to.clone(), entry.server.clone(), body));
        Ok(())
    }
    fn get_message(&mut self) -> Result<Option<Message>> {
        Ok(self.mailbox.take())
    }
    fn call_service(&mut self, name: &str, args: Value) -> Result<Value> {
        self.resources
            .call_open(self.security, self.naplet.credential(), name, args)
    }
    fn channel_exchange(&mut self, service: &str, request: Value) -> Result<Value> {
        let id = self.naplet.id().clone();
        let cred = self.naplet.credential().clone();
        self.resources
            .channel_exchange(self.security, &cred, &id, service, request)
    }
    fn report_home(&mut self, body: Value) -> Result<()> {
        self.effects.reports.push(body);
        Ok(())
    }
    fn now(&self) -> Millis {
        self.now
    }
    fn log(&mut self, line: &str) {
        self.effects.logs.push(line.to_string());
    }
}

/// Execute one itinerary post-action.
fn run_action(
    registry: &ActionRegistry,
    action: &ActionSpec,
    ctx: &mut dyn NapletContext,
) -> Result<()> {
    match action {
        ActionSpec::ReportHome => {
            // report the naplet's whole public+private view of state:
            // the conventional ResultReport sends gathered data home
            let mut snapshot = std::collections::BTreeMap::new();
            let keys: Vec<String> = ctx.state().keys().map(str::to_string).collect();
            for k in keys {
                snapshot.insert(k.clone(), ctx.state().get(&k));
            }
            ctx.report_home(Value::Map(snapshot))
        }
        ActionSpec::DataComm => {
            // the paper's collective operator: post own latest data to
            // every peer in the address book, then drain whatever has
            // already arrived into state["datacomm.received"]
            let payload = ctx.state().get("datacomm");
            let peers: Vec<NapletId> = ctx
                .address_book()
                .iter()
                .map(|e| e.naplet_id.clone())
                .collect();
            for peer in peers {
                // ignore transient failures, as the paper's example does
                let _ = ctx.post_message(&peer, payload.clone());
            }
            let mut received = match ctx.state().get("datacomm.received") {
                Value::List(l) => l,
                _ => Vec::new(),
            };
            while let Some(m) = ctx.get_message()? {
                if let Payload::User(v) = m.payload {
                    received.push(v);
                }
            }
            ctx.state().set("datacomm.received", Value::List(received));
            Ok(())
        }
        ActionSpec::Named(name) => registry.get(name)?.operate(ctx),
    }
}
