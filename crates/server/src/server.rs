//! The NapletServer: one dock of naplets per host (paper §2.2).
//!
//! A server wires the seven architecture components together —
//! NapletMonitor, NapletSecurityManager, ResourceManager,
//! NapletManager, Messenger, Navigator (the migration protocol in this
//! file) and Locator — plus dynamically created ServiceChannels. It is
//! written as a deterministic event handler: a driver feeds it
//! [`Input`]s and enacts the [`Output`]s, so the same server runs
//! under the discrete-event runtime and under threaded drivers.

use std::collections::HashMap;

use naplet_core::behavior::ActionRegistry;
use naplet_core::clock::Millis;
use naplet_core::codebase::{CodeCache, CodebaseRegistry};
use naplet_core::context::NapletContext;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::itinerary::{ActionSpec, Step};
use naplet_core::message::{ControlVerb, Mailbox, Message, Payload, Sender};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_vm::{ContextVmHost, VmImage, VmYield};

use crate::directory::{DirEvent, NapletDirectory};
use crate::events::{Input, LocalEvent, LogEntry, Output, TransferEnvelope, Wire};
use crate::locator::Locator;
use crate::manager::{NapletManager, NapletStatus};
use crate::messenger::Messenger;
use crate::monitor::{MonitorPolicy, NapletMonitor, RunState};
use crate::resources::ResourceManager;
use crate::security::{Permission, SecurityManager};

/// How naplets are traced and located (paper §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationMode {
    /// A centralized NapletDirectory at the named host.
    CentralDirectory(String),
    /// Distributed directory: each naplet's home manager tracks it
    /// (the home is derived from the naplet id).
    HomeManagers,
    /// No directory: footprint traces + message forwarding.
    ForwardingTrace,
}

/// Static server configuration.
pub struct ServerConfig {
    /// This server's host name (one server per host).
    pub host: String,
    /// Location mode shared by the naplet space.
    pub mode: LocationMode,
    /// Security manager (policy + trusted keys).
    pub security: SecurityManager,
    /// Monitor resource policy.
    pub monitor_policy: MonitorPolicy,
    /// Codebase registry for native behaviours.
    pub codebase: CodebaseRegistry,
    /// Named post-actions.
    pub actions: ActionRegistry,
    /// Admission cap: refuse LANDING above this many residents.
    pub max_residents: Option<usize>,
}

impl ServerConfig {
    /// Open configuration (allow-all security, defaults) for `host`.
    pub fn open(host: &str, mode: LocationMode) -> ServerConfig {
        ServerConfig {
            host: host.to_string(),
            mode,
            security: SecurityManager::open(),
            monitor_policy: MonitorPolicy::default(),
            codebase: CodebaseRegistry::new(),
            actions: ActionRegistry::new(),
            max_residents: None,
        }
    }
}

struct PendingLaunch {
    naplet: Naplet,
    action: Option<ActionSpec>,
    mailbox: Mailbox,
    dest: String,
}

struct PendingQuery {
    msg: Message,
}

type AppHandler = Box<dyn FnMut(&str, &[u8]) -> Result<Vec<u8>> + Send>;
type StateHook = Box<dyn FnMut(&mut naplet_core::state::ServerStateView<'_>) + Send>;

/// One naplet server (a dock of naplets within a host).
pub struct NapletServer {
    host: String,
    mode: LocationMode,
    security: SecurityManager,
    /// Open + privileged services and live channels.
    pub resources: ResourceManager,
    /// Execution monitor.
    pub monitor: NapletMonitor,
    /// Naplet table + footprints.
    pub manager: NapletManager,
    /// Post-office state.
    pub messenger: Messenger,
    /// Location cache.
    pub locator: Locator,
    /// Directory shard: the registry itself when this host is (or
    /// serves as home for) a directory holder.
    pub directory: NapletDirectory,
    codebase: CodebaseRegistry,
    code_cache: CodeCache,
    actions: ActionRegistry,
    max_residents: Option<usize>,
    next_token: u64,
    pending_launches: HashMap<u64, PendingLaunch>,
    pending_queries: HashMap<u64, PendingQuery>,
    /// Naplets whose LANDING we granted and whose transfer has not
    /// arrived yet: messages for them wait here instead of chasing a
    /// stale footprint trail (§4.2 case 3 under cyclic itineraries).
    expected_arrivals: HashMap<NapletId, Millis>,
    app_handler: Option<AppHandler>,
    state_hook: Option<StateHook>,
    /// Listener reports received for naplets homed here.
    pub reports: Vec<(NapletId, Value)>,
    /// Application-level replies received at this host
    /// (token, tag, body).
    pub app_replies: Vec<(u64, String, Vec<u8>)>,
    /// Human-readable event log.
    pub log: Vec<LogEntry>,
}

impl NapletServer {
    /// Build a server from its configuration.
    pub fn new(config: ServerConfig) -> NapletServer {
        NapletServer {
            host: config.host,
            mode: config.mode,
            security: config.security,
            resources: ResourceManager::new(),
            monitor: NapletMonitor::new(config.monitor_policy),
            manager: NapletManager::new(),
            messenger: Messenger::default(),
            locator: Locator::default(),
            directory: NapletDirectory::new(),
            codebase: config.codebase,
            code_cache: CodeCache::new(),
            actions: config.actions,
            max_residents: config.max_residents,
            next_token: 0,
            pending_launches: HashMap::new(),
            pending_queries: HashMap::new(),
            expected_arrivals: HashMap::new(),
            app_handler: None,
            state_hook: None,
            reports: Vec::new(),
            app_replies: Vec::new(),
            log: Vec::new(),
        }
    }

    /// This server's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Install the application-level request handler (client/server
    /// baselines; metered as `Snmp` traffic).
    pub fn set_app_handler(
        &mut self,
        f: impl FnMut(&str, &[u8]) -> Result<Vec<u8>> + Send + 'static,
    ) {
        self.app_handler = Some(Box::new(f));
    }

    /// Install a hook run against every arriving naplet's state
    /// *through the mode-checked server view* (paper §2.1: "a naplet
    /// server can update a returning naplet with new information" —
    /// but only in entries whose protection mode admits this host).
    pub fn set_arrival_state_hook(
        &mut self,
        f: impl FnMut(&mut naplet_core::state::ServerStateView<'_>) + Send + 'static,
    ) {
        self.state_hook = Some(Box::new(f));
    }

    /// Mutable access to the security manager (policy reconfiguration).
    pub fn security_mut(&mut self) -> &mut SecurityManager {
        &mut self.security
    }

    /// Mutable access to the action registry.
    pub fn actions_mut(&mut self) -> &mut ActionRegistry {
        &mut self.actions
    }

    fn logf(&mut self, now: Millis, line: String) {
        self.log.push(LogEntry { at: now, line });
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// The host that holds directory state for `id` under the current
    /// mode, or `None` in pure forwarding mode.
    fn directory_holder(&self, id: &NapletId) -> Option<String> {
        match &self.mode {
            LocationMode::CentralDirectory(host) => Some(host.clone()),
            LocationMode::HomeManagers => Some(id.home().to_string()),
            LocationMode::ForwardingTrace => None,
        }
    }

    // =====================================================================
    // Entry points
    // =====================================================================

    /// Launch a locally created naplet on its journey. Must be called
    /// on the naplet's home server.
    pub fn launch(&mut self, naplet: Naplet, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        let id = naplet.id().clone();
        self.manager.record_launch(id.clone(), &self.host, now);
        self.manager.record_arrival(&id, None, now);
        self.logf(now, format!("LAUNCH {id}"));
        self.continue_journey(naplet, Mailbox::new(), now, &mut out);
        out
    }

    /// Post a message on behalf of the owner/console at this host
    /// (remote control and owner→agent data). Routed through the full
    /// post-office protocol.
    pub fn owner_post(&mut self, to: NapletId, payload: Payload, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        let seq = self.messenger.next_seq();
        let msg = Message {
            seq,
            from: Sender::Owner(self.host.clone()),
            to,
            sent_at: now,
            payload,
            forward_hops: 0,
        };
        self.route_message(msg, None, now, &mut out);
        out
    }

    /// Handle one input, producing effects for the driver.
    pub fn handle(&mut self, now: Millis, input: Input) -> Vec<Output> {
        let mut out = Vec::new();
        match input {
            Input::Wire { from, wire } => self.handle_wire(now, &from, wire, &mut out),
            Input::Local(ev) => self.handle_local(now, ev, &mut out),
        }
        out
    }

    // =====================================================================
    // Wire handling
    // =====================================================================

    fn handle_wire(&mut self, now: Millis, from: &str, wire: Wire, out: &mut Vec<Output>) {
        match wire {
            Wire::LandingRequest {
                token,
                from_host,
                credential,
                naplet_id,
                est_bytes,
            } => {
                let decision = self.landing_decision(&credential, &naplet_id, est_bytes);
                let (granted, reason) = match decision {
                    Ok(()) => (true, String::new()),
                    Err(e) => (false, e.to_string()),
                };
                if granted {
                    // age out expectations whose transfer was lost so
                    // parked messages do not wait forever
                    self.expected_arrivals.retain(|_, t| now.since(*t) < 60_000);
                    self.expected_arrivals.insert(naplet_id.clone(), now);
                }
                self.logf(
                    now,
                    format!(
                        "LANDING {naplet_id} from {from_host}: {}",
                        if granted { "grant" } else { "deny" }
                    ),
                );
                out.push(Output::Send {
                    to: from_host,
                    wire: Wire::LandingReply {
                        token,
                        granted,
                        reason,
                    },
                });
            }
            Wire::LandingReply {
                token,
                granted,
                reason,
            } => {
                let Some(pending) = self.pending_launches.remove(&token) else {
                    self.logf(now, format!("stray LandingReply token {token}"));
                    return;
                };
                if granted {
                    self.complete_departure(pending, now, out);
                } else {
                    let id = pending.naplet.id().clone();
                    self.logf(
                        now,
                        format!("LANDING denied for {id} at {}: {reason}", pending.dest),
                    );
                    // itinerary exception: skip the refused visit
                    self.continue_journey(pending.naplet, pending.mailbox, now, out);
                }
            }
            Wire::Transfer(envelope) => {
                self.admit_arrival(envelope, Some(from), now, out);
            }
            Wire::DirRegister {
                id,
                host,
                event,
                ack_to,
            } => {
                self.directory.register(&id, &host, event, now);
                if event == DirEvent::Arrival {
                    self.manager
                        .update_status(&id, NapletStatus::Running, &host, now);
                } else {
                    self.manager
                        .update_status(&id, NapletStatus::InTransit, &host, now);
                }
                if let Some(ack_to) = ack_to {
                    out.push(Output::Send {
                        to: ack_to,
                        wire: Wire::DirAck { id },
                    });
                }
            }
            Wire::DirAck { id } => {
                if let Some(e) = self.monitor.get_mut(&id) {
                    if e.state == RunState::AwaitingArrivalAck {
                        self.proceed_after_registration(&id, now, out);
                    }
                }
            }
            Wire::DirRemove { id } => {
                self.directory.remove(&id);
            }
            Wire::DirQuery {
                token,
                id,
                reply_to,
            } => {
                let entry = self
                    .directory
                    .lookup(&id)
                    .map(|e| (e.host.clone(), e.event));
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::DirReply { token, id, entry },
                });
            }
            Wire::DirReply { token, id, entry } => {
                let Some(pending) = self.pending_queries.remove(&token) else {
                    return;
                };
                match entry {
                    Some((host, _event)) => {
                        self.locator.put(id.clone(), &host, now);
                        self.send_post(pending.msg, &host, now, out);
                    }
                    None => {
                        // unknown to the directory: the naplet may not
                        // have landed anywhere yet — park the message at
                        // its home server's special mailbox (case 3)
                        let home = id.home().to_string();
                        if home == self.host {
                            self.messenger.stash_early(pending.msg);
                        } else {
                            self.send_post(pending.msg, &home, now, out);
                        }
                    }
                }
            }
            Wire::Post { msg, origin_host } => {
                self.deliver_or_chase(msg, origin_host, now, out);
            }
            Wire::PostConfirm {
                sender,
                seq,
                target,
                delivered_at,
            } => {
                self.messenger
                    .record_confirmation(sender, seq, &delivered_at, now);
                // the confirmation doubles as a fresh location hint
                self.locator.put(target, &delivered_at, now);
            }
            Wire::Report { id, body } => {
                self.logf(now, format!("REPORT from {id}"));
                self.reports.push((id, body));
            }
            Wire::Notify {
                id,
                status,
                host,
                detail,
            } => {
                if !detail.is_empty() {
                    self.logf(now, format!("NOTIFY {id}: {status:?} at {host}: {detail}"));
                }
                self.manager.update_status(&id, status, &host, now);
            }
            Wire::AppRequest {
                token,
                reply_to,
                tag,
                body,
            } => {
                let result: Result<Vec<u8>> = match self.app_handler.as_mut() {
                    Some(h) => h(&tag, &body),
                    None => Err(NapletError::Service(format!(
                        "no app handler at `{}`",
                        self.host
                    ))),
                };
                let encoded: std::result::Result<Vec<u8>, String> =
                    result.map_err(|e| e.to_string());
                let body = naplet_core::codec::to_bytes(&encoded).unwrap_or_default();
                out.push(Output::Send {
                    to: reply_to,
                    wire: Wire::AppReply { token, tag, body },
                });
            }
            Wire::AppReply { token, tag, body } => {
                // collected for local application code (e.g. the
                // centralized management baseline running at this host)
                self.app_replies.push((token, tag, body));
            }
        }
    }

    // =====================================================================
    // Local events
    // =====================================================================

    fn handle_local(&mut self, now: Millis, ev: LocalEvent, out: &mut Vec<Output>) {
        match ev {
            LocalEvent::VisitDone { id } => {
                let Some(entry) = self.monitor.take(&id) else {
                    return;
                };
                match entry.state {
                    RunState::Suspended => {
                        // stay parked; Resume reschedules
                        self.monitor.restore(entry);
                    }
                    _ => {
                        let mut naplet = entry.naplet;
                        let mailbox = entry.mailbox;
                        naplet.nav_log.record_departure(now);
                        self.continue_journey(naplet, mailbox, now, out);
                    }
                }
            }
            LocalEvent::CodeReady { id } => {
                if let Some(e) = self.monitor.get_mut(&id) {
                    if e.state == RunState::AwaitingCode {
                        e.state = RunState::Runnable;
                        self.execute_visit(&id, now, out);
                    }
                }
            }
        }
    }

    // =====================================================================
    // Navigator: migration protocol
    // =====================================================================

    fn landing_decision(
        &self,
        credential: &naplet_core::credential::Credential,
        _naplet_id: &NapletId,
        _est_bytes: u64,
    ) -> Result<()> {
        self.security.verify(credential)?;
        self.security.check(credential, Permission::Landing)?;
        if let Some(cap) = self.max_residents {
            if self.monitor.len() >= cap {
                return Err(NapletError::ResourceExhausted {
                    resource: "residents".into(),
                    detail: format!("server full ({cap})"),
                });
            }
        }
        Ok(())
    }

    /// Drive the itinerary forward from the current host until the
    /// naplet migrates, parks, or finishes.
    fn continue_journey(
        &mut self,
        mut naplet: Naplet,
        mut mailbox: Mailbox,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        loop {
            match naplet.advance() {
                Step::Visit { host, action } => {
                    if host == self.host {
                        // a visit to the current host needs no
                        // migration; unread mail rides along via the
                        // special mailbox, drained on (re-)admission
                        for m in mailbox.drain() {
                            self.messenger.stash_early(m);
                        }
                        let envelope = TransferEnvelope { naplet, action };
                        self.admit_arrival(envelope, None, now, out);
                    } else {
                        self.begin_migration(naplet, mailbox, action, host, now, out);
                    }
                    return;
                }
                Step::Fork { clones } => {
                    if let Err(e) = self.security.check(naplet.credential(), Permission::Clone) {
                        self.logf(now, format!("CLONE denied for {}: {e}", naplet.id()));
                        continue; // parent continues; branches abandoned
                    }
                    for branch in clones {
                        let clone = naplet.clone_for_branch(branch, &self.host);
                        let cid = clone.id().clone();
                        self.manager.record_launch(cid.clone(), &self.host, now);
                        self.manager.record_arrival(&cid, None, now);
                        self.logf(now, format!("CLONE {cid}"));
                        self.continue_journey(clone, Mailbox::new(), now, out);
                    }
                    // parent keeps advancing in this loop
                }
                Step::Action(action) => {
                    self.run_action_standalone(&mut naplet, &mut mailbox, &action, now, out);
                }
                Step::Done => {
                    // a VM agent parked at travel_next learns the
                    // journey is over (nil) and gets a final slice to
                    // report/clean up before destruction
                    if matches!(naplet.kind(), AgentKind::Vm(_)) {
                        self.final_vm_run(&mut naplet, &mut mailbox, now, out);
                    }
                    self.finish_journey(naplet, now, "completed", true, out);
                    return;
                }
            }
        }
    }

    fn begin_migration(
        &mut self,
        naplet: Naplet,
        mailbox: Mailbox,
        action: Option<ActionSpec>,
        dest: String,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        if let Err(e) = self.security.check(naplet.credential(), Permission::Launch) {
            self.logf(now, format!("LAUNCH denied for {}: {e}", naplet.id()));
            // skip this visit entirely
            self.continue_journey(naplet, mailbox, now, out);
            return;
        }
        let token = self.token();
        let est_bytes = naplet.wire_size().unwrap_or(0);
        let wire = Wire::LandingRequest {
            token,
            from_host: self.host.clone(),
            credential: naplet.credential().clone(),
            naplet_id: naplet.id().clone(),
            est_bytes,
        };
        self.pending_launches.insert(
            token,
            PendingLaunch {
                naplet,
                action,
                mailbox,
                dest: dest.clone(),
            },
        );
        out.push(Output::Send { to: dest, wire });
    }

    fn complete_departure(&mut self, pending: PendingLaunch, now: Millis, out: &mut Vec<Output>) {
        let PendingLaunch {
            naplet,
            action,
            mut mailbox,
            dest,
        } = pending;
        let id = naplet.id().clone();
        self.manager.record_departure(&id, &dest, now);
        self.resources.release(&id);
        // DEPART registration (no ack needed, paper §4.1)
        if let Some(holder) = self.directory_holder(&id) {
            let wire = Wire::DirRegister {
                id: id.clone(),
                host: self.host.clone(),
                event: DirEvent::Departure,
                ack_to: None,
            };
            if holder == self.host {
                self.directory
                    .register(&id, &self.host, DirEvent::Departure, now);
            } else {
                out.push(Output::Send { to: holder, wire });
            }
        }
        self.logf(now, format!("DEPART {id} -> {dest}"));
        // forward any early-stashed messages for it towards the
        // destination so the chase can catch up, and likewise any
        // unread mailbox messages — the post office keeps custody of
        // undelivered mail rather than dropping it with the mailbox
        for mut m in self.messenger.drain_early(&id) {
            m.forward_hops += 1;
            self.send_post(m, &dest, now, out);
        }
        for mut m in mailbox.drain() {
            m.forward_hops += 1;
            self.send_post(m, &dest, now, out);
        }
        out.push(Output::Send {
            to: dest,
            wire: Wire::Transfer(TransferEnvelope { naplet, action }),
        });
    }

    /// Arrival processing (local continuation or network transfer).
    fn admit_arrival(
        &mut self,
        envelope: TransferEnvelope,
        from: Option<&str>,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let TransferEnvelope { mut naplet, action } = envelope;
        let id = naplet.id().clone();
        if let Err(e) = self.security.verify_naplet(&naplet) {
            self.logf(now, format!("ARRIVAL rejected for {id}: {e}"));
            self.notify_home(&id, NapletStatus::Destroyed, &e.to_string(), now, out);
            return;
        }
        self.expected_arrivals.remove(&id);
        if from.is_some() {
            self.manager.record_arrival(&id, from, now);
        }
        naplet.nav_log.record_arrival(&self.host, now);
        // server-side state inspection/update under protection modes
        if let Some(hook) = &mut self.state_hook {
            let mut view = naplet.state.server_view(&self.host);
            hook(&mut view);
        }
        self.logf(now, format!("ARRIVAL {id}"));

        let state = RunState::AwaitingArrivalAck;
        let entry = self.monitor.admit(naplet, action, state, now);
        // deliver any messages that arrived before the naplet (§4.2
        // case 3): user messages into the mailbox, system messages as
        // interrupts after the arrival bookkeeping below
        let mut pending_controls = Vec::new();
        for m in self.messenger.drain_early(&id) {
            match &m.payload {
                Payload::System(verb) => pending_controls.push(verb.clone()),
                Payload::User(_) => entry.mailbox.deposit(m),
            }
        }

        // ARRIVAL registration: execution postponed until acknowledged
        match self.directory_holder(&id) {
            Some(holder) if holder != self.host => {
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirRegister {
                        id: id.clone(),
                        host: self.host.clone(),
                        event: DirEvent::Arrival,
                        ack_to: Some(self.host.clone()),
                    },
                });
                // stay in AwaitingArrivalAck until DirAck
            }
            Some(_) => {
                // we are the directory holder: register synchronously
                self.directory
                    .register(&id, &self.host.clone(), DirEvent::Arrival, now);
                self.proceed_after_registration(&id, now, out);
            }
            None => {
                self.proceed_after_registration(&id, now, out);
            }
        }

        // early control messages now interrupt the just-arrived naplet
        for verb in pending_controls {
            self.apply_control(&id, &verb, now, out);
        }
    }

    /// After arrival registration is acknowledged: fetch code if cold,
    /// then execute.
    fn proceed_after_registration(&mut self, id: &NapletId, now: Millis, out: &mut Vec<Output>) {
        let Some(entry) = self.monitor.get_mut(id) else {
            return;
        };
        let naplet = &entry.naplet;
        match naplet.kind() {
            AgentKind::Native => {
                let codebase = naplet.codebase().to_string();
                let home = naplet.home().to_string();
                if self.code_cache.is_cached(&codebase) {
                    entry.state = RunState::Runnable;
                    self.execute_visit(id, now, out);
                } else {
                    match self.code_cache.load(&self.codebase, &codebase) {
                        Ok(bytes) => {
                            entry.state = RunState::AwaitingCode;
                            out.push(Output::FetchCode {
                                from: home,
                                bytes,
                                id: id.clone(),
                            });
                        }
                        Err(e) => {
                            self.destroy_resident(id, &format!("code load failed: {e}"), now, out);
                        }
                    }
                }
            }
            AgentKind::Vm(_) => {
                entry.state = RunState::Runnable;
                self.execute_visit(id, now, out);
            }
        }
    }

    // =====================================================================
    // Execution
    // =====================================================================

    fn execute_visit(&mut self, id: &NapletId, now: Millis, out: &mut Vec<Output>) {
        let Some(mut entry) = self.monitor.take(id) else {
            return;
        };
        let policy = self.monitor.policy().clone();

        let mut effects = Effects::default();
        let exec_result = (|| -> Result<ExecOutcome> {
            let outcome = match entry.naplet.kind().clone() {
                AgentKind::Native => {
                    let mut behavior = self.codebase.instantiate(entry.naplet.codebase())?;
                    let priority = crate::monitor::Priority::of(entry.naplet.credential());
                    let dwell = policy.dwell_for(priority, self.monitor.len() + 1);
                    let gas = dwell * policy.gas_per_ms;
                    NapletMonitor::charge_gas(&mut entry, &policy, gas)?;
                    let mut ctx = RunCtx::new(
                        &self.host,
                        now,
                        &mut entry.naplet,
                        &mut entry.mailbox,
                        &mut self.resources,
                        &self.security,
                        &mut effects,
                    );
                    behavior.on_start(&mut ctx)?;
                    ExecOutcome::Continue
                }
                AgentKind::Vm(image_bytes) => {
                    let mut image = VmImage::from_wire(&image_bytes)?;
                    if image.status == naplet_vm::VmStatus::AwaitingTravel {
                        // the strong-mobility resume: travel_next
                        // returns the new host's name
                        image.resume_after_travel(Some(&self.host))?;
                    }
                    let outcome = loop {
                        let before = image.gas_used;
                        let hops = entry.naplet.nav_log.hops();
                        let mut ctx = RunCtx::new(
                            &self.host,
                            now,
                            &mut entry.naplet,
                            &mut entry.mailbox,
                            &mut self.resources,
                            &self.security,
                            &mut effects,
                        );
                        let mut host_if = ContextVmHost::new(&mut ctx, hops);
                        let yielded = naplet_vm::run(&mut image, &mut host_if, policy.gas_slice)?;
                        NapletMonitor::charge_gas(&mut entry, &policy, image.gas_used - before)?;
                        match yielded {
                            VmYield::OutOfGas => continue,
                            VmYield::Travel => break ExecOutcome::Continue,
                            VmYield::Done(_) => break ExecOutcome::ProgramDone,
                        }
                    };
                    // persist execution progress into the carried image
                    *entry.naplet.kind_mut() = AgentKind::Vm(image.to_wire()?);
                    let extra = image.memory_footprint();
                    NapletMonitor::check_memory(&entry, &policy, extra)?;
                    outcome
                }
            };

            // the visit's post-action T
            if let Some(action) = entry.pending_action.take() {
                let mut ctx = RunCtx::new(
                    &self.host,
                    now,
                    &mut entry.naplet,
                    &mut entry.mailbox,
                    &mut self.resources,
                    &self.security,
                    &mut effects,
                );
                run_action(&self.actions, &action, &mut ctx)?;
            }
            NapletMonitor::check_memory(&entry, &policy, 0)?;
            Ok(outcome)
        })();

        let id = entry.naplet.id().clone();
        self.apply_effects(&id, &mut entry, effects, now, out);

        match exec_result {
            Ok(outcome) => {
                let dwell = match entry.naplet.kind() {
                    AgentKind::Native => {
                        let priority = crate::monitor::Priority::of(entry.naplet.credential());
                        policy.dwell_for(priority, self.monitor.len() + 1)
                    }
                    AgentKind::Vm(_) => {
                        NapletMonitor::gas_to_ms(&policy, entry.gas_this_visit.max(1))
                    }
                };
                match outcome {
                    ExecOutcome::Continue => {
                        entry.state = RunState::VisitDone;
                        self.monitor.restore(entry);
                        out.push(Output::Schedule {
                            delay_ms: dwell,
                            event: LocalEvent::VisitDone { id },
                        });
                    }
                    ExecOutcome::ProgramDone => {
                        // VM program finished: journey ends here
                        let naplet = entry.naplet;
                        self.resources.release(&id);
                        self.finish_journey(naplet, now.plus(dwell), "completed", true, out);
                    }
                }
            }
            Err(e) => {
                self.monitor.kills.push((id.clone(), e.kind().to_string()));
                self.monitor.restore(entry);
                self.destroy_resident(&id, &e.to_string(), now, out);
            }
        }
    }

    /// Give a VM agent whose itinerary just completed a final slice:
    /// its pending `travel_next` resolves to nil so the program can
    /// report results and halt.
    fn final_vm_run(
        &mut self,
        naplet: &mut Naplet,
        mailbox: &mut Mailbox,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let AgentKind::Vm(bytes) = naplet.kind().clone() else {
            return;
        };
        let policy = self.monitor.policy().clone();
        let mut effects = Effects::default();
        let result = (|| -> Result<()> {
            let mut image = VmImage::from_wire(&bytes)?;
            if image.status == naplet_vm::VmStatus::AwaitingTravel {
                image.resume_after_travel(None)?;
            }
            let mut spent = 0u64;
            loop {
                if spent >= policy.max_gas_per_visit {
                    return Err(NapletError::ResourceExhausted {
                        resource: "cpu".into(),
                        detail: "final slice budget exceeded".into(),
                    });
                }
                let before = image.gas_used;
                let hops = naplet.nav_log.hops();
                let mut ctx = RunCtx::new(
                    &self.host,
                    now,
                    naplet,
                    mailbox,
                    &mut self.resources,
                    &self.security,
                    &mut effects,
                );
                let mut host_if = ContextVmHost::new(&mut ctx, hops);
                match naplet_vm::run(&mut image, &mut host_if, policy.gas_slice)? {
                    VmYield::OutOfGas => {
                        spent += image.gas_used - before;
                        continue;
                    }
                    // a second travel request cannot be satisfied: the
                    // journey is over — treat as completion
                    VmYield::Travel | VmYield::Done(_) => break,
                }
            }
            Ok(())
        })();
        let id = naplet.id().clone();
        self.dispatch_effects(&id, naplet, effects, now, out);
        if let Err(e) = result {
            self.logf(now, format!("final VM slice failed for {id}: {e}"));
        }
    }

    /// Run a pattern-level action for a naplet that is between visits
    /// (not admitted to the monitor).
    fn run_action_standalone(
        &mut self,
        naplet: &mut Naplet,
        mailbox: &mut Mailbox,
        action: &ActionSpec,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let mut effects = Effects::default();
        let result = {
            let mut ctx = RunCtx::new(
                &self.host,
                now,
                naplet,
                mailbox,
                &mut self.resources,
                &self.security,
                &mut effects,
            );
            run_action(&self.actions, action, &mut ctx)
        };
        let id = naplet.id().clone();
        // standalone actions run outside a monitor entry; account
        // bandwidth against a scratch entry-less path (still metered
        // on the fabric)
        self.dispatch_effects(&id, naplet, effects, now, out);
        if let Err(e) = result {
            self.logf(now, format!("action {action:?} failed for {id}: {e}"));
        }
    }

    // =====================================================================
    // Effects: messages, reports, logs
    // =====================================================================

    fn apply_effects(
        &mut self,
        id: &NapletId,
        entry: &mut crate::monitor::RunEntry,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let policy = self.monitor.policy().clone();
        // bandwidth accounting: posts are charged in order; the first
        // one that exceeds the budget and everything after it are
        // dropped, but reports and logs still flow
        let mut effects = effects;
        let mut kept = Vec::with_capacity(effects.posts.len());
        for (to, hint, body) in effects.posts.drain(..) {
            let bytes = naplet_core::codec::encoded_size(&body).unwrap_or(0);
            match NapletMonitor::charge_msg_bytes(entry, &policy, bytes) {
                Ok(()) => kept.push((to, hint, body)),
                Err(e) => {
                    self.logf(now, format!("bandwidth budget hit for {id}: {e}"));
                    break;
                }
            }
        }
        effects.posts = kept;
        let naplet_home = entry.naplet.home().to_string();
        self.route_effects(id, &naplet_home, effects, now, out);
    }

    fn dispatch_effects(
        &mut self,
        id: &NapletId,
        naplet: &Naplet,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let home = naplet.home().to_string();
        self.route_effects(id, &home, effects, now, out);
    }

    fn route_effects(
        &mut self,
        id: &NapletId,
        home: &str,
        effects: Effects,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        for line in effects.logs {
            self.logf(now, format!("[{}] {line}", id.short()));
        }
        for body in effects.reports {
            if home == self.host {
                self.reports.push((id.clone(), body));
            } else {
                out.push(Output::Send {
                    to: home.to_string(),
                    wire: Wire::Report {
                        id: id.clone(),
                        body,
                    },
                });
            }
        }
        for (to, hint, body) in effects.posts {
            let seq = self.messenger.next_seq();
            let msg = Message::user(seq, Sender::Naplet(id.clone()), to, now, body);
            self.route_message(msg, Some(&hint), now, out);
        }
    }

    // =====================================================================
    // Post office routing (paper §4.2)
    // =====================================================================

    fn send_post(&mut self, msg: Message, to_host: &str, now: Millis, out: &mut Vec<Output>) {
        if to_host == self.host {
            // route internally without the wire
            let origin = self.host.clone();
            let mut tmp = Vec::new();
            self.deliver_or_chase(msg, origin, now, &mut tmp);
            out.extend(tmp);
        } else {
            out.push(Output::Send {
                to: to_host.to_string(),
                wire: Wire::Post {
                    msg,
                    origin_host: self.host.clone(),
                },
            });
        }
    }

    /// First-hop routing for a locally posted message.
    fn route_message(
        &mut self,
        msg: Message,
        hint: Option<&str>,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let target = msg.to.clone();
        // resident here?
        if self.monitor.get(&target).is_some() {
            let origin = self.host.clone();
            self.deliver_or_chase(msg, origin, now, out);
            return;
        }
        // locator cache
        if let Some(loc) = self.locator.get(&target) {
            let host = loc.host.clone();
            self.send_post(msg, &host, now, out);
            return;
        }
        // directory query, or trace/hint
        match self.directory_holder(&target) {
            Some(holder) if holder != self.host => {
                let token = self.token();
                self.pending_queries.insert(token, PendingQuery { msg });
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirQuery {
                        token,
                        id: target,
                        reply_to: self.host.clone(),
                    },
                });
            }
            Some(_) => {
                // we hold the directory shard
                match self.directory.lookup(&target).map(|e| e.host.clone()) {
                    Some(host) => {
                        self.locator.put(target, &host, now);
                        self.send_post(msg, &host, now, out);
                    }
                    None => self.messenger.stash_early(msg),
                }
            }
            None => {
                // forwarding mode: local trace, then the address-book hint
                match self.manager.trace(&target) {
                    Some(Some(next)) => {
                        let next = next.to_string();
                        self.send_post(msg, &next, now, out);
                    }
                    Some(None) => self.messenger.stash_early(msg),
                    None => match hint {
                        Some(h) if h != self.host => {
                            let h = h.to_string();
                            self.send_post(msg, &h, now, out);
                        }
                        _ => self.messenger.stash_early(msg),
                    },
                }
            }
        }
    }

    /// §4.2 delivery cases at a receiving messenger.
    fn deliver_or_chase(
        &mut self,
        mut msg: Message,
        origin_host: String,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let target = msg.to.clone();
        if self.monitor.get(&target).is_some() {
            // case 1: resident — deliver and confirm
            let sender = msg.from.clone();
            let seq = msg.seq;
            match &msg.payload {
                Payload::System(verb) => {
                    let verb = verb.clone();
                    self.apply_control(&target, &verb, now, out);
                }
                Payload::User(_) => {
                    if let Some(e) = self.monitor.get_mut(&target) {
                        e.mailbox.deposit(msg);
                    }
                }
            }
            if origin_host == self.host {
                self.messenger
                    .record_confirmation(sender, seq, &self.host.clone(), now);
            } else {
                out.push(Output::Send {
                    to: origin_host,
                    wire: Wire::PostConfirm {
                        sender,
                        seq,
                        target,
                        delivered_at: self.host.clone(),
                    },
                });
            }
            return;
        }
        // not resident — but if its landing was granted here and the
        // transfer is still in flight, wait for it (case 3) rather
        // than chasing a stale trail
        if self.expected_arrivals.contains_key(&target) {
            self.messenger.stash_early(msg);
            return;
        }
        match self.manager.trace(&target) {
            Some(Some(next)) => {
                // case 2: it moved on — forward the chase
                if self.messenger.may_forward(&msg) {
                    msg.forward_hops += 1;
                    let next = next.to_string();
                    out.push(Output::Send {
                        to: next,
                        wire: Wire::Post { msg, origin_host },
                    });
                } else {
                    self.logf(now, format!("undeliverable message to {target} (cap)"));
                }
            }
            _ => {
                // case 3: no record — it may not have arrived yet
                self.messenger.stash_early(msg);
            }
        }
    }

    // =====================================================================
    // Control (system messages)
    // =====================================================================

    fn apply_control(
        &mut self,
        id: &NapletId,
        verb: &ControlVerb,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        match verb {
            ControlVerb::Terminate => {
                self.destroy_resident(id, "terminated by control message", now, out);
            }
            ControlVerb::Suspend => {
                if self.monitor.suspend(id) {
                    self.logf(now, format!("SUSPEND {id}"));
                }
            }
            ControlVerb::Resume => {
                if self.monitor.resume(id) {
                    self.logf(now, format!("RESUME {id}"));
                    out.push(Output::Schedule {
                        delay_ms: 0,
                        event: LocalEvent::VisitDone { id: id.clone() },
                    });
                }
            }
            ControlVerb::Callback | ControlVerb::Custom(_) => {
                // cast the interrupt: the creator-defined on_interrupt
                let Some(mut entry) = self.monitor.take(id) else {
                    return;
                };
                if let AgentKind::Native = entry.naplet.kind() {
                    let mut effects = Effects::default();
                    let res = self.codebase.instantiate(entry.naplet.codebase()).and_then(
                        |mut behavior| {
                            let mut ctx = RunCtx::new(
                                &self.host,
                                now,
                                &mut entry.naplet,
                                &mut entry.mailbox,
                                &mut self.resources,
                                &self.security,
                                &mut effects,
                            );
                            behavior.on_interrupt(&mut ctx, verb)
                        },
                    );
                    let nid = entry.naplet.id().clone();
                    self.apply_effects(&nid, &mut entry, effects, now, out);
                    if let Err(e) = res {
                        self.logf(now, format!("on_interrupt failed for {id}: {e}"));
                    }
                }
                self.monitor.restore(entry);
            }
        }
    }

    // =====================================================================
    // Destruction / completion
    // =====================================================================

    fn destroy_resident(
        &mut self,
        id: &NapletId,
        reason: &str,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let Some(mut entry) = self.monitor.evict(id) else {
            return;
        };
        self.resources.release(id);
        // on_destroy hook for native agents
        if let AgentKind::Native = entry.naplet.kind() {
            if let Ok(mut behavior) = self.codebase.instantiate(entry.naplet.codebase()) {
                let mut effects = Effects::default();
                {
                    let mut ctx = RunCtx::new(
                        &self.host,
                        now,
                        &mut entry.naplet,
                        &mut entry.mailbox,
                        &mut self.resources,
                        &self.security,
                        &mut effects,
                    );
                    let _ = behavior.on_destroy(&mut ctx);
                }
                let nid = entry.naplet.id().clone();
                self.dispatch_effects(&nid.clone(), &entry.naplet, effects, now, out);
            }
        }
        self.logf(now, format!("DESTROY {id}: {reason}"));
        self.notify_home(id, NapletStatus::Destroyed, reason, now, out);
        self.dir_remove(id, out);
    }

    fn finish_journey(
        &mut self,
        naplet: Naplet,
        now: Millis,
        detail: &str,
        normal: bool,
        out: &mut Vec<Output>,
    ) {
        let id = naplet.id().clone();
        self.logf(now, format!("COMPLETE {id}"));
        let status = if normal {
            NapletStatus::Completed
        } else {
            NapletStatus::Destroyed
        };
        self.notify_home(&id, status, detail, now, out);
        self.dir_remove(&id, out);
        self.monitor.evict(&id);
        self.resources.release(&id);
    }

    fn notify_home(
        &mut self,
        id: &NapletId,
        status: NapletStatus,
        detail: &str,
        now: Millis,
        out: &mut Vec<Output>,
    ) {
        let home = id.home().to_string();
        let wire = Wire::Notify {
            id: id.clone(),
            status,
            host: self.host.clone(),
            detail: detail.to_string(),
        };
        if home == self.host {
            if let Wire::Notify {
                id, status, host, ..
            } = &wire
            {
                self.manager.update_status(id, *status, host, now);
            }
        } else {
            out.push(Output::Send { to: home, wire });
        }
    }

    fn dir_remove(&mut self, id: &NapletId, out: &mut Vec<Output>) {
        match self.directory_holder(id) {
            Some(holder) if holder == self.host => {
                self.directory.remove(id);
            }
            Some(holder) => {
                out.push(Output::Send {
                    to: holder,
                    wire: Wire::DirRemove { id: id.clone() },
                });
            }
            None => {}
        }
    }
}

/// Which way execution left the visit.
enum ExecOutcome {
    /// Business logic for this visit finished; itinerary continues.
    Continue,
    /// A VM program ran to completion: the agent is done regardless of
    /// remaining itinerary.
    ProgramDone,
}

/// Effects collected from behaviour execution, applied by the server
/// afterwards (keeps the context borrow-free of server internals).
#[derive(Default)]
struct Effects {
    /// (target, location hint, body)
    posts: Vec<(NapletId, String, Value)>,
    reports: Vec<Value>,
    logs: Vec<String>,
}

/// The transient run context handed to behaviours (paper §2.1: set by
/// the resource manager on arrival; never serialized).
struct RunCtx<'a> {
    host: &'a str,
    now: Millis,
    naplet: &'a mut Naplet,
    mailbox: &'a mut Mailbox,
    resources: &'a mut ResourceManager,
    security: &'a SecurityManager,
    effects: &'a mut Effects,
}

impl<'a> RunCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        host: &'a str,
        now: Millis,
        naplet: &'a mut Naplet,
        mailbox: &'a mut Mailbox,
        resources: &'a mut ResourceManager,
        security: &'a SecurityManager,
        effects: &'a mut Effects,
    ) -> RunCtx<'a> {
        RunCtx {
            host,
            now,
            naplet,
            mailbox,
            resources,
            security,
            effects,
        }
    }
}

impl NapletContext for RunCtx<'_> {
    fn host_name(&self) -> &str {
        self.host
    }
    fn naplet_id(&self) -> &NapletId {
        self.naplet.id()
    }
    fn state(&mut self) -> &mut naplet_core::state::NapletState {
        &mut self.naplet.state
    }
    fn address_book(&mut self) -> &mut naplet_core::address_book::AddressBook {
        &mut self.naplet.address_book
    }
    fn post_message(&mut self, to: &NapletId, body: Value) -> Result<()> {
        self.security
            .check(self.naplet.credential(), Permission::Messaging)?;
        let entry =
            self.naplet.address_book.lookup(to).ok_or_else(|| {
                NapletError::Communication(format!("peer {to} not in address book"))
            })?;
        self.effects
            .posts
            .push((to.clone(), entry.server.clone(), body));
        Ok(())
    }
    fn get_message(&mut self) -> Result<Option<Message>> {
        Ok(self.mailbox.take())
    }
    fn call_service(&mut self, name: &str, args: Value) -> Result<Value> {
        self.resources
            .call_open(self.security, self.naplet.credential(), name, args)
    }
    fn channel_exchange(&mut self, service: &str, request: Value) -> Result<Value> {
        let id = self.naplet.id().clone();
        let cred = self.naplet.credential().clone();
        self.resources
            .channel_exchange(self.security, &cred, &id, service, request)
    }
    fn report_home(&mut self, body: Value) -> Result<()> {
        self.effects.reports.push(body);
        Ok(())
    }
    fn now(&self) -> Millis {
        self.now
    }
    fn log(&mut self, line: &str) {
        self.effects.logs.push(line.to_string());
    }
}

/// Execute one itinerary post-action.
fn run_action(
    registry: &ActionRegistry,
    action: &ActionSpec,
    ctx: &mut dyn NapletContext,
) -> Result<()> {
    match action {
        ActionSpec::ReportHome => {
            // report the naplet's whole public+private view of state:
            // the conventional ResultReport sends gathered data home
            let mut snapshot = std::collections::BTreeMap::new();
            let keys: Vec<String> = ctx.state().keys().map(str::to_string).collect();
            for k in keys {
                snapshot.insert(k.clone(), ctx.state().get(&k));
            }
            ctx.report_home(Value::Map(snapshot))
        }
        ActionSpec::DataComm => {
            // the paper's collective operator: post own latest data to
            // every peer in the address book, then drain whatever has
            // already arrived into state["datacomm.received"]
            let payload = ctx.state().get("datacomm");
            let peers: Vec<NapletId> = ctx
                .address_book()
                .iter()
                .map(|e| e.naplet_id.clone())
                .collect();
            for peer in peers {
                // ignore transient failures, as the paper's example does
                let _ = ctx.post_message(&peer, payload.clone());
            }
            let mut received = match ctx.state().get("datacomm.received") {
                Value::List(l) => l,
                _ => Vec::new(),
            };
            while let Some(m) = ctx.get_message()? {
                if let Payload::User(v) = m.payload {
                    received.push(v);
                }
            }
            ctx.state().set("datacomm.received", Value::List(received));
            Ok(())
        }
        ActionSpec::Named(name) => registry.get(name)?.operate(ctx),
    }
}
