//! The discrete-event simulation runtime.
//!
//! [`SimRuntime`] drives a whole naplet space — many [`NapletServer`]s
//! over one metered [`Fabric`] — in deterministic virtual time. It is
//! the measurement harness for every experiment: exact bytes from the
//! fabric stats, exact completion times from the event clock.
//!
//! Besides servers, plain **stations** can join the fabric: hosts that
//! collect raw wire values instead of running a naplet server. The
//! centralized SNMP management station of the §6 baseline is a station.

use std::collections::{HashMap, HashSet};

use naplet_core::clock::Millis;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::message::Payload;
use naplet_core::naplet::Naplet;
use naplet_core::tracectx::{CtxTable, TraceCtx};
use naplet_core::value::Value;
use naplet_net::{EventQueue, Fabric, TrafficClass};
use naplet_obs::{ObsSink, StallAlert, TraceKind, WatchdogConfig};

use crate::events::{Input, LocalEvent, Output, Wire};
use crate::server::{NapletServer, ServerConfig};
use crate::status::StatusReport;

/// Approximate frame overhead on top of the codec-encoded payload
/// (length prefix, class tag, host names) — mirrors
/// `naplet_net::Frame::wire_len`.
fn frame_bytes(from: &str, to: &str, payload_len: usize) -> u64 {
    (4 + 1 + 2 + from.len() + 2 + to.len() + payload_len) as u64
}

#[allow(clippy::large_enum_variant)] // Deliver carries whole agents
#[derive(Debug)]
enum SimEvent {
    Deliver {
        from: String,
        to: String,
        wire: Wire,
        /// Trace context the frame carried (absent while tracing and
        /// the flight recorder are both off).
        ctx: Option<TraceCtx>,
    },
    Local {
        host: String,
        event: LocalEvent,
        /// The host's crash epoch when the event was scheduled. A
        /// crash bumps the epoch, so timers armed by the dead process
        /// are discarded on delivery — volatile state dies with it.
        epoch: u64,
    },
    /// Crash `host` now: wipe its volatile state (only the journal
    /// survives), optionally scheduling a restart.
    Crash {
        host: String,
        restart_at: Option<u64>,
    },
    /// Restart a crashed `host`: rebuild the server from its original
    /// configuration and replay its journal.
    Restart { host: String },
    /// Periodic journey-stall / server-health sweep. At most one is in
    /// flight; it re-arms itself only while the watchdog still tracks
    /// an unalerted journey, so a drained space reaches quiescence.
    WatchdogTick,
}

/// The deterministic multi-server driver.
pub struct SimRuntime {
    fabric: Fabric,
    queue: EventQueue<SimEvent>,
    servers: HashMap<String, NapletServer>,
    stations: HashMap<String, Vec<(String, Wire)>>,
    /// Original configurations, kept so a crashed server can be
    /// rebuilt exactly as it was born.
    configs: HashMap<String, ServerConfig>,
    /// Per-host crash epoch (bumped on every crash).
    crash_epoch: HashMap<String, u64>,
    /// Hosts currently down: frames to them are dropped on delivery.
    crashed: HashSet<String>,
    /// Wire values that could not be delivered (dropped by the fabric).
    pub dropped: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Shared observability sink handed to every server; runtime-level
    /// wire/crash events are recorded here too.
    obs: ObsSink,
    /// Baseline cost profile: size outgoing wires by fully encoding
    /// them (the pre-optimization behaviour) instead of the counting
    /// serializer. Paired with the heap event queue by
    /// [`SimRuntime::with_baseline_profile`] so the bench suite can
    /// A/B the hot-path work; results are byte-for-byte identical.
    baseline_sizing: bool,
    /// True while a [`SimEvent::WatchdogTick`] sits in the queue.
    tick_pending: bool,
    /// Stall alerts raised by the watchdog, in raise order.
    alerts: Vec<StallAlert>,
    /// Per-journey wire trace contexts (the sim's single table plays
    /// every node's; seq/hop advancement is identical to a cluster of
    /// per-node tables because delivery adoption is synchronous here).
    ctxs: CtxTable,
}

impl SimRuntime {
    /// New runtime over a fabric.
    pub fn new(fabric: Fabric) -> SimRuntime {
        SimRuntime {
            fabric,
            queue: EventQueue::new(),
            servers: HashMap::new(),
            stations: HashMap::new(),
            configs: HashMap::new(),
            crash_epoch: HashMap::new(),
            crashed: HashSet::new(),
            dropped: 0,
            events_processed: 0,
            obs: ObsSink::default(),
            baseline_sizing: false,
            tick_pending: false,
            alerts: Vec::new(),
            ctxs: CtxTable::new(),
        }
    }

    /// New runtime with the pre-optimization cost profile: the legacy
    /// binary-heap event queue, allocation-based wire sizing, and deep
    /// agent clones per hop (copy-on-write handoff disabled on every
    /// server added afterwards). Exists so the bench suite can measure
    /// the optimized paths against their originals in one process;
    /// every observable output (events, traces, byte meters) is
    /// identical.
    pub fn with_baseline_profile(fabric: Fabric) -> SimRuntime {
        let mut rt = SimRuntime::new(fabric);
        rt.queue = EventQueue::with_heap_backend();
        rt.baseline_sizing = true;
        rt
    }

    /// The fabric (stats, failure injection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The shared observability sink (tracer + metrics).
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// Turn on journey tracing for the whole space. Metrics are always
    /// collected; the trace-event stream is opt-in.
    pub fn enable_tracing(&mut self) {
        self.obs.enable_tracing();
    }

    /// Arm the journey watchdog for the whole space. Progress is fed
    /// from the trace-event stream (even with tracing off); a sweep
    /// runs every `config.tick_ms` of virtual time while any unalerted
    /// journey is tracked, so a drained space still quiesces. Alerts
    /// land in [`SimRuntime::alerts`], the metrics registry, and (when
    /// tracing is on) the trace stream.
    pub fn enable_watchdog(&mut self, config: WatchdogConfig) {
        self.obs.enable_watchdog(config);
        self.maybe_schedule_tick();
    }

    /// Stall alerts raised so far, in raise order (deterministic for a
    /// seeded run).
    pub fn alerts(&self) -> &[StallAlert] {
        &self.alerts
    }

    /// Assemble a [`StatusReport`] from every live server, sorted by
    /// host — the local (in-process) counterpart of the wire-level
    /// status protocol, and what `figures status` renders.
    pub fn status_reports(&self) -> Vec<StatusReport> {
        let now = self.now();
        self.server_hosts()
            .iter()
            .filter(|h| !self.crashed.contains(*h))
            .filter_map(|h| self.servers.get(h).map(|s| s.status_report(now)))
            .collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> Millis {
        Millis(self.queue.now())
    }

    /// Install a naplet server for `config.host`.
    pub fn add_server(&mut self, config: ServerConfig) -> &mut NapletServer {
        let host = config.host.clone();
        self.fabric.add_host(&host);
        self.configs
            .entry(host.clone())
            .or_insert_with(|| config.clone());
        let obs = self.obs.clone();
        let cow = !self.baseline_sizing;
        let epoch = self.crash_epoch.get(&host).copied().unwrap_or(0);
        let queue = &mut self.queue;
        self.servers.entry(host.clone()).or_insert_with(|| {
            let mut server = NapletServer::new(config);
            server.set_obs(obs);
            server.set_cow_handoff(cow);
            // a directory replica needs its consensus clock running
            // before any input arrives, or no leader is ever elected
            if let Some(tick_ms) = server.arm_initial_repl_tick() {
                queue.push_after(
                    tick_ms,
                    SimEvent::Local {
                        host,
                        event: LocalEvent::ReplTick,
                        epoch,
                    },
                );
            }
            server
        })
    }

    /// Register a plain station host that collects wire values. The
    /// inbox is pre-sized: stations (e.g. the SNMP management station)
    /// absorb bursts of whole-space polls, so growing from empty one
    /// doubling at a time showed up in the storm benchmarks.
    pub fn add_station(&mut self, name: &str) {
        self.fabric.add_host(name);
        self.stations
            .entry(name.to_string())
            .or_insert_with(|| Vec::with_capacity(256));
    }

    /// Access a server.
    pub fn server(&self, host: &str) -> Option<&NapletServer> {
        self.servers.get(host)
    }

    /// Mutable access to a server.
    pub fn server_mut(&mut self, host: &str) -> Option<&mut NapletServer> {
        self.servers.get_mut(host)
    }

    /// All server host names (sorted).
    pub fn server_hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.servers.keys().cloned().collect();
        v.sort();
        v
    }

    /// Launch a naplet from its home server.
    pub fn launch(&mut self, naplet: Naplet) -> Result<()> {
        let home = naplet.home().to_string();
        let now = self.now();
        let server = self
            .servers
            .get_mut(&home)
            .ok_or_else(|| NapletError::NotFound(format!("no server at home `{home}`")))?;
        let outputs = server.launch(naplet, now);
        self.process_outputs(&home, outputs);
        Ok(())
    }

    /// Post an owner/console message (e.g. a control verb) from
    /// `owner_host`'s server to a naplet.
    pub fn owner_post(&mut self, owner_host: &str, to: NapletId, payload: Payload) -> Result<()> {
        let now = self.now();
        let server = self
            .servers
            .get_mut(owner_host)
            .ok_or_else(|| NapletError::NotFound(format!("no server at `{owner_host}`")))?;
        let outputs = server.owner_post(to, payload, now);
        self.process_outputs(owner_host, outputs);
        Ok(())
    }

    /// Send a raw wire value from a station (e.g. an SNMP request from
    /// the management station baseline). Metering and delay follow the
    /// wire's traffic class.
    pub fn station_send(&mut self, from: &str, to: &str, wire: Wire) -> Result<()> {
        self.schedule_wire(from, to, wire);
        Ok(())
    }

    /// Drain everything a station has received.
    pub fn station_drain(&mut self, name: &str) -> Vec<(String, Wire)> {
        self.stations
            .get_mut(name)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Run until no events remain or `max_events` were processed.
    /// Returns the number of events processed in this call.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some((_, ev)) = self.queue.pop() else {
                break;
            };
            processed += 1;
            self.events_processed += 1;
            self.dispatch(ev);
        }
        processed
    }

    /// Run until virtual time reaches `until` (events after it stay
    /// queued) or quiescence.
    pub fn run_until(&mut self, until: Millis) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > until.0 {
                break;
            }
            let Some((_, ev)) = self.queue.pop() else {
                break;
            };
            processed += 1;
            self.events_processed += 1;
            self.dispatch(ev);
        }
        processed
    }

    /// Schedule a crash of `host` at virtual time `at_ms`. When
    /// `restart_after_ms` is `Some(d)`, the host restarts (and replays
    /// its journal) `d` ms after the crash; `None` means it never
    /// comes back.
    pub fn schedule_crash(&mut self, host: &str, at_ms: u64, restart_after_ms: Option<u64>) {
        let restart_at = restart_after_ms.map(|d| at_ms.saturating_add(d));
        self.queue.push_at(
            at_ms,
            SimEvent::Crash {
                host: host.to_string(),
                restart_at,
            },
        );
    }

    /// Crash `host` immediately (between two events — handler
    /// invocations are atomic, so this is the only place a real crash
    /// can fall in this model).
    pub fn crash_server(&mut self, host: &str, restart_after_ms: Option<u64>) {
        let restart_at = restart_after_ms.map(|d| self.queue.now().saturating_add(d));
        self.perform_crash(host, restart_at);
    }

    /// Process exactly one queued event; returns the host it targeted
    /// (`None` when the queue is empty or the event had no single
    /// target). Lets tests crash a server at a precise event index.
    pub fn step(&mut self) -> Option<String> {
        let (_, ev) = self.queue.pop()?;
        self.events_processed += 1;
        let target = match &ev {
            SimEvent::Deliver { to, .. } => Some(to.clone()),
            SimEvent::Local { host, .. } => Some(host.clone()),
            SimEvent::Crash { host, .. } | SimEvent::Restart { host } => Some(host.clone()),
            SimEvent::WatchdogTick => None,
        };
        self.dispatch(ev);
        target
    }

    /// The host the next queued event targets, without processing it.
    pub fn peek_target(&self) -> Option<String> {
        self.queue.peek().and_then(|ev| match ev {
            SimEvent::Deliver { to, .. } => Some(to.clone()),
            SimEvent::Local { host, .. } => Some(host.clone()),
            SimEvent::Crash { host, .. } | SimEvent::Restart { host } => Some(host.clone()),
            SimEvent::WatchdogTick => None,
        })
    }

    /// Aggregated recovery statistics over every server.
    pub fn recovery_totals(&self) -> crate::journal::RecoveryStats {
        let mut total = crate::journal::RecoveryStats::default();
        for server in self.servers.values() {
            total.merge(&server.recovery_stats());
        }
        total
    }

    /// Collected reports at a home server, drained.
    pub fn drain_reports(&mut self, home: &str) -> Vec<(NapletId, Value)> {
        self.servers
            .get_mut(home)
            .map(|s| std::mem::take(&mut s.reports))
            .unwrap_or_default()
    }

    fn dispatch(&mut self, ev: SimEvent) {
        let now = self.now();
        // keep the fabric's fault schedules (down-windows, loss bursts)
        // in step with virtual time
        self.fabric.set_now(now.0);
        match ev {
            SimEvent::Deliver {
                from,
                to,
                wire,
                ctx,
            } => {
                if self.crashed.contains(&to) {
                    // the frame was already in flight when the host went
                    // down; it is lost at the dead NIC
                    self.dropped += 1;
                    self.fabric.stats().record_drop();
                    self.obs.metrics.incr("wire.dropped", 1);
                    self.obs
                        .emit_ctx(now, &to, wire.subject(), ctx.as_ref(), || {
                            TraceKind::WireDrop {
                                to: to.clone(),
                                label: wire.label().to_string(),
                            }
                        });
                    return;
                }
                if let Some(ctx) = &ctx {
                    self.ctxs.adopt(ctx);
                }
                self.obs
                    .emit_ctx(now, &to, wire.subject(), ctx.as_ref(), || {
                        TraceKind::WireRecv {
                            from: from.clone(),
                            label: wire.label().to_string(),
                        }
                    });
                if let Some(server) = self.servers.get_mut(&to) {
                    let outputs = server.handle(now, Input::Wire { from, wire });
                    self.process_outputs(&to, outputs);
                } else if let Some(inbox) = self.stations.get_mut(&to) {
                    inbox.push((from, wire));
                }
                // frames to unknown hosts were already rejected by the
                // fabric at send time
            }
            SimEvent::Local { host, event, epoch } => {
                if self.crashed.contains(&host)
                    || epoch != self.crash_epoch.get(&host).copied().unwrap_or(0)
                {
                    // timers armed by a process that has since crashed:
                    // volatile state died with it
                    return;
                }
                if let Some(server) = self.servers.get_mut(&host) {
                    let outputs = server.handle(now, Input::Local(event));
                    self.process_outputs(&host, outputs);
                }
            }
            SimEvent::Crash { host, restart_at } => {
                self.perform_crash(&host, restart_at);
            }
            SimEvent::Restart { host } => {
                self.perform_restart(&host);
            }
            SimEvent::WatchdogTick => {
                self.tick_pending = false;
                self.watchdog_sweep(now);
            }
        }
        self.maybe_schedule_tick();
    }

    /// Keep exactly one watchdog tick queued while any unalerted
    /// journey is tracked. Called after every dispatched event (and on
    /// enable), so ticks stop — and the sim drains — once every
    /// journey has finished or already alerted.
    fn maybe_schedule_tick(&mut self) {
        if self.tick_pending || !self.obs.watchdog.enabled() || !self.obs.watchdog.wants_tick() {
            return;
        }
        self.queue
            .push_after(self.obs.watchdog.config().tick_ms, SimEvent::WatchdogTick);
        self.tick_pending = true;
    }

    /// One watchdog pass: journey-stall checks, then a server-health
    /// sweep (mailbox backlog, journal lag) over live servers in
    /// sorted-host order — both deterministic in virtual time.
    fn watchdog_sweep(&mut self, now: Millis) {
        let config = self.obs.watchdog.config();
        let alerts = self.obs.watchdog.check(now);
        for alert in &alerts {
            self.obs.metrics.incr("alerts.raised", 1);
            self.obs.metrics.incr(
                if alert.orphan {
                    "alerts.orphan"
                } else {
                    "alerts.stalled"
                },
                1,
            );
            self.obs.push_event(alert.event.clone());
            if config.early_redispatch {
                // pull the home server's lease check forward: the
                // watchdog suspects an orphan before the lease window
                // would have noticed on its own
                if let Ok(id) = alert.naplet.parse::<NapletId>() {
                    if let Some(server) = self.servers.get_mut(&alert.home) {
                        let outputs =
                            server.handle(now, Input::Local(LocalEvent::LeaseCheck { id }));
                        let home = alert.home.clone();
                        self.process_outputs(&home, outputs);
                    }
                }
            }
        }
        self.alerts.extend(alerts);
        for host in self.server_hosts() {
            if self.crashed.contains(&host) {
                continue;
            }
            let Some(server) = self.servers.get(&host) else {
                continue;
            };
            let report = server.status_report(now);
            let depth = report.mailbox_depth + report.special_mailbox_depth;
            if depth >= config.mailbox_threshold {
                let kind = TraceKind::MailboxBacklog {
                    depth,
                    threshold: config.mailbox_threshold,
                };
                if let Some(ev) = self.obs.watchdog.raise_server_alert(now, &host, kind) {
                    self.obs.metrics.incr("alerts.raised", 1);
                    self.obs.metrics.incr("alerts.mailbox", 1);
                    self.obs.push_event(ev);
                }
            }
            if report.journal_entries >= config.journal_threshold {
                let kind = TraceKind::JournalLagHigh {
                    entries: report.journal_entries,
                    bytes: report.journal_bytes,
                    threshold: config.journal_threshold,
                };
                if let Some(ev) = self.obs.watchdog.raise_server_alert(now, &host, kind) {
                    self.obs.metrics.incr("alerts.raised", 1);
                    self.obs.metrics.incr("alerts.journal", 1);
                    self.obs.push_event(ev);
                }
            }
        }
    }

    /// Crash `host` right now: bump its crash epoch (voiding every
    /// pending timer), replace the server with a cold shell holding
    /// only the journal, and open a fabric outage window until
    /// `restart_at` (forever when `None`).
    fn perform_crash(&mut self, host: &str, restart_at: Option<u64>) {
        let Some(server) = self.servers.get_mut(host) else {
            return;
        };
        let now = self.queue.now();
        *self.crash_epoch.entry(host.to_string()).or_insert(0) += 1;
        self.crashed.insert(host.to_string());
        self.obs.metrics.incr("crashes", 1);
        self.obs.emit(Millis(now), host, None, || TraceKind::Crash);
        self.fabric
            .schedule_crash(host, now, restart_at.unwrap_or(u64::MAX));
        // only the journal survives the crash
        let journal = server.take_journal();
        let config =
            self.configs.get(host).cloned().unwrap_or_else(|| {
                ServerConfig::open(host, crate::server::LocationMode::HomeManagers)
            });
        let mut fresh = NapletServer::new(config);
        fresh.set_obs(self.obs.clone());
        fresh.set_cow_handoff(!self.baseline_sizing);
        fresh.set_journal(journal);
        self.servers.insert(host.to_string(), fresh);
        if let Some(at) = restart_at {
            self.queue.push_at(
                at,
                SimEvent::Restart {
                    host: host.to_string(),
                },
            );
        }
    }

    /// Bring a crashed `host` back: mark it reachable again and run
    /// recovery replay over its journal.
    fn perform_restart(&mut self, host: &str) {
        if !self.crashed.remove(host) {
            return;
        }
        self.fabric.stats().record_recovery();
        let now = self.now();
        let Some(server) = self.servers.get_mut(host) else {
            return;
        };
        let outputs = server.recover(now);
        self.process_outputs(host, outputs);
    }

    fn process_outputs(&mut self, host: &str, outputs: Vec<Output>) {
        let epoch = self.crash_epoch.get(host).copied().unwrap_or(0);
        for output in outputs {
            match output {
                Output::Send { to, wire } => {
                    self.schedule_wire(host, &to, wire);
                }
                Output::Schedule { delay_ms, event } => {
                    self.queue.push_after(
                        delay_ms,
                        SimEvent::Local {
                            host: host.to_string(),
                            event,
                            epoch,
                        },
                    );
                }
                Output::FetchCode { from, bytes, id } => {
                    let delay = if bytes == 0 || from == host {
                        Some(0)
                    } else {
                        self.fabric
                            .transfer(&from, host, TrafficClass::Code, bytes)
                            .unwrap_or(Some(0))
                    };
                    let event = LocalEvent::CodeReady { id };
                    match delay {
                        Some(d) => self.queue.push_after(
                            d,
                            SimEvent::Local {
                                host: host.to_string(),
                                event,
                                epoch,
                            },
                        ),
                        None => {
                            // fetch lost: retry optimistic immediate
                            // delivery so the agent is not stranded
                            self.dropped += 1;
                            self.queue.push_after(
                                1,
                                SimEvent::Local {
                                    host: host.to_string(),
                                    event,
                                    epoch,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn schedule_wire(&mut self, from: &str, to: &str, wire: Wire) {
        // byte metering: the counting serializer walks the wire value
        // without materializing any bytes; the baseline profile pays
        // the original full-encode-then-measure cost
        let payload_len = if self.baseline_sizing {
            naplet_core::codec::to_bytes(&wire)
                .map(|b| b.len())
                .unwrap_or(0)
        } else {
            naplet_core::codec::encoded_size(&wire).unwrap_or(0) as usize
        };
        let bytes = frame_bytes(from, to, payload_len);
        let class = wire.traffic_class();
        let now = Millis(self.queue.now());
        self.fabric.set_now(self.queue.now());
        if wire.retry_attempt() > 1 {
            self.fabric.stats().record_retransmit();
        }
        // the context table is consulted only while a causal consumer
        // (tracer or flight recorder) is on, so the tracing-off hot
        // path allocates nothing extra
        let ctx = if self.obs.ctx_enabled() {
            wire.subject().map(|id| {
                let new_hop = matches!(&wire, Wire::Transfer(env) if env.attempt == 1);
                self.ctxs.on_send(&id.to_string(), from, new_hop)
            })
        } else {
            None
        };
        self.obs.metrics.incr("wire.sent", 1);
        self.obs
            .emit_ctx(now, from, wire.subject(), ctx.as_ref(), || {
                TraceKind::WireSend {
                    to: to.to_string(),
                    label: wire.label().to_string(),
                    class: class.label().to_string(),
                    bytes,
                    attempt: wire.retry_attempt(),
                }
            });
        match self.fabric.transfer(from, to, class, bytes) {
            Ok(Some(delay)) => {
                self.queue.push_after(
                    delay,
                    SimEvent::Deliver {
                        from: from.to_string(),
                        to: to.to_string(),
                        wire,
                        ctx,
                    },
                );
            }
            Ok(None) | Err(_) => {
                self.dropped += 1;
                self.obs.metrics.incr("wire.dropped", 1);
                self.obs
                    .emit_ctx(now, from, wire.subject(), ctx.as_ref(), || {
                        TraceKind::WireDrop {
                            to: to.to_string(),
                            label: wire.label().to_string(),
                        }
                    });
            }
        }
    }
}
