//! NapletSecurityManager (paper §5.1).
//!
//! "A security policy is an access-control matrix that says what
//! system resources can be accessed, in what fashion, and under what
//! circumstances. Specifically, it maps a set of characteristic
//! features of naplets to a set of access permissions granted to the
//! naplets. System administrators can configure the security policy
//! according to the service requirements."
//!
//! [`Policy`] is that matrix: an ordered rule list matched against a
//! naplet's credential (principal and attribute claims); the first
//! matching rule's grant set applies, with a configurable default. The
//! Navigator consults it for LAUNCH/LANDING, the monitor for CLONE,
//! the ResourceManager for privileged service access.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use naplet_core::credential::{Credential, SigningKey};
use naplet_core::error::{NapletError, Result};

/// Permissions a policy can grant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Permission {
    /// Dispatch a naplet from this server.
    Launch,
    /// Accept a naplet onto this server.
    Landing,
    /// Spawn clones on this server (Par itineraries).
    Clone,
    /// Send inter-naplet messages through this server's Messenger.
    Messaging,
    /// Call the named open service ("*" = any open service).
    OpenService(String),
    /// Obtain a service channel to the named privileged service.
    PrivilegedService(String),
}

/// Which naplets a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matcher {
    /// Match naplets signed by this principal (None = any).
    pub principal: Option<String>,
    /// Attribute claims that must all be present with these values.
    pub attributes: Vec<(String, String)>,
}

impl Matcher {
    /// Match any credential.
    pub fn any() -> Matcher {
        Matcher {
            principal: None,
            attributes: vec![],
        }
    }

    /// Match a specific principal.
    pub fn principal(name: &str) -> Matcher {
        Matcher {
            principal: Some(name.to_string()),
            attributes: vec![],
        }
    }

    /// Require an attribute claim.
    pub fn with_attribute(mut self, key: &str, value: &str) -> Matcher {
        self.attributes.push((key.to_string(), value.to_string()));
        self
    }

    fn matches(&self, cred: &Credential) -> bool {
        if let Some(p) = &self.principal {
            if p != &cred.principal {
                return false;
            }
        }
        self.attributes
            .iter()
            .all(|(k, v)| cred.attribute(k) == Some(v.as_str()))
    }
}

/// One access-control rule: matcher → grant set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Which naplets this rule covers.
    pub matcher: Matcher,
    /// Permissions granted when it matches.
    pub grants: BTreeSet<Permission>,
}

/// The access-control matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    rules: Vec<Rule>,
    /// Granted when no rule matches.
    default_grants: BTreeSet<Permission>,
}

impl Policy {
    /// A policy that grants nothing by default.
    pub fn deny_all() -> Policy {
        Policy {
            rules: vec![],
            default_grants: BTreeSet::new(),
        }
    }

    /// A permissive policy granting every framework permission and all
    /// services — the paper's first release behaviour ("no special
    /// security managers … many security features left open").
    pub fn allow_all() -> Policy {
        let mut grants = BTreeSet::new();
        grants.insert(Permission::Launch);
        grants.insert(Permission::Landing);
        grants.insert(Permission::Clone);
        grants.insert(Permission::Messaging);
        grants.insert(Permission::OpenService("*".into()));
        grants.insert(Permission::PrivilegedService("*".into()));
        Policy {
            rules: vec![],
            default_grants: grants,
        }
    }

    /// Append a rule (first match wins).
    pub fn add_rule(&mut self, matcher: Matcher, grants: impl IntoIterator<Item = Permission>) {
        self.rules.push(Rule {
            matcher,
            grants: grants.into_iter().collect(),
        });
    }

    /// Grants applicable to a credential.
    fn grants_for(&self, cred: &Credential) -> &BTreeSet<Permission> {
        self.rules
            .iter()
            .find(|r| r.matcher.matches(cred))
            .map(|r| &r.grants)
            .unwrap_or(&self.default_grants)
    }

    /// Is the permission granted to this credential?
    pub fn permits(&self, cred: &Credential, perm: &Permission) -> bool {
        let grants = self.grants_for(cred);
        if grants.contains(perm) {
            return true;
        }
        // service wildcards
        match perm {
            Permission::OpenService(_) => grants.contains(&Permission::OpenService("*".into())),
            Permission::PrivilegedService(_) => {
                grants.contains(&Permission::PrivilegedService("*".into()))
            }
            _ => false,
        }
    }
}

/// The server-side security manager: verifies credentials against
/// known principals' keys and evaluates the policy.
#[derive(Debug, Clone)]
pub struct SecurityManager {
    policy: Policy,
    /// Keys of principals this server trusts; credentials from unknown
    /// principals fail verification when `require_known_principal`.
    trusted_keys: Vec<SigningKey>,
    /// When false, unknown principals skip signature verification
    /// (open-campus mode, the paper's first release).
    require_known_principal: bool,
}

impl SecurityManager {
    /// Manager with a policy and trusted principal keys.
    pub fn new(
        policy: Policy,
        trusted_keys: Vec<SigningKey>,
        require_known_principal: bool,
    ) -> SecurityManager {
        SecurityManager {
            policy,
            trusted_keys,
            require_known_principal,
        }
    }

    /// Open manager: allow-all policy, no verification.
    pub fn open() -> SecurityManager {
        SecurityManager::new(Policy::allow_all(), vec![], false)
    }

    /// Replace the policy (dynamic reconfiguration).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// The active policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Verify a credential's signature (when the principal is known or
    /// verification is mandatory).
    pub fn verify(&self, cred: &Credential) -> Result<()> {
        match self
            .trusted_keys
            .iter()
            .find(|k| k.principal == cred.principal)
        {
            Some(key) => cred.verify(key),
            None if self.require_known_principal => Err(NapletError::SecurityDenied {
                permission: "VERIFY".into(),
                subject: format!("unknown principal `{}`", cred.principal),
            }),
            None => Ok(()),
        }
    }

    /// Verify an arriving naplet: credential signature (when the
    /// principal is known) plus the family-coverage check binding the
    /// credential to this naplet's id and codebase.
    pub fn verify_naplet(&self, naplet: &naplet_core::naplet::Naplet) -> Result<()> {
        match self
            .trusted_keys
            .iter()
            .find(|k| k.principal == naplet.credential().principal)
        {
            Some(key) => naplet.verify(key),
            None if self.require_known_principal => Err(NapletError::SecurityDenied {
                permission: "VERIFY".into(),
                subject: format!("unknown principal `{}`", naplet.credential().principal),
            }),
            None => Ok(()),
        }
    }

    /// Check a permission, returning a denial error when refused.
    pub fn check(&self, cred: &Credential, perm: Permission) -> Result<()> {
        if self.policy.permits(cred, &perm) {
            Ok(())
        } else {
            Err(NapletError::SecurityDenied {
                permission: format!("{perm:?}"),
                subject: cred.naplet_id.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::clock::Millis;
    use naplet_core::id::NapletId;

    fn key(p: &str) -> SigningKey {
        SigningKey::new(p, b"secret")
    }

    fn cred(principal: &str, attrs: Vec<(&str, &str)>) -> Credential {
        let id = NapletId::new(principal, "home", Millis(1)).unwrap();
        Credential::issue(
            &key(principal),
            id,
            "cb",
            attrs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        )
    }

    #[test]
    fn allow_all_permits_everything() {
        let p = Policy::allow_all();
        let c = cred("anyone", vec![]);
        assert!(p.permits(&c, &Permission::Launch));
        assert!(p.permits(&c, &Permission::OpenService("math".into())));
        assert!(p.permits(&c, &Permission::PrivilegedService("snmp".into())));
    }

    #[test]
    fn deny_all_refuses() {
        let p = Policy::deny_all();
        let c = cred("anyone", vec![]);
        assert!(!p.permits(&c, &Permission::Landing));
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut p = Policy::deny_all();
        p.add_rule(
            Matcher::principal("czxu"),
            [Permission::Launch, Permission::Landing],
        );
        p.add_rule(Matcher::any(), [Permission::Landing]);
        let czxu = cred("czxu", vec![]);
        let other = cred("guest", vec![]);
        assert!(p.permits(&czxu, &Permission::Launch));
        assert!(p.permits(&other, &Permission::Landing));
        assert!(!p.permits(&other, &Permission::Launch));
    }

    #[test]
    fn attribute_matching() {
        let mut p = Policy::deny_all();
        p.add_rule(
            Matcher::any().with_attribute("role", "net-mgmt"),
            [Permission::PrivilegedService(
                "serviceImpl.NetManagement".into(),
            )],
        );
        let mgmt = cred("czxu", vec![("role", "net-mgmt")]);
        let shopper = cred("czxu", vec![("role", "shopping")]);
        let svc = Permission::PrivilegedService("serviceImpl.NetManagement".into());
        assert!(p.permits(&mgmt, &svc));
        assert!(!p.permits(&shopper, &svc));
    }

    #[test]
    fn service_wildcards() {
        let mut p = Policy::deny_all();
        p.add_rule(Matcher::any(), [Permission::OpenService("*".into())]);
        let c = cred("x", vec![]);
        assert!(p.permits(&c, &Permission::OpenService("anything".into())));
        assert!(!p.permits(&c, &Permission::PrivilegedService("anything".into())));
    }

    #[test]
    fn manager_check_produces_denial_errors() {
        let mgr = SecurityManager::new(Policy::deny_all(), vec![], false);
        let c = cred("x", vec![]);
        let err = mgr.check(&c, Permission::Launch).unwrap_err();
        assert_eq!(err.kind(), "security");
    }

    #[test]
    fn verification_against_trusted_keys() {
        let mgr = SecurityManager::new(Policy::allow_all(), vec![key("czxu")], true);
        let good = cred("czxu", vec![]);
        mgr.verify(&good).unwrap();

        // forged: signed with the wrong secret
        let id = NapletId::new("czxu", "home", Millis(1)).unwrap();
        let forged = Credential::issue(
            &SigningKey::new("czxu", b"not-the-secret"),
            id,
            "cb",
            vec![],
        );
        assert!(mgr.verify(&forged).is_err());

        // unknown principal refused when verification mandatory
        let unknown = cred("mallory", vec![]);
        assert!(mgr.verify(&unknown).is_err());

        // but tolerated in open mode
        let open = SecurityManager::new(Policy::allow_all(), vec![key("czxu")], false);
        open.verify(&unknown).unwrap();
    }
}
