//! NapletDirectory (paper §2.2, §4.1).
//!
//! The optional centralized directory tracks naplet locations through
//! ARRIVAL/DEPARTURE event registration. The invariant the paper
//! derives from postponing execution until the arrival registration is
//! acknowledged: "if the latest registration about a naplet in the
//! directory is a departure from a server, the naplet must be in
//! transmission out of the server. If its latest registration is an
//! arrival at a server, the naplet can be either running in or leaving
//! the server."
//!
//! The same structure also backs the *distributed* variant where each
//! home NapletManager keeps directory entries for its own naplets.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;

/// A registered movement event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirEvent {
    /// The naplet landed at the host.
    Arrival,
    /// The naplet was dispatched out of the host.
    Departure,
}

/// Latest known record for one naplet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Host of the latest event.
    pub host: String,
    /// Arrival or departure.
    pub event: DirEvent,
    /// Registration time (directory clock).
    pub at: Millis,
}

/// The location registry.
#[derive(Debug, Default, Clone)]
pub struct NapletDirectory {
    entries: HashMap<NapletId, DirEntry>,
    /// Registrations processed (diagnostics / control-traffic checks).
    pub registrations: u64,
}

impl NapletDirectory {
    /// Empty directory.
    pub fn new() -> NapletDirectory {
        NapletDirectory::default()
    }

    /// Register an event. Stale events (older than the current entry)
    /// are ignored so out-of-order control traffic cannot rewind the
    /// directory; ties are resolved in favour of the newer registration
    /// order (arrival after departure at the same instant).
    pub fn register(&mut self, id: &NapletId, host: &str, event: DirEvent, at: Millis) {
        self.registrations += 1;
        match self.entries.get(id) {
            Some(e) if e.at > at => {} // stale
            _ => {
                self.entries.insert(
                    id.clone(),
                    DirEntry {
                        host: host.to_string(),
                        event,
                        at,
                    },
                );
            }
        }
    }

    /// Latest record for a naplet.
    pub fn lookup(&self, id: &NapletId) -> Option<&DirEntry> {
        self.entries.get(id)
    }

    /// Remove a naplet (destroyed).
    pub fn remove(&mut self, id: &NapletId) -> Option<DirEntry> {
        self.entries.remove(id)
    }

    /// All records, sorted by naplet id — the deterministic snapshot
    /// image the replicated directory ships to rejoining replicas.
    pub fn entries(&self) -> Vec<(NapletId, DirEntry)> {
        let mut out: Vec<(NapletId, DirEntry)> = self
            .entries
            .iter()
            .map(|(id, e)| (id.clone(), e.clone()))
            .collect();
        out.sort_by_key(|(id, _)| id.to_string());
        out
    }

    /// Replace the whole map with a snapshot image (replica catch-up).
    /// The registrations counter is left alone: it counts operations
    /// this replica processed, not entries it holds.
    pub fn install(&mut self, entries: Vec<(NapletId, DirEntry)>) {
        self.entries = entries.into_iter().collect();
    }

    /// Number of tracked naplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut d = NapletDirectory::new();
        assert!(d.lookup(&nid(1)).is_none());
        d.register(&nid(1), "s1", DirEvent::Arrival, Millis(10));
        let e = d.lookup(&nid(1)).unwrap();
        assert_eq!(e.host, "s1");
        assert_eq!(e.event, DirEvent::Arrival);
        assert_eq!(d.len(), 1);
        assert_eq!(d.registrations, 1);
    }

    #[test]
    fn newer_events_overwrite() {
        let mut d = NapletDirectory::new();
        d.register(&nid(1), "s1", DirEvent::Arrival, Millis(10));
        d.register(&nid(1), "s1", DirEvent::Departure, Millis(20));
        d.register(&nid(1), "s2", DirEvent::Arrival, Millis(30));
        let e = d.lookup(&nid(1)).unwrap();
        assert_eq!(e.host, "s2");
        assert_eq!(e.event, DirEvent::Arrival);
    }

    #[test]
    fn stale_events_ignored() {
        let mut d = NapletDirectory::new();
        d.register(&nid(1), "s2", DirEvent::Arrival, Millis(30));
        d.register(&nid(1), "s1", DirEvent::Departure, Millis(10)); // late
        assert_eq!(d.lookup(&nid(1)).unwrap().host, "s2");
        assert_eq!(d.registrations, 2);
    }

    #[test]
    fn same_instant_prefers_latest_registration() {
        let mut d = NapletDirectory::new();
        d.register(&nid(1), "s1", DirEvent::Departure, Millis(10));
        d.register(&nid(1), "s2", DirEvent::Arrival, Millis(10));
        assert_eq!(d.lookup(&nid(1)).unwrap().event, DirEvent::Arrival);
    }

    #[test]
    fn remove() {
        let mut d = NapletDirectory::new();
        d.register(&nid(1), "s1", DirEvent::Arrival, Millis(1));
        assert!(d.remove(&nid(1)).is_some());
        assert!(d.remove(&nid(1)).is_none());
        assert!(d.is_empty());
    }
}
