//! Service channels (paper §5.3).
//!
//! Privileged, stationary services must never be called directly by
//! alien naplets. The ResourceManager instead creates a **service
//! channel** per (naplet, service): "essentially a synchronous pipe"
//! with a `ServiceReader`/`ServiceWriter` endpoint pair on the service
//! side and a `NapletReader`/`NapletWriter` pair on the naplet side.
//!
//! [`ServiceChannel`] models exactly that: two value queues (one per
//! direction). The naplet writes requests with its writer endpoint;
//! one *activation* of the [`PrivilegedService`] consumes them through
//! [`ChannelIo`] and writes replies; the naplet then reads replies
//! until the channel is drained (the paper's read-until-EOF loop).

use std::collections::VecDeque;

use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::value::Value;

/// The service-side view of a channel during one activation:
/// `read_line` consumes naplet requests, `write_line` queues replies.
pub struct ChannelIo<'a> {
    input: &'a mut VecDeque<Value>,
    output: &'a mut VecDeque<Value>,
    /// Identity of the naplet on the other end (services may apply
    /// per-naplet logic; access control already happened at channel
    /// creation).
    pub naplet: &'a NapletId,
}

impl ChannelIo<'_> {
    /// Read the next request line, if any.
    pub fn read_line(&mut self) -> Option<Value> {
        self.input.pop_front()
    }

    /// Write one reply line.
    pub fn write_line(&mut self, v: Value) {
        self.output.push_back(v);
    }
}

/// A stationary privileged service (the paper's `PrivilegedService`
/// base class, e.g. `NetManagement`).
pub trait PrivilegedService: Send + Sync {
    /// Handle one activation: consume pending requests, produce
    /// replies. Called synchronously by the ResourceManager whenever
    /// the naplet performs an exchange.
    fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()>;
}

impl<F> PrivilegedService for F
where
    F: Fn(&mut ChannelIo<'_>) -> Result<()> + Send + Sync,
{
    fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
        self(io)
    }
}

/// One live channel between a naplet and a privileged service.
#[derive(Debug)]
pub struct ServiceChannel {
    naplet: NapletId,
    service: String,
    to_service: VecDeque<Value>,
    to_naplet: VecDeque<Value>,
    /// Number of activations performed (diagnostics / accounting).
    pub exchanges: u64,
}

impl ServiceChannel {
    /// Create a channel pair for `naplet` ↔ `service`.
    pub fn new(naplet: NapletId, service: &str) -> ServiceChannel {
        ServiceChannel {
            naplet,
            service: service.to_string(),
            to_service: VecDeque::new(),
            to_naplet: VecDeque::new(),
            exchanges: 0,
        }
    }

    /// The service this channel is bound to.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The naplet endpoint owner.
    pub fn naplet(&self) -> &NapletId {
        &self.naplet
    }

    /// NapletWriter: queue a request line.
    pub fn naplet_write(&mut self, v: Value) {
        self.to_service.push_back(v);
    }

    /// NapletReader: take the next reply line.
    pub fn naplet_read(&mut self) -> Option<Value> {
        self.to_naplet.pop_front()
    }

    /// Run one service activation over the pipe pair.
    pub fn activate(&mut self, svc: &dyn PrivilegedService) -> Result<()> {
        let mut io = ChannelIo {
            input: &mut self.to_service,
            output: &mut self.to_naplet,
            naplet: &self.naplet,
        };
        svc.serve(&mut io)?;
        self.exchanges += 1;
        Ok(())
    }

    /// Convenience request/reply: write `request`, activate, read all
    /// replies (Nil for none, the value for one, a list otherwise).
    pub fn exchange(&mut self, svc: &dyn PrivilegedService, request: Value) -> Result<Value> {
        self.naplet_write(request);
        self.activate(svc)?;
        let mut replies = Vec::new();
        while let Some(v) = self.naplet_read() {
            replies.push(v);
        }
        Ok(match replies.len() {
            0 => Value::Nil,
            1 => replies.pop().expect("len checked"),
            _ => Value::List(replies),
        })
    }
}

/// A non-privileged ("open") service, callable directly via its
/// handler (paper §2.2: "non-privileged services, like routines in
/// math libraries, are registered in the ResourceManager as open
/// services and can be called via their handlers").
pub trait OpenService: Send + Sync {
    /// Invoke the service.
    fn call(&self, args: Value) -> Result<Value>;
}

impl<F> OpenService for F
where
    F: Fn(Value) -> Result<Value> + Send + Sync,
{
    fn call(&self, args: Value) -> Result<Value> {
        self(args)
    }
}

/// Helper for service implementations: reject a malformed request.
pub fn bad_request(msg: impl Into<String>) -> NapletError {
    NapletError::Service(format!("bad request: {}", msg.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::clock::Millis;

    fn nid() -> NapletId {
        NapletId::new("u", "h", Millis(0)).unwrap()
    }

    /// Echo service: one reply per request line.
    struct Echo;
    impl PrivilegedService for Echo {
        fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
            while let Some(v) = io.read_line() {
                io.write_line(Value::map([("echo", v)]));
            }
            Ok(())
        }
    }

    #[test]
    fn exchange_round_trip() {
        let mut ch = ServiceChannel::new(nid(), "echo");
        let reply = ch.exchange(&Echo, Value::from("ping")).unwrap();
        assert_eq!(reply.get("echo"), Value::from("ping"));
        assert_eq!(ch.exchanges, 1);
    }

    #[test]
    fn multi_line_replies_collected_as_list() {
        struct Burst;
        impl PrivilegedService for Burst {
            fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
                let _ = io.read_line();
                io.write_line(Value::Int(1));
                io.write_line(Value::Int(2));
                io.write_line(Value::Int(3));
                Ok(())
            }
        }
        let mut ch = ServiceChannel::new(nid(), "burst");
        let reply = ch.exchange(&Burst, Value::Nil).unwrap();
        assert_eq!(reply.as_list().unwrap().len(), 3);
    }

    #[test]
    fn no_reply_yields_nil() {
        struct Mute;
        impl PrivilegedService for Mute {
            fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
                while io.read_line().is_some() {}
                Ok(())
            }
        }
        let mut ch = ServiceChannel::new(nid(), "mute");
        assert_eq!(ch.exchange(&Mute, Value::Int(5)).unwrap(), Value::Nil);
    }

    #[test]
    fn manual_pipe_semantics() {
        // the paper's NMNaplet loop: write params, read lines until EOF
        let mut ch = ServiceChannel::new(nid(), "echo");
        ch.naplet_write(Value::from("a"));
        ch.naplet_write(Value::from("b"));
        ch.activate(&Echo).unwrap();
        let mut lines = Vec::new();
        while let Some(v) = ch.naplet_read() {
            lines.push(v);
        }
        assert_eq!(lines.len(), 2);
        assert!(ch.naplet_read().is_none()); // EOF
    }

    #[test]
    fn channel_identifies_naplet_to_service() {
        struct WhoAmI;
        impl PrivilegedService for WhoAmI {
            fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
                let _ = io.read_line();
                let who = io.naplet.to_string();
                io.write_line(Value::Str(who));
                Ok(())
            }
        }
        let mut ch = ServiceChannel::new(nid(), "who");
        let reply = ch.exchange(&WhoAmI, Value::Nil).unwrap();
        assert_eq!(reply, Value::Str(nid().to_string()));
    }

    #[test]
    fn service_errors_propagate() {
        struct Broken;
        impl PrivilegedService for Broken {
            fn serve(&self, _io: &mut ChannelIo<'_>) -> Result<()> {
                Err(bad_request("nope"))
            }
        }
        let mut ch = ServiceChannel::new(nid(), "broken");
        assert!(ch.exchange(&Broken, Value::Nil).is_err());
        assert_eq!(ch.exchanges, 0);
    }

    #[test]
    fn closures_are_open_services() {
        let svc = |v: Value| Ok(Value::Int(v.as_int()? + 1));
        assert_eq!(
            OpenService::call(&svc, Value::Int(1)).unwrap(),
            Value::Int(2)
        );
    }
}
