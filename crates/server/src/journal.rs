//! Write-ahead journal — the crash-consistency layer of a server.
//!
//! A `NapletServer` is otherwise a purely volatile process: every
//! resident naplet, pending transfer and dedup entry lives in RAM and
//! dies with the process. The journal records a durable snapshot of
//! each hosted naplet at the boundaries the protocol already computes:
//!
//! * **admission** — before the arrival is acknowledged, so the origin
//!   may safely retire its copy once the `TransferAck` arrives;
//! * **visit completion** — the post-checkpoint snapshot together with
//!   the navigation log's *visit epoch*, the exactly-once ratchet that
//!   stops a replayed visit from re-applying its effects;
//! * **departure** — the in-flight snapshot plus the transfer id and
//!   retry state, so a crashed origin resumes the handoff instead of
//!   dropping it;
//! * **retirement** — once a `TransferAck` confirms the destination
//!   holds the agent durably (or the journey ends), the record is
//!   removed.
//!
//! The invariant the two ends uphold together: *an agent is journaled
//! at the destination before it is acked away from the origin, and
//! retired at the origin only after the ack* — at every instant at
//! least one journal holds the naplet, so a crash on either side of a
//! handoff loses nothing.
//!
//! Storage is pluggable through [`JournalStore`]: [`MemoryStore`] for
//! simulation (survives the simulated crash because the driver carries
//! it across the server rebuild) and [`FileStore`] for real durability
//! (one file per record, atomic tmp-and-rename writes).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::itinerary::{ActionSpec, Cursor};
use naplet_core::naplet::Naplet;
use naplet_core::{codec, NapletError, NapletId, Result};

/// Pluggable durable key/value backing for a [`Journal`].
///
/// Keys are short UTF-8 strings; values are opaque byte blobs. A store
/// must make `put` atomic per key (no torn records) — that is the only
/// durability primitive the journal needs.
pub trait JournalStore: std::fmt::Debug + Send {
    /// Durably write `value` under `key`, replacing any prior value.
    fn put(&mut self, key: &str, value: &[u8]) -> Result<()>;
    /// Remove `key` if present.
    fn remove(&mut self, key: &str) -> Result<()>;
    /// Read the value under `key`, if any.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;
    /// All keys, sorted, for recovery scans.
    fn keys(&self) -> Result<Vec<String>>;
    /// Number of records. The default walks `keys()`; stores that can
    /// answer cheaper should override — this is polled on every
    /// journal write for the ops-plane gauge, so an O(records)
    /// implementation turns a long-running server quadratic.
    fn count(&self) -> usize {
        self.keys().map(|k| k.len()).unwrap_or(0)
    }
}

/// In-memory store: "durable" relative to a *simulated* crash, which
/// wipes the server but hands the store to the rebuilt instance.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: BTreeMap<String, Vec<u8>>,
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl JournalStore for MemoryStore {
    fn put(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.map.insert(key.to_string(), value.to_vec());
        Ok(())
    }

    fn remove(&mut self, key: &str) -> Result<()> {
        self.map.remove(key);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self.map.keys().cloned().collect())
    }

    fn count(&self) -> usize {
        self.map.len()
    }
}

/// File-backed store: one file per key under a directory, written with
/// tmp-and-rename so a crash mid-write never leaves a torn record.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| NapletError::Internal(format!("journal dir {}: {e}", dir.display())))?;
        Ok(FileStore { dir })
    }

    /// Keys contain `/` separators; encode every byte outside
    /// `[A-Za-z0-9_.-]` as `%XX` so each key maps to one flat filename.
    fn encode(key: &str) -> String {
        let mut out = String::with_capacity(key.len());
        for b in key.bytes() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-') {
                out.push(b as char);
            } else {
                let _ = write!(out, "%{b:02X}");
            }
        }
        out
    }

    fn decode(name: &str) -> Option<String> {
        let bytes = name.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                let hex = name.get(i + 1..i + 3)?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        String::from_utf8(out).ok()
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(Self::encode(key))
    }
}

impl JournalStore for FileStore {
    fn put(&mut self, key: &str, value: &[u8]) -> Result<()> {
        let path = self.path(key);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, value)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| NapletError::Internal(format!("journal write {key}: {e}")))
    }

    fn remove(&mut self, key: &str) -> Result<()> {
        match std::fs::remove_file(self.path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(NapletError::Internal(format!("journal remove {key}: {e}"))),
        }
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(NapletError::Internal(format!("journal read {key}: {e}"))),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| NapletError::Internal(format!("journal scan: {e}")))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| NapletError::Internal(format!("journal scan: {e}")))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                continue; // torn write from a crash mid-put
            }
            if let Some(key) = Self::decode(name) {
                keys.push(key);
            }
        }
        keys.sort();
        Ok(keys)
    }
}

/// Where a journaled naplet stood when its snapshot was taken.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalPhase {
    /// Resident on this server. `applied_epoch` is the navigation-log
    /// visit epoch up to which visit effects have been applied: equal
    /// to the snapshot's own epoch once the visit ran, one less while
    /// the naplet was only admitted. `action` is the pending visit
    /// action carried in the transfer envelope, needed to re-run an
    /// unapplied visit after recovery.
    Resident {
        /// Visit epoch whose effects are already durable in the world.
        applied_epoch: u64,
        /// Pending per-visit action, if the visit has not run yet.
        action: Option<ActionSpec>,
    },
    /// Departing: the handoff to `dest` under `transfer_id` was in
    /// progress. `checkpoint` is the pre-departure cursor to rewind to
    /// if the migration permanently fails after recovery.
    InFlight {
        /// Transfer id of the in-progress handoff.
        transfer_id: u64,
        /// Destination host.
        dest: String,
        /// Cursor to restore on permanent failure.
        checkpoint: Cursor,
        /// `true` once the Transfer frame was sent (awaiting its ack);
        /// `false` while still awaiting the landing permit.
        awaiting_ack: bool,
        /// Send attempts made so far.
        attempt: u32,
        /// Per-visit action travelling with the naplet.
        action: Option<ActionSpec>,
    },
    /// Parked on this server awaiting manual resumption.
    Parked,
}

/// One durable naplet record: the serialized agent plus its phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// `napcode`-encoded [`Naplet`] snapshot.
    pub naplet: Vec<u8>,
    /// Protocol phase at snapshot time.
    pub phase: JournalPhase,
    /// When the record was written (virtual time).
    pub updated: Millis,
}

impl JournalRecord {
    /// Decode the carried naplet snapshot.
    pub fn decode_naplet(&self) -> Result<Naplet> {
        codec::from_bytes(&self.naplet)
    }
}

/// Counters a recovery replay produces, merged into server diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Naplets rehydrated from the journal after a crash.
    pub rehydrated: u64,
    /// Visits whose re-execution was suppressed because the journaled
    /// `applied_epoch` showed their effects already escaped.
    pub replays_suppressed: u64,
    /// In-flight handoffs resumed by re-driving the retry machinery.
    pub handoffs_resumed: u64,
    /// Home-side leases that expired without renewal.
    pub leases_expired: u64,
    /// Orphaned agents re-dispatched from their creation record.
    pub orphans_redispatched: u64,
    /// Agents given up as `Lost` after lease expiry.
    pub agents_lost: u64,
}

impl RecoveryStats {
    /// Add `other` into `self` (for cross-server aggregation).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.rehydrated += other.rehydrated;
        self.replays_suppressed += other.replays_suppressed;
        self.handoffs_resumed += other.handoffs_resumed;
        self.leases_expired += other.leases_expired;
        self.orphans_redispatched += other.orphans_redispatched;
        self.agents_lost += other.agents_lost;
    }
}

/// The server-side write-ahead journal.
///
/// Key layout (flat, prefix-partitioned):
///
/// * `n/<naplet-id>` — [`JournalRecord`] for a hosted/in-flight naplet
/// * `c/<naplet-id>` — creation snapshot for lease re-dispatch (home)
/// * `s/<transfer-id>/<origin>` — receiver-side transfer dedup entry
/// * `t/watermark` — high-water mark of issued transfer tokens
/// * `r/<suffix>` — replicated-directory consensus records (term/vote
///   meta, log entries, compaction snapshot); opaque to the journal
#[derive(Debug)]
pub struct Journal {
    store: Box<dyn JournalStore>,
}

impl Journal {
    /// Journal over a fresh in-memory store.
    pub fn in_memory() -> Journal {
        Journal::with_store(Box::new(MemoryStore::new()))
    }

    /// Journal over any store implementation.
    pub fn with_store(store: Box<dyn JournalStore>) -> Journal {
        Journal { store }
    }

    fn naplet_key(id: &NapletId) -> String {
        format!("n/{id}")
    }

    fn creation_key(id: &NapletId) -> String {
        format!("c/{id}")
    }

    fn seen_key(origin: &str, transfer_id: u64) -> String {
        format!("s/{transfer_id}/{origin}")
    }

    /// Durably record `naplet` in `phase`. Errors are returned for the
    /// caller to log; the protocol proceeds regardless (a failed write
    /// degrades durability, not correctness of the live run).
    pub fn record_naplet(
        &mut self,
        id: &NapletId,
        naplet: &Naplet,
        phase: JournalPhase,
        now: Millis,
    ) -> Result<()> {
        let record = JournalRecord {
            naplet: codec::to_bytes(naplet)?,
            phase,
            updated: now,
        };
        self.store
            .put(&Self::naplet_key(id), &codec::to_bytes(&record)?)
    }

    /// Like [`record_naplet`](Self::record_naplet), but from an
    /// already-encoded agent image — the hot path for handoffs, where a
    /// [`naplet_core::naplet::SharedNaplet`] snapshot is encoded once
    /// and every phase update (departure, retransmit) reuses the bytes
    /// instead of re-serializing the whole agent.
    pub fn record_naplet_bytes(
        &mut self,
        id: &NapletId,
        naplet_bytes: &[u8],
        phase: JournalPhase,
        now: Millis,
    ) -> Result<()> {
        let record = JournalRecord {
            naplet: naplet_bytes.to_vec(),
            phase,
            updated: now,
        };
        self.store
            .put(&Self::naplet_key(id), &codec::to_bytes(&record)?)
    }

    /// Retire a naplet record: the agent is durably someone else's
    /// responsibility (acked away) or its journey ended here.
    pub fn retire(&mut self, id: &NapletId) -> Result<()> {
        self.store.remove(&Self::naplet_key(id))
    }

    /// All live naplet records, sorted by id, for recovery scans.
    pub fn naplet_records(&self) -> Vec<(String, JournalRecord)> {
        let Ok(keys) = self.store.keys() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for key in keys {
            let Some(id) = key.strip_prefix("n/") else {
                continue;
            };
            if let Ok(Some(bytes)) = self.store.get(&key) {
                if let Ok(record) = codec::from_bytes::<JournalRecord>(&bytes) {
                    out.push((id.to_string(), record));
                }
            }
        }
        out
    }

    /// Record the creation snapshot of a naplet dispatched from this
    /// (home) server, for lease-driven re-dispatch.
    pub fn record_creation(&mut self, id: &NapletId, naplet: &Naplet) -> Result<()> {
        self.store
            .put(&Self::creation_key(id), &codec::to_bytes(naplet)?)
    }

    /// The creation snapshot for `id`, if still held.
    pub fn creation(&self, id: &NapletId) -> Option<Naplet> {
        let bytes = self.store.get(&Self::creation_key(id)).ok().flatten()?;
        codec::from_bytes(&bytes).ok()
    }

    /// Ids with a creation record, sorted.
    pub fn creations(&self) -> Vec<String> {
        let Ok(keys) = self.store.keys() else {
            return Vec::new();
        };
        keys.iter()
            .filter_map(|k| k.strip_prefix("c/"))
            .map(str::to_string)
            .collect()
    }

    /// Drop the creation record once the journey reaches a terminal
    /// status (no re-dispatch will ever be needed).
    pub fn remove_creation(&mut self, id: &NapletId) -> Result<()> {
        self.store.remove(&Self::creation_key(id))
    }

    /// Durably note a transfer as seen (receiver-side dedup), so a
    /// restarted receiver still re-acks instead of re-admitting.
    pub fn note_seen(&mut self, origin: &str, transfer_id: u64, at: Millis) -> Result<()> {
        let value = ((origin.to_string(), transfer_id), at);
        self.store.put(
            &Self::seen_key(origin, transfer_id),
            &codec::to_bytes(&value)?,
        )
    }

    /// All durable dedup entries: `((origin, transfer_id), seen-at)`.
    pub fn seen(&self) -> Vec<((String, u64), Millis)> {
        let Ok(keys) = self.store.keys() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for key in keys {
            if !key.starts_with("s/") {
                continue;
            }
            if let Ok(Some(bytes)) = self.store.get(&key) {
                if let Ok(entry) = codec::from_bytes::<((String, u64), Millis)>(&bytes) {
                    out.push(entry);
                }
            }
        }
        out
    }

    /// Evict dedup entries older than `ttl_ms`; returns how many.
    pub fn compact_seen(&mut self, now: Millis, ttl_ms: u64) -> usize {
        let mut evicted = 0;
        for ((origin, transfer_id), at) in self.seen() {
            if now.since(at) >= ttl_ms {
                let _ = self.store.remove(&Self::seen_key(&origin, transfer_id));
                evicted += 1;
            }
        }
        evicted
    }

    /// Durably advance the transfer-token high-water mark. Written on
    /// every token issue so a recovered server never reuses an id that
    /// may still be live in a peer's dedup table.
    pub fn set_token_watermark(&mut self, token: u64) -> Result<()> {
        self.store.put("t/watermark", &codec::to_bytes(&token)?)
    }

    /// The last durable token watermark, 0 if never written.
    pub fn token_watermark(&self) -> u64 {
        self.store
            .get("t/watermark")
            .ok()
            .flatten()
            .and_then(|b| codec::from_bytes(&b).ok())
            .unwrap_or(0)
    }

    /// Journal lag for the ops plane: `(entries, bytes)` over the
    /// un-retired naplet records (`n/` prefix) — durable work the
    /// protocol has not yet confirmed away. O(records); meant for
    /// status sweeps, not hot paths.
    pub fn lag(&self) -> (u64, u64) {
        let Ok(keys) = self.store.keys() else {
            return (0, 0);
        };
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for key in keys {
            if !key.starts_with("n/") {
                continue;
            }
            entries += 1;
            if let Ok(Some(value)) = self.store.get(&key) {
                bytes += value.len() as u64;
            }
        }
        (entries, bytes)
    }

    /// Durably write a consensus record under `r/<suffix>`. The
    /// replicated directory ([`crate::repl`]) persists its term/vote
    /// meta, log entries and snapshots here; the journal treats the
    /// bytes as opaque.
    pub fn put_repl(&mut self, suffix: &str, bytes: &[u8]) -> Result<()> {
        self.store.put(&format!("r/{suffix}"), bytes)
    }

    /// Read the consensus record under `r/<suffix>`, if any.
    pub fn get_repl(&self, suffix: &str) -> Option<Vec<u8>> {
        self.store.get(&format!("r/{suffix}")).ok().flatten()
    }

    /// Remove the consensus record under `r/<suffix>`.
    pub fn remove_repl(&mut self, suffix: &str) -> Result<()> {
        self.store.remove(&format!("r/{suffix}"))
    }

    /// All consensus-record suffixes, sorted (recovery scan).
    pub fn repl_keys(&self) -> Vec<String> {
        let Ok(keys) = self.store.keys() else {
            return Vec::new();
        };
        keys.into_iter()
            .filter_map(|k| k.strip_prefix("r/").map(|s| s.to_string()))
            .collect()
    }

    /// Number of records of any kind.
    pub fn len(&self) -> usize {
        self.store.count()
    }

    /// True when nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use naplet_core::credential::SigningKey;
    use naplet_core::itinerary::{Itinerary, Pattern};
    use naplet_core::naplet::AgentKind;

    fn sample_naplet() -> Naplet {
        let key = SigningKey::new("czxu", b"test-secret");
        let it = Itinerary::new(Pattern::seq_of_hosts(&["s1", "s2"], None)).unwrap();
        Naplet::create(
            &key,
            "czxu",
            "home",
            Millis(1),
            "naplet://code/probe.jar",
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap()
    }

    fn temp_dir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("naplet-journal-{}-{n}", std::process::id()))
    }

    fn naplet_round_trip(mut journal: Journal) {
        let naplet = sample_naplet();
        let id = naplet.id().clone();
        journal
            .record_naplet(
                &id,
                &naplet,
                JournalPhase::Resident {
                    applied_epoch: 0,
                    action: Some(ActionSpec::ReportHome),
                },
                Millis(5),
            )
            .unwrap();
        let records = journal.naplet_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, id.to_string());
        assert_eq!(records[0].1.updated, Millis(5));
        let back = records[0].1.decode_naplet().unwrap();
        assert_eq!(back.id(), &id);
        match &records[0].1.phase {
            JournalPhase::Resident {
                applied_epoch,
                action,
            } => {
                assert_eq!(*applied_epoch, 0);
                assert_eq!(action, &Some(ActionSpec::ReportHome));
            }
            other => panic!("unexpected phase {other:?}"),
        }
        journal.retire(&id).unwrap();
        assert!(journal.naplet_records().is_empty());
    }

    #[test]
    fn memory_store_round_trips_naplet_records() {
        naplet_round_trip(Journal::in_memory());
    }

    #[test]
    fn file_store_round_trips_naplet_records() {
        let dir = temp_dir();
        naplet_round_trip(Journal::with_store(Box::new(
            FileStore::open(&dir).unwrap(),
        )));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_survives_reopen_and_skips_tmp() {
        let dir = temp_dir();
        {
            let mut store = FileStore::open(&dir).unwrap();
            store.put("n/abc", b"hello").unwrap();
            // simulate a crash mid-put: a stray tmp file left behind
            std::fs::write(dir.join("torn.tmp"), b"junk").unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.keys().unwrap(), vec!["n/abc".to_string()]);
        assert_eq!(store.get("n/abc").unwrap().unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_key_encoding_round_trips() {
        let ugly = "s/42/host%with/odd chars";
        let encoded = FileStore::encode(ugly);
        assert!(!encoded.contains('/'));
        assert_eq!(FileStore::decode(&encoded).unwrap(), ugly);
    }

    #[test]
    fn creations_tracked_and_removed() {
        let mut journal = Journal::in_memory();
        let naplet = sample_naplet();
        let id = naplet.id().clone();
        assert!(journal.creation(&id).is_none());
        journal.record_creation(&id, &naplet).unwrap();
        assert_eq!(journal.creations(), vec![id.to_string()]);
        assert_eq!(journal.creation(&id).unwrap().id(), &id);
        journal.remove_creation(&id).unwrap();
        assert!(journal.creations().is_empty());
    }

    #[test]
    fn seen_entries_compacted_by_ttl() {
        let mut journal = Journal::in_memory();
        journal.note_seen("s1", 7, Millis(100)).unwrap();
        journal.note_seen("s2", 9, Millis(500)).unwrap();
        assert_eq!(journal.seen().len(), 2);
        let evicted = journal.compact_seen(Millis(700), 300);
        assert_eq!(evicted, 1);
        let left = journal.seen();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, ("s2".to_string(), 9));
    }

    #[test]
    fn lag_counts_only_unretired_naplet_records() {
        let mut journal = Journal::in_memory();
        assert_eq!(journal.lag(), (0, 0));
        let naplet = sample_naplet();
        let id = naplet.id().clone();
        journal
            .record_naplet(&id, &naplet, JournalPhase::Parked, Millis(1))
            .unwrap();
        journal.record_creation(&id, &naplet).unwrap(); // not lag
        journal.note_seen("s1", 7, Millis(1)).unwrap(); // not lag
        let (entries, bytes) = journal.lag();
        assert_eq!(entries, 1);
        assert!(bytes > 0, "a journaled agent image has bytes");
        journal.retire(&id).unwrap();
        assert_eq!(journal.lag(), (0, 0));
    }

    #[test]
    fn token_watermark_persists() {
        let mut journal = Journal::in_memory();
        assert_eq!(journal.token_watermark(), 0);
        journal.set_token_watermark(41).unwrap();
        assert_eq!(journal.token_watermark(), 41);
    }

    #[test]
    fn recovery_stats_merge() {
        let mut a = RecoveryStats {
            rehydrated: 1,
            replays_suppressed: 2,
            ..Default::default()
        };
        let b = RecoveryStats {
            rehydrated: 3,
            handoffs_resumed: 1,
            leases_expired: 4,
            orphans_redispatched: 2,
            agents_lost: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rehydrated, 4);
        assert_eq!(a.replays_suppressed, 2);
        assert_eq!(a.handoffs_resumed, 1);
        assert_eq!(a.leases_expired, 4);
        assert_eq!(a.orphans_redispatched, 2);
        assert_eq!(a.agents_lost, 1);
    }
}
