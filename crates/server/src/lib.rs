//! # naplet-server
//!
//! The NapletServer — the dock of naplets (paper §2.2) — and the
//! runtime that drives a whole naplet space.
//!
//! Seven components per server, as in Figure 2 of the paper:
//! NapletMonitor ([`monitor`]), NapletSecurityManager ([`security`]),
//! ResourceManager ([`resources`]) with dynamically created
//! ServiceChannels ([`service_channel`]), NapletManager ([`manager`]),
//! Messenger ([`messenger`]), Navigator (the migration protocol inside
//! [`server`]) and Locator ([`locator`]); plus the optional
//! NapletDirectory ([`directory`]).
//!
//! Servers are deterministic event handlers; [`runtime::SimRuntime`]
//! drives them over a metered fabric in virtual time (measurements),
//! and the same handlers can be pumped by threads for live operation.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod daemon;
pub mod directory;
pub mod events;
pub mod journal;
pub mod lease;
pub mod live;
pub mod locator;
pub mod manager;
pub mod messenger;
pub mod monitor;
pub mod repl;
pub mod resources;
pub mod retry;
pub mod runtime;
pub mod security;
pub mod server;
pub mod service_channel;
pub mod status;

pub use bootstrap::{BootstrapConfig, NodeConfig};
pub use daemon::{register_probe, Daemon, DaemonSummary, TraceDumper, PROBE_CODEBASE};
pub use directory::{DirEntry, DirEvent, NapletDirectory};
pub use events::{EventLog, Input, LocalEvent, LogEntry, Output, TransferEnvelope, Wire};
pub use journal::{
    FileStore, Journal, JournalPhase, JournalRecord, JournalStore, MemoryStore, RecoveryStats,
};
pub use lease::{Lease, LeasePolicy, LeaseTable};
pub use live::LiveRuntime;
pub use locator::Locator;
pub use manager::{Footprint, NapletManager, NapletStatus, TableEntry};
pub use messenger::Messenger;
pub use monitor::{
    MonitorPolicy, NapletMonitor, Priority, ResourceUsage, RunEntry, RunState, SchedulingPolicy,
};
pub use repl::{DirOp, ReplConfig, ReplMsg, ReplicaCore};
pub use resources::ResourceManager;
pub use retry::RetryPolicy;
pub use runtime::SimRuntime;
pub use security::{Matcher, Permission, Policy, Rule, SecurityManager};
pub use server::{LocationMode, NapletServer, ServerConfig};
pub use service_channel::{ChannelIo, OpenService, PrivilegedService, ServiceChannel};
pub use status::{ReplStatus, ResidentStatus, StatusReport};
