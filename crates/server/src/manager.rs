//! NapletManager (paper §2.2, §4.1).
//!
//! The manager gives local users an interface to launch, monitor and
//! control naplets; it "maintains the information about its locally
//! launched naplets in a naplet table. Footprints of all past and
//! current alien naplets are also recorded for management purposes."
//!
//! Footprints are also the tracing substrate of the directory-less
//! location mode: "the NapletManager maintains the source and
//! destination information about each naplet visit", which the Locator
//! and Messenger follow when chasing a moving naplet.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;

/// Lifecycle status tracked in the home naplet table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NapletStatus {
    /// Dispatched from this server; not yet reported anywhere.
    Launched,
    /// Known to be running at `last_known`.
    Running,
    /// Departed `last_known`; in transit.
    InTransit,
    /// Journey completed (destroyed normally).
    Completed,
    /// Destroyed abnormally (terminated, budget kill, lost).
    Destroyed,
    /// Stranded: the reliable-transfer layer exhausted its retries
    /// toward a required destination and no itinerary fallback existed;
    /// the naplet is held at its last server awaiting owner action.
    Parked,
    /// Presumed lost: the home-side lease expired with no sign of life
    /// and no re-dispatch was possible (policy forbade it or the
    /// budget was exhausted). Terminal.
    Lost,
}

/// One row of the home naplet table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// The naplet.
    pub id: NapletId,
    /// Current lifecycle status.
    pub status: NapletStatus,
    /// Most recent server this naplet was known at.
    pub last_known: String,
    /// Time of the last update.
    pub updated: Millis,
}

/// One visit footprint at this server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Server the naplet arrived from (None for a local launch).
    pub from: Option<String>,
    /// Arrival time.
    pub arrived: Millis,
    /// Server the naplet departed to (None while resident or if it
    /// ended here).
    pub to: Option<String>,
    /// Departure time.
    pub departed: Option<Millis>,
}

/// The per-server naplet manager.
#[derive(Debug, Default)]
pub struct NapletManager {
    table: HashMap<NapletId, TableEntry>,
    footprints: HashMap<NapletId, Vec<Footprint>>,
}

impl NapletManager {
    /// Empty manager.
    pub fn new() -> NapletManager {
        NapletManager::default()
    }

    // ----------------- home naplet table -----------------

    /// Record a local launch into the naplet table.
    pub fn record_launch(&mut self, id: NapletId, first_stop: &str, now: Millis) {
        self.table.insert(
            id.clone(),
            TableEntry {
                id,
                status: NapletStatus::Launched,
                last_known: first_stop.to_string(),
                updated: now,
            },
        );
    }

    /// Update the table when the home learns about a naplet's state
    /// (directory events, reports). Unknown ids are ignored — the home
    /// only tracks naplets it launched.
    pub fn update_status(&mut self, id: &NapletId, status: NapletStatus, at: &str, now: Millis) {
        if let Some(e) = self.table.get_mut(id) {
            e.status = status;
            e.last_known = at.to_string();
            e.updated = now;
        }
    }

    /// Look up a locally launched naplet.
    pub fn table_entry(&self, id: &NapletId) -> Option<&TableEntry> {
        self.table.get(id)
    }

    /// All locally launched naplets (sorted by id for determinism).
    pub fn launched(&self) -> Vec<&TableEntry> {
        let mut v: Vec<&TableEntry> = self.table.values().collect();
        v.sort_by(|a, b| a.id.cmp(&b.id));
        v
    }

    // ----------------- footprints (tracing) -----------------

    /// Record an arrival footprint.
    pub fn record_arrival(&mut self, id: &NapletId, from: Option<&str>, now: Millis) {
        self.footprints
            .entry(id.clone())
            .or_default()
            .push(Footprint {
                from: from.map(str::to_string),
                arrived: now,
                to: None,
                departed: None,
            });
    }

    /// Record the departure of the current visit towards `to`.
    /// Returns false when there is no open footprint (protocol bug).
    pub fn record_departure(&mut self, id: &NapletId, to: &str, now: Millis) -> bool {
        match self.footprints.get_mut(id).and_then(|v| v.last_mut()) {
            Some(fp) if fp.departed.is_none() => {
                fp.to = Some(to.to_string());
                fp.departed = Some(now);
                true
            }
            _ => false,
        }
    }

    /// The naplet's whereabouts according to local footprints:
    /// * `Some(None)` — it is resident here now;
    /// * `Some(Some(host))` — it departed towards `host`;
    /// * `None` — never seen here.
    pub fn trace(&self, id: &NapletId) -> Option<Option<&str>> {
        let fp = self.footprints.get(id)?.last()?;
        Some(match (&fp.departed, &fp.to) {
            (Some(_), Some(to)) => Some(to.as_str()),
            _ => None,
        })
    }

    /// Full footprint history for a naplet (diagnostics/audit).
    pub fn footprints(&self, id: &NapletId) -> &[Footprint] {
        self.footprints.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total footprints recorded (all naplets).
    pub fn footprint_count(&self) -> usize {
        self.footprints.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "home", Millis(n)).unwrap()
    }

    #[test]
    fn table_lifecycle() {
        let mut m = NapletManager::new();
        m.record_launch(nid(1), "s1", Millis(10));
        assert_eq!(
            m.table_entry(&nid(1)).unwrap().status,
            NapletStatus::Launched
        );
        m.update_status(&nid(1), NapletStatus::Running, "s1", Millis(20));
        let e = m.table_entry(&nid(1)).unwrap();
        assert_eq!(e.status, NapletStatus::Running);
        assert_eq!(e.last_known, "s1");
        // unknown ids ignored
        m.update_status(&nid(9), NapletStatus::Running, "x", Millis(0));
        assert!(m.table_entry(&nid(9)).is_none());
        assert_eq!(m.launched().len(), 1);
    }

    #[test]
    fn footprints_trace_movement() {
        let mut m = NapletManager::new();
        let id = nid(1);
        assert_eq!(m.trace(&id), None);
        m.record_arrival(&id, Some("s0"), Millis(5));
        assert_eq!(m.trace(&id), Some(None)); // resident
        assert!(m.record_departure(&id, "s2", Millis(9)));
        assert_eq!(m.trace(&id), Some(Some("s2"))); // forwarded
                                                    // revisit later
        m.record_arrival(&id, Some("s5"), Millis(30));
        assert_eq!(m.trace(&id), Some(None));
        assert_eq!(m.footprints(&id).len(), 2);
        assert_eq!(m.footprints(&id)[0].from.as_deref(), Some("s0"));
        assert_eq!(m.footprints(&id)[0].to.as_deref(), Some("s2"));
    }

    #[test]
    fn departure_without_arrival_rejected() {
        let mut m = NapletManager::new();
        assert!(!m.record_departure(&nid(1), "s1", Millis(0)));
        m.record_arrival(&nid(1), None, Millis(1));
        assert!(m.record_departure(&nid(1), "s1", Millis(2)));
        // double departure rejected
        assert!(!m.record_departure(&nid(1), "s2", Millis(3)));
    }

    #[test]
    fn footprint_count_spans_naplets() {
        let mut m = NapletManager::new();
        m.record_arrival(&nid(1), None, Millis(1));
        m.record_arrival(&nid(2), None, Millis(1));
        m.record_arrival(&nid(1), Some("x"), Millis(2));
        assert_eq!(m.footprint_count(), 3);
    }
}
