//! Live threaded runtime: every NapletServer on its own OS thread.
//!
//! The deterministic [`crate::runtime::SimRuntime`] is the measurement
//! harness; [`LiveRuntime`] is the deployment shape the paper
//! describes — "the NapletServers are running autonomously and they
//! collectively form an agent flow space". The very same event-handler
//! servers are pumped by threads over any
//! [`naplet_net::Transport`] — the in-process
//! `naplet_net::ThreadedNet` fabric (modelled link delays scaled into
//! real sleeps) or the real-socket `naplet_net::TcpTransport` the
//! `napletd` daemon deploys on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use naplet_core::clock::Millis;
use naplet_core::error::{NapletError, Result};
use naplet_core::naplet::Naplet;
use naplet_core::tracectx::CtxTable;
use naplet_net::{Fabric, Frame, ThreadedNet, TrafficClass, Transport};
use naplet_obs::{ObsSink, TraceKind, WatchdogConfig};

use crate::events::{Input, LocalEvent, Output, Wire};
use crate::server::{NapletServer, ServerConfig};

/// A naplet space running on real threads over a pluggable
/// [`Transport`]. The default transport is the in-process
/// [`ThreadedNet`]; [`LiveRuntime::over`] runs the same servers over
/// real sockets.
pub struct LiveRuntime<T: Transport = ThreadedNet> {
    net: Arc<T>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    threads: Vec<(String, JoinHandle<NapletServer>)>,
    /// Servers constructed but not yet started (launch window), with
    /// any local timers armed by pre-start launches (e.g. handoff
    /// acknowledgement timeouts).
    #[allow(clippy::type_complexity)]
    staging: Vec<(
        NapletServer,
        crossbeam::channel::Receiver<Frame>,
        Vec<(Instant, LocalEvent)>,
    )>,
    /// Shared observability sink handed to every server. Live traces
    /// are wall-clock ordered, so unlike the sim they are not
    /// deterministic — but the same taxonomy and exporters apply.
    obs: ObsSink,
    /// Watchdog sweep thread (armed by `enable_watchdog` + `start`).
    sweeper: Option<JoinHandle<()>>,
    /// Trace contexts for sends enacted before `start` (launch and
    /// recovery handshakes); each server thread keeps its own table
    /// once running.
    staging_ctxs: CtxTable,
}

impl LiveRuntime<ThreadedNet> {
    /// Create a live runtime over a fabric. `us_per_ms` scales modelled
    /// link delay into real sleep (1000 = real time, 0 = as fast as
    /// possible).
    pub fn new(fabric: Fabric, us_per_ms: u64) -> LiveRuntime {
        LiveRuntime::over(ThreadedNet::start(fabric, us_per_ms))
    }

    /// The underlying fabric (stats, failure injection).
    pub fn fabric(&self) -> &Fabric {
        self.net.fabric()
    }
}

impl<T: Transport> LiveRuntime<T> {
    /// Create a live runtime over an already-started transport (e.g. a
    /// `naplet_net::TcpTransport` bound to this process's listen
    /// address).
    pub fn over(transport: T) -> LiveRuntime<T> {
        LiveRuntime {
            net: Arc::new(transport),
            stop: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            threads: Vec::new(),
            staging: Vec::new(),
            obs: ObsSink::default(),
            sweeper: None,
            staging_ctxs: CtxTable::new(),
        }
    }

    /// The underlying transport (stats, peer control).
    pub fn transport(&self) -> &T {
        &self.net
    }

    /// The shared observability sink (tracer + metrics).
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// Turn on journey tracing for the whole space. Only affects
    /// servers added after the call or before [`LiveRuntime::start`].
    pub fn enable_tracing(&mut self) {
        self.obs.enable_tracing();
    }

    /// Turn on the bounded flight recorder and anchor its event clock
    /// to the UNIX timeline, so segments from different daemons can be
    /// merged on one shared axis.
    pub fn enable_recorder(&mut self, capacity: usize) {
        self.obs.enable_recorder(capacity);
        let elapsed = self.epoch.elapsed().as_millis() as u64;
        let unix_now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.obs
            .recorder
            .set_epoch_unix_ms(unix_now.saturating_sub(elapsed));
    }

    /// Turn on wall-clock hot-path profiling (handler-latency
    /// histograms) for every server in the space.
    pub fn enable_profiling(&mut self) {
        self.obs.enable_profiling();
    }

    /// Turn on the per-daemon metrics time-series and anchor its
    /// sample clock to the UNIX timeline. The sweep thread started by
    /// [`LiveRuntime::start`] takes one delta sample per tick.
    pub fn enable_metrics_history(&mut self, capacity: usize) {
        self.obs.enable_metrics_history(capacity);
        let elapsed = self.epoch.elapsed().as_millis() as u64;
        let unix_now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.obs
            .history
            .set_epoch_unix_ms(unix_now.saturating_sub(elapsed));
    }

    /// Arm the journey watchdog for the whole space. The sweep thread
    /// started by [`LiveRuntime::start`] checks progress deadlines in
    /// wall-clock-since-epoch time; server-health sweeps are a
    /// sim-runtime feature only (live servers belong to their threads,
    /// and the status protocol polls them over the wire instead).
    pub fn enable_watchdog(&mut self, config: WatchdogConfig) {
        self.obs.enable_watchdog(config);
    }

    /// Stall alerts raised so far (wall-clock ordered, so not
    /// deterministic — the sim runtime is the measurement harness).
    pub fn alerts(&self) -> Vec<naplet_obs::TraceEvent> {
        self.obs.watchdog.alerts()
    }

    /// Add a server. It starts pumping when [`LiveRuntime::start`] is
    /// called; until then naplets may be launched from it.
    pub fn add_server(&mut self, config: ServerConfig) -> &mut NapletServer {
        let rx = self.net.register(&config.host);
        let mut server = NapletServer::new(config);
        server.set_obs(self.obs.clone());
        // directory replicas drive their consensus clock off a
        // self-rearming tick; the first one is armed here, the rest by
        // the server's own outputs
        let mut timers = Vec::new();
        if let Some(tick_ms) = server.arm_initial_repl_tick() {
            timers.push((
                Instant::now() + Duration::from_millis(tick_ms),
                LocalEvent::ReplTick,
            ));
        }
        self.staging.push((server, rx, timers));
        &mut self.staging.last_mut().expect("just pushed").0
    }

    /// Launch a naplet from its home server. Only valid before
    /// [`LiveRuntime::start`] (afterwards the server belongs to its
    /// thread; use owner messages instead).
    pub fn launch(&mut self, naplet: Naplet) -> Result<()> {
        let home = naplet.home().to_string();
        let now = self.now();
        let (server, _, timers) = self
            .staging
            .iter_mut()
            .find(|(s, _, _)| s.host() == home)
            .ok_or_else(|| NapletError::NotFound(format!("no staged server at `{home}`")))?;
        let outputs = server.launch(naplet, now);
        // launches produce sends (handshakes) plus acknowledgement
        // timers; the timers are handed to the server's thread on start
        let host = home.clone();
        let net = Arc::clone(&self.net);
        let obs = self.obs.clone();
        enact(
            &host,
            net.as_ref(),
            outputs,
            timers,
            &mut Vec::new(),
            &obs,
            &mut self.staging_ctxs,
            now,
        );
        Ok(())
    }

    /// Replay a staged server's write-ahead journal and enact the
    /// recovery outputs — retransmitted handshakes go out over the
    /// transport, re-armed acknowledgement/lease timers are handed to
    /// the server's thread on [`LiveRuntime::start`]. Only valid
    /// before `start` (recovery is a boot-time activity; a running
    /// server's journal belongs to its thread).
    pub fn recover(&mut self, host: &str) -> Result<crate::journal::RecoveryStats> {
        let now = self.now();
        let net = Arc::clone(&self.net);
        let (server, _, timers) = self
            .staging
            .iter_mut()
            .find(|(s, _, _)| s.host() == host)
            .ok_or_else(|| NapletError::NotFound(format!("no staged server at `{host}`")))?;
        let outputs = server.recover(now);
        let stats = server.recovery_stats();
        let host = host.to_string();
        let obs = self.obs.clone();
        enact(
            &host,
            net.as_ref(),
            outputs,
            timers,
            &mut Vec::new(),
            &obs,
            &mut self.staging_ctxs,
            now,
        );
        Ok(stats)
    }

    /// Start all staged servers on their threads.
    pub fn start(&mut self) {
        for (server, rx, timers) in self.staging.drain(..) {
            let host = server.host().to_string();
            let net = Arc::clone(&self.net);
            let stop = Arc::clone(&self.stop);
            let epoch = self.epoch;
            let obs = self.obs.clone();
            // hand the staging-window contexts to every thread so a
            // launch handshake and the hops after it share one journey
            // sequence (receivers re-converge by adopting frame
            // contexts anyway)
            let ctxs = self.staging_ctxs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("naplet-server-{host}"))
                .spawn(move || serve(server, net, rx, timers, epoch, stop, obs, ctxs))
                .expect("spawn server thread");
            self.threads.push((host, handle));
        }
        let want_sweeper = self.obs.watchdog.enabled() || self.obs.history.enabled();
        if want_sweeper && self.sweeper.is_none() {
            let obs = self.obs.clone();
            let stop = Arc::clone(&self.stop);
            let epoch = self.epoch;
            // the watchdog config sets the sweep cadence when armed;
            // a history-only sweeper samples once a second
            let tick = if self.obs.watchdog.enabled() {
                Duration::from_millis(self.obs.watchdog.config().tick_ms.max(1))
            } else {
                Duration::from_millis(1_000)
            };
            let handle = std::thread::Builder::new()
                .name("naplet-watchdog".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        let now = Millis(epoch.elapsed().as_millis() as u64);
                        if obs.watchdog.enabled() {
                            for alert in obs.watchdog.check(now) {
                                obs.metrics.incr("alerts.raised", 1);
                                obs.metrics.incr(
                                    if alert.orphan {
                                        "alerts.orphan"
                                    } else {
                                        "alerts.stalled"
                                    },
                                    1,
                                );
                                obs.push_event(alert.event);
                            }
                        }
                        // one metrics delta per sweep tick (no-op
                        // while the history ring is disabled)
                        obs.history.sample(now, &obs.metrics);
                    }
                })
                .expect("spawn watchdog thread");
            self.sweeper = Some(handle);
        }
    }

    /// Wall-clock time since the runtime epoch, in ms.
    pub fn now(&self) -> Millis {
        Millis(self.epoch.elapsed().as_millis() as u64)
    }

    /// Stop every server thread and return the servers for inspection
    /// (reports, logs, tables), keyed by host.
    pub fn shutdown(mut self) -> Vec<(String, NapletServer)> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
        let mut out = Vec::new();
        for (host, handle) in self.threads.drain(..) {
            if let Ok(server) = handle.join() {
                out.push((host, server));
            }
        }
        // staged-but-never-started servers are returned too
        for (server, _, _) in self.staging.drain(..) {
            out.push((server.host().to_string(), server));
        }
        out
    }
}

#[allow(clippy::too_many_arguments)]
fn serve<T: Transport>(
    mut server: NapletServer,
    net: Arc<T>,
    rx: crossbeam::channel::Receiver<Frame>,
    mut timers: Vec<(Instant, LocalEvent)>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    obs: ObsSink,
    mut ctxs: CtxTable,
) -> NapletServer {
    // one encode scratch per server thread: every outgoing wire reuses
    // its capacity instead of growing a fresh Vec per send
    let mut scratch = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let now = Millis(epoch.elapsed().as_millis() as u64);
        // keep fault schedules in step with wall-clock-since-epoch time
        net.set_now(now.0);
        if let Ok(frame) = rx.recv_timeout(Duration::from_millis(1)) {
            match naplet_core::codec::from_bytes::<Wire>(&frame.payload) {
                Ok(wire) => {
                    let from = frame.from.clone();
                    if obs.ctx_enabled() {
                        if let Some(ctx) = &frame.ctx {
                            ctxs.adopt(ctx);
                        }
                        obs.emit_ctx(
                            now,
                            server.host(),
                            wire.subject(),
                            frame.ctx.as_ref(),
                            || TraceKind::WireRecv {
                                from: from.clone(),
                                label: wire.label().to_string(),
                            },
                        );
                    }
                    let outputs = server.handle(now, Input::Wire { from, wire });
                    enact(
                        server.host(),
                        net.as_ref(),
                        outputs,
                        &mut timers,
                        &mut scratch,
                        &obs,
                        &mut ctxs,
                        now,
                    );
                }
                Err(_) => { /* corrupt frame: drop */ }
            }
        }
        // fire due local events
        let now_i = Instant::now();
        let (ready, pending): (Vec<_>, Vec<_>) = timers.drain(..).partition(|(t, _)| *t <= now_i);
        timers = pending;
        for (_, event) in ready {
            let now = Millis(epoch.elapsed().as_millis() as u64);
            let outputs = server.handle(now, Input::Local(event));
            enact(
                server.host(),
                net.as_ref(),
                outputs,
                &mut timers,
                &mut scratch,
                &obs,
                &mut ctxs,
                now,
            );
        }
    }
    server
}

#[allow(clippy::too_many_arguments)]
fn enact<T: Transport>(
    host: &str,
    net: &T,
    outputs: Vec<Output>,
    timers: &mut Vec<(Instant, LocalEvent)>,
    scratch: &mut Vec<u8>,
    obs: &ObsSink,
    ctxs: &mut CtxTable,
    now: Millis,
) {
    for output in outputs {
        match output {
            Output::Send { to, wire } => {
                let attempt = wire.retry_attempt();
                if attempt > 1 {
                    net.stats().record_retransmit();
                }
                // encode into the reused scratch, then copy exactly the
                // payload's length into the owned frame buffer — the
                // repeated grow-and-copy of a cold Vec is what the
                // storm benchmarks flagged here
                if naplet_core::codec::to_bytes_into(&wire, scratch).is_ok() {
                    let mut frame = Frame::new(host, &to, wire.traffic_class(), scratch.clone());
                    if obs.ctx_enabled() {
                        let ctx = wire.subject().map(|id| {
                            let new_hop = matches!(&wire, Wire::Transfer(env) if env.attempt == 1);
                            ctxs.on_send(&id.to_string(), host, new_hop)
                        });
                        frame = frame.with_ctx(ctx.clone());
                        let bytes = frame.wire_len();
                        obs.emit_ctx(now, host, wire.subject(), ctx.as_ref(), || {
                            TraceKind::WireSend {
                                to: to.clone(),
                                label: wire.label().to_string(),
                                class: wire.traffic_class().label().to_string(),
                                bytes,
                                attempt,
                            }
                        });
                    }
                    let _ = net.send(frame);
                }
            }
            Output::Schedule { delay_ms, event } => {
                timers.push((Instant::now() + Duration::from_millis(delay_ms), event));
            }
            Output::FetchCode { from, bytes, id } => {
                let delay = net
                    .fetch(&from, host, TrafficClass::Code, bytes)
                    .ok()
                    .flatten()
                    .unwrap_or(0);
                timers.push((
                    Instant::now() + Duration::from_millis(delay),
                    LocalEvent::CodeReady { id },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::LocationMode;
    use naplet_core::behavior::NapletBehavior;
    use naplet_core::codebase::CodebaseRegistry;
    use naplet_core::context::NapletContext;
    use naplet_core::credential::SigningKey;
    use naplet_core::itinerary::{Itinerary, Pattern};
    use naplet_core::naplet::AgentKind;
    use naplet_core::value::Value;
    use naplet_net::LatencyModel;

    struct Greeter;
    impl NapletBehavior for Greeter {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet_core::error::Result<()> {
            ctx.report_home(Value::from(format!("hi from {}", ctx.host_name())))
        }
    }

    fn wait_for_reports(hosts: &[(String, NapletServer)], home: &str) -> Vec<Value> {
        hosts
            .iter()
            .find(|(h, _)| h == home)
            .map(|(_, s)| s.reports.iter().map(|(_, v)| v.clone()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn live_runtime_completes_a_journey_on_threads() {
        let mut reg = CodebaseRegistry::new();
        reg.register("greeter", 256, || Greeter);
        let fabric = Fabric::new(LatencyModel::Constant(1), naplet_net::Bandwidth(None), 2);
        let mut live = LiveRuntime::new(fabric, 0); // no real sleeps

        for host in ["home", "a", "b"] {
            let mut cfg = ServerConfig::open(host, LocationMode::HomeManagers);
            cfg.codebase = reg.clone();
            live.add_server(cfg);
        }
        let key = SigningKey::new("t", b"k");
        let it = Itinerary::new(Pattern::seq_of_hosts(&["a", "b"], None)).unwrap();
        let naplet = Naplet::create(
            &key,
            "t",
            "home",
            Millis(0),
            "greeter",
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        live.launch(naplet).unwrap();
        live.start();

        // poll until the journey finishes (bounded)
        let deadline = Instant::now() + Duration::from_secs(5);
        let servers = loop {
            std::thread::sleep(Duration::from_millis(20));
            if Instant::now() > deadline {
                break live.shutdown();
            }
            // cannot peek while running; rely on time then shut down
            if Instant::now() > deadline - Duration::from_millis(4_800) {
                // ~200ms elapsed: plenty for 2 hops with 0-scale delays
                break live.shutdown();
            }
        };
        let reports = wait_for_reports(&servers, "home");
        assert_eq!(reports.len(), 2, "reports: {reports:?}");
        assert!(reports.contains(&Value::from("hi from a")));
        assert!(reports.contains(&Value::from("hi from b")));
    }

    #[test]
    fn launch_after_start_is_rejected() {
        let fabric = Fabric::new(LatencyModel::Constant(1), naplet_net::Bandwidth(None), 2);
        let mut live = LiveRuntime::new(fabric, 0);
        let cfg = ServerConfig::open("home", LocationMode::ForwardingTrace);
        live.add_server(cfg);
        live.start();
        let key = SigningKey::new("t", b"k");
        let it = Itinerary::new(Pattern::singleton("home")).unwrap();
        let naplet = Naplet::create(
            &key,
            "t",
            "home",
            Millis(0),
            "x",
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        assert!(live.launch(naplet).is_err());
        live.shutdown();
    }
}
