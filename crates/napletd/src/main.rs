//! `napletd` — one NapletServer as a long-running OS process.
//!
//! The deployment shape the paper describes: every node of the agent
//! flow space runs its own daemon, and naplets migrate between them
//! over real sockets. All daemons in a cluster share one bootstrap
//! file (see `naplet_server::bootstrap`); each is told which `[[node]]`
//! entry it is with `--node`.
//!
//! ```text
//! napletd --config cluster3.toml --node alpha     # serve
//! napletd --check-config cluster3.toml            # validate and exit
//! ```
//!
//! SIGTERM (and SIGINT) trigger a cooperative shutdown: the serve loop
//! drains, the write-through journal is left consistent for the next
//! incarnation to replay, and a final status summary is printed.
//! SIGUSR1 dumps the flight recorder (the bounded ring of recent trace
//! events) to `<trace_dir>/<node>.trace.json` without disturbing the
//! daemon; the same dump is written on clean shutdown and from the
//! panic hook, so a crashed daemon leaves its last moments readable.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use naplet_server::bootstrap::BootstrapConfig;
use naplet_server::daemon::Daemon;

/// Raised by the signal handler; bridged onto the daemon's own
/// cooperative shutdown flag by a watcher thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Raised by SIGUSR1; the watcher thread writes the flight dump and
/// clears it.
static DUMP_TRACE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(signum: i32) {
    // async-signal-safe: a single atomic store
    if signum == SIGUSR1 {
        DUMP_TRACE.store(true, Ordering::Relaxed);
    } else {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
}

const SIGUSR1: i32 = 10;

/// Install `on_signal` for SIGTERM, SIGINT, and SIGUSR1. `std` links
/// libc on every supported platform, so the raw `signal(2)` binding
/// avoids a dependency; the handler does nothing but flip one atomic.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
            signal(SIGUSR1, on_signal);
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: napletd --config <file> --node <name>\n       napletd --check-config <file>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // --check-config: validate and report every problem, then exit
    if let Some(i) = args.iter().position(|a| a == "--check-config") {
        let Some(path) = args.get(i + 1) else {
            return usage();
        };
        return match BootstrapConfig::load(path) {
            Ok(config) => {
                println!(
                    "{path}: ok ({} node{})",
                    config.nodes.len(),
                    if config.nodes.len() == 1 { "" } else { "s" }
                );
                for node in &config.nodes {
                    println!("  {} listens on {}", node.name, node.listen);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: invalid cluster config:");
                for line in e.to_string().lines() {
                    eprintln!("  {line}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (Some(config_path), Some(node)) = (flag_value("--config"), flag_value("--node")) else {
        return usage();
    };

    let config = match BootstrapConfig::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("napletd: invalid cluster config `{config_path}`:\n{e}");
            return ExitCode::FAILURE;
        }
    };

    install_signal_handlers();
    let daemon = match Daemon::start(&config, &node) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("napletd[{node}]: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovery = daemon.recovery();
    println!(
        "napletd[{node}]: serving on {} ({} peers); journal replay rehydrated {} \
         (suppressed {}, resumed handoffs {})",
        config.node(&node).expect("started node exists").listen,
        config.peers_for(&node).len(),
        recovery.rehydrated,
        recovery.replays_suppressed,
        recovery.handoffs_resumed,
    );

    // a panicking daemon still leaves its last moments readable: the
    // hook writes the flight dump before the default handler unwinds
    let dumper = daemon.trace_dumper();
    {
        let dumper = dumper.clone();
        let node = node.clone();
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            match dumper.write() {
                Ok(path) => eprintln!(
                    "napletd[{node}]: panic — trace dumped to {}",
                    path.display()
                ),
                Err(e) => eprintln!("napletd[{node}]: panic — trace dump failed: {e}"),
            }
            default_hook(info);
        }));
    }

    // fault-injection hook for the acceptance suite: prove a panicking
    // daemon leaves a readable dump (the hook fires for any thread)
    if let Some(ms) = std::env::var("NAPLETD_PANIC_AFTER_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            panic!("injected test panic (NAPLETD_PANIC_AFTER_MS)");
        });
    }

    // bridge the signal flags onto the daemon: SIGTERM/SIGINT raise
    // the cooperative shutdown flag, SIGUSR1 writes a flight dump
    let shutdown = daemon.shutdown_flag();
    {
        let dumper = dumper.clone();
        let node = node.clone();
        std::thread::spawn(move || {
            while !SHUTDOWN.load(Ordering::Relaxed) {
                if DUMP_TRACE.swap(false, Ordering::Relaxed) {
                    match dumper.write() {
                        Ok(path) => {
                            println!("napletd[{node}]: trace dumped to {}", path.display())
                        }
                        Err(e) => eprintln!("napletd[{node}]: trace dump failed: {e}"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            shutdown.store(true, Ordering::Relaxed);
        });
    }

    match daemon.run() {
        Ok(summary) => {
            let s = &summary.status;
            println!(
                "napletd[{node}]: clean shutdown at {}ms — residents {}, parked {}, \
                 journal {} entries / {} bytes, leases held {} expired {} redispatched {} \
                 lost {}, reports {}, alerts {}",
                s.at.0,
                s.residents.len(),
                s.parked,
                s.journal_entries,
                s.journal_bytes,
                s.leases_held,
                s.leases_expired,
                s.leases_redispatched,
                s.leases_lost,
                summary.reports.len(),
                summary.alerts,
            );
            if let Some(path) = &summary.trace_path {
                println!("napletd[{node}]: trace dumped to {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("napletd[{node}]: shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}
