//! Inter-naplet messages (paper §2.2, §4.2).
//!
//! Two message classes exist:
//!
//! * **System** messages control a naplet (callback, terminate,
//!   suspend, resume). On receipt the Messenger *interrupts* the
//!   running naplet; how the naplet reacts is defined by its
//!   `on_interrupt` hook.
//! * **User** messages carry application data. The Messenger deposits
//!   them in the target's mailbox; the naplet decides when to check.
//!
//! A [`Message`] is the full envelope the post office routes; delivery
//! confirmations are part of the messenger protocol (naplet-server
//! crate), not of the envelope.

use serde::{Deserialize, Serialize};

use crate::clock::Millis;
use crate::id::NapletId;
use crate::value::Value;

/// Who originated a message: a peer naplet, or the naplet's owner
/// (home manager / listener side) exercising remote control.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sender {
    /// A peer naplet.
    Naplet(NapletId),
    /// The owner/manager principal at the named host.
    Owner(String),
}

impl Sender {
    /// Compact display form for logs.
    pub fn short(&self) -> String {
        match self {
            Sender::Naplet(id) => id.short(),
            Sender::Owner(host) => format!("owner@{host}"),
        }
    }
}

/// Control verbs delivered as system messages. The reaction to
/// `Callback` and `Custom` is application-defined via `on_interrupt`;
/// `Terminate`/`Suspend`/`Resume` are also enforced by the
/// NapletMonitor itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlVerb {
    /// Ask the naplet to report home.
    Callback,
    /// Stop and destroy the naplet.
    Terminate,
    /// Pause execution (monitor stops scheduling the naplet).
    Suspend,
    /// Resume a suspended naplet.
    Resume,
    /// Application-defined control signal.
    Custom(String),
}

/// Message payload: system control or user data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Control message — interrupts the naplet thread on receipt.
    System(ControlVerb),
    /// Data message — lands in the mailbox.
    User(Value),
}

impl Payload {
    /// True for system (control) payloads.
    pub fn is_system(&self) -> bool {
        matches!(self, Payload::System(_))
    }
}

/// The envelope routed by the post-office messenger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Per-sender unique message number (sender, seq) identifies a
    /// message for confirmation tracking.
    pub seq: u64,
    /// Originator.
    pub from: Sender,
    /// Target naplet.
    pub to: NapletId,
    /// Send instant (sender's clock).
    pub sent_at: Millis,
    /// System or user payload.
    pub payload: Payload,
    /// Number of servers this message has been forwarded through while
    /// chasing a moving naplet (paper §4.2 case 2). Incremented by each
    /// forwarding messenger; capped by the messenger to break cycles.
    pub forward_hops: u32,
}

impl Message {
    /// Construct a user (data) message.
    pub fn user(seq: u64, from: Sender, to: NapletId, sent_at: Millis, body: Value) -> Message {
        Message {
            seq,
            from,
            to,
            sent_at,
            payload: Payload::User(body),
            forward_hops: 0,
        }
    }

    /// Construct a system (control) message.
    pub fn system(
        seq: u64,
        from: Sender,
        to: NapletId,
        sent_at: Millis,
        verb: ControlVerb,
    ) -> Message {
        Message {
            seq,
            from,
            to,
            sent_at,
            payload: Payload::System(verb),
            forward_hops: 0,
        }
    }

    /// Stable identity used for delivery confirmation and duplicate
    /// suppression.
    pub fn identity(&self) -> (Sender, u64) {
        (self.from.clone(), self.seq)
    }
}

/// A naplet's mailbox: FIFO of user messages awaiting a `recv`.
/// System messages never enter the mailbox — they interrupt instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Mailbox {
    queue: Vec<Message>,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Deposit a message (messenger-side).
    pub fn deposit(&mut self, msg: Message) {
        debug_assert!(
            !msg.payload.is_system(),
            "system messages interrupt, not queue"
        );
        self.queue.push(msg);
    }

    /// Take the oldest message, if any (naplet-side `getMessage`).
    pub fn take(&mut self) -> Option<Message> {
        if self.queue.is_empty() {
            None
        } else {
            Some(self.queue.remove(0))
        }
    }

    /// Peek without removing.
    pub fn peek(&self) -> Option<&Message> {
        self.queue.first()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no messages wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drain all queued messages in arrival order. Used when a special
    /// mailbox (early messages, §4.2 case 3) is dumped into the real
    /// mailbox on naplet arrival.
    pub fn drain(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "h", Millis(n)).unwrap()
    }

    #[test]
    fn payload_classes() {
        assert!(Payload::System(ControlVerb::Terminate).is_system());
        assert!(!Payload::User(Value::Nil).is_system());
    }

    #[test]
    fn mailbox_is_fifo() {
        let mut mb = Mailbox::new();
        for i in 0..3 {
            mb.deposit(Message::user(
                i,
                Sender::Owner("home".into()),
                nid(1),
                Millis(i),
                Value::Int(i as i64),
            ));
        }
        assert_eq!(mb.len(), 3);
        assert_eq!(mb.peek().unwrap().seq, 0);
        assert_eq!(mb.take().unwrap().seq, 0);
        assert_eq!(mb.take().unwrap().seq, 1);
        assert_eq!(mb.take().unwrap().seq, 2);
        assert!(mb.take().is_none());
        assert!(mb.is_empty());
    }

    #[test]
    fn drain_preserves_order() {
        let mut mb = Mailbox::new();
        for i in 0..4 {
            mb.deposit(Message::user(
                i,
                Sender::Naplet(nid(9)),
                nid(1),
                Millis(0),
                Value::Nil,
            ));
        }
        let all = mb.drain();
        assert_eq!(all.len(), 4);
        assert!(mb.is_empty());
        assert_eq!(all.iter().map(|m| m.seq).collect::<Vec<_>>(), [0, 1, 2, 3]);
    }

    #[test]
    fn identity_distinguishes_senders() {
        let a = Message::user(7, Sender::Naplet(nid(1)), nid(2), Millis(0), Value::Nil);
        let b = Message::user(7, Sender::Naplet(nid(3)), nid(2), Millis(0), Value::Nil);
        assert_ne!(a.identity(), b.identity());
        assert_eq!(a.identity(), a.clone().identity());
    }

    #[test]
    fn sender_short_forms() {
        assert_eq!(Sender::Owner("home".into()).short(), "owner@home");
        assert!(Sender::Naplet(nid(1)).short().starts_with("u@h"));
    }

    #[test]
    fn codec_round_trip() {
        let m = Message::system(
            3,
            Sender::Owner("home".into()),
            nid(1),
            Millis(5),
            ControlVerb::Custom("recalibrate".into()),
        );
        let bytes = crate::codec::to_bytes(&m).unwrap();
        let back: Message = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }
}
