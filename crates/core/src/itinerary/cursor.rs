//! Runtime itinerary traversal (paper §3).
//!
//! A [`Cursor`] is the serializable "where am I in the journey" state a
//! naplet carries. Servers drive it: [`Cursor::next`] yields the next
//! [`Step`] — travel to a host, fork clones for a `Par`, run a
//! post-action, or finish. Guards are evaluated at decision time
//! against the naplet's state and hop count, so the same pattern can
//! unfold differently depending on what the agent has learned
//! (conditional visits).
//!
//! ## `Par` semantics
//!
//! "par(P,Q) refers to a pattern that the visits of P and Q are carried
//! out in parallel by a naplet and its clone." On reaching a `Par` the
//! cursor emits [`Step::Fork`] carrying one fresh cursor per *extra*
//! branch; the emitting naplet itself continues with the first branch
//! **and whatever follows the `Par`**, while spawned clones finish when
//! their branch completes. This makes the originator (heritage `.0`)
//! the natural carrier of sequels and final actions.

use serde::{Deserialize, Serialize};

use crate::state::NapletState;

use super::pattern::{ActionSpec, Pattern};

/// Environment a guard sees at decision time.
pub struct GuardEnv<'a> {
    /// The naplet's own state.
    pub state: &'a NapletState,
    /// Completed visits so far (from the navigation log).
    pub hops: usize,
    /// Hosts the reliable-transfer layer has given up on (navigation-log
    /// failure entries). An `Alt` never chooses an alternative whose
    /// entry visit targets one of these, which is how migration failures
    /// fall back to the next branch. Plain `Seq` visits are *not*
    /// skipped — the server parks the naplet instead, so a hard
    /// requirement is never silently dropped.
    pub unreachable: &'a [String],
}

/// One traversal directive for the hosting server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Travel to `host`; after the naplet's business logic runs there,
    /// execute `action` (the visit's `T`).
    Visit {
        /// Destination host.
        host: String,
        /// Post-action for this visit, if any.
        action: Option<ActionSpec>,
    },
    /// Spawn one clone per cursor in `clones`; the current naplet
    /// continues traversal (first branch already queued internally).
    Fork {
        /// Traversal state for each spawned clone.
        clones: Vec<Cursor>,
    },
    /// Run a pattern-level action without travelling (e.g. a `Par`
    /// branch's completion action or the itinerary's final action).
    Action(ActionSpec),
    /// The journey is complete.
    Done,
}

/// A pending unit of traversal work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WorkItem {
    Pat(Pattern),
    Act(ActionSpec),
}

/// Serializable traversal state. The stack's top is its last element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Cursor {
    stack: Vec<WorkItem>,
}

impl Cursor {
    /// Begin traversing `pattern`; `final_action` (if any) runs after
    /// everything else, on the originator branch.
    pub(super) fn begin(pattern: Pattern, final_action: Option<ActionSpec>) -> Cursor {
        let mut stack = Vec::with_capacity(2);
        if let Some(act) = final_action {
            stack.push(WorkItem::Act(act));
        }
        stack.push(WorkItem::Pat(pattern));
        Cursor { stack }
    }

    /// A cursor that is already finished (used for clones of empty
    /// branches and as a default).
    pub fn done() -> Cursor {
        Cursor { stack: Vec::new() }
    }

    /// True when the journey has no remaining work.
    pub fn is_done(&self) -> bool {
        self.stack.is_empty()
    }

    /// Advance to the next directive, consuming skipped visits.
    pub fn next(&mut self, env: &GuardEnv<'_>) -> Step {
        loop {
            let Some(item) = self.stack.pop() else {
                return Step::Done;
            };
            match item {
                WorkItem::Act(a) => return Step::Action(a),
                WorkItem::Pat(Pattern::Singleton(v)) => {
                    if v.guard.eval(env) {
                        return Step::Visit {
                            host: v.host,
                            action: v.action,
                        };
                    }
                    // guard failed: conditional visit skipped
                }
                WorkItem::Pat(Pattern::Seq(parts)) => {
                    // push in reverse so the first part is on top
                    for p in parts.into_iter().rev() {
                        self.stack.push(WorkItem::Pat(p));
                    }
                }
                WorkItem::Pat(Pattern::Alt(alts)) => {
                    // take the first alternative whose entry guard
                    // passes; when none does, the Alt is skipped whole
                    if let Some(chosen) = alts.into_iter().find(|p| entry_guard_passes(p, env)) {
                        self.stack.push(WorkItem::Pat(chosen));
                    }
                }
                WorkItem::Pat(Pattern::Par {
                    mut branches,
                    after,
                }) => {
                    if branches.is_empty() {
                        continue;
                    }
                    let first = branches.remove(0);
                    // spawned clones: just their branch + completion action
                    let clones: Vec<Cursor> = branches
                        .into_iter()
                        .map(|b| {
                            let mut stack = Vec::with_capacity(2);
                            if let Some(a) = after.clone() {
                                stack.push(WorkItem::Act(a));
                            }
                            stack.push(WorkItem::Pat(b));
                            Cursor { stack }
                        })
                        .collect();
                    // the emitting naplet continues with branch 0 (and
                    // its completion action) before the existing sequel
                    if let Some(a) = after {
                        self.stack.push(WorkItem::Act(a));
                    }
                    self.stack.push(WorkItem::Pat(first));
                    if !clones.is_empty() {
                        return Step::Fork { clones };
                    }
                }
            }
        }
    }

    /// The host of the next visit *if* traversal were advanced now,
    /// without consuming anything. Forks and actions yield `None`.
    pub fn peek_next_host(&self, env: &GuardEnv<'_>) -> Option<String> {
        let mut probe = self.clone();
        match probe.next(env) {
            Step::Visit { host, .. } => Some(host),
            _ => None,
        }
    }

    /// Remaining work items (diagnostic).
    pub fn remaining_depth(&self) -> usize {
        self.stack.len()
    }
}

/// Would this pattern's first reachable visit run, under `env`?
/// Decision procedure for `Alt`: `Seq` looks at its head, `Alt`/`Par`
/// accept when any alternative/branch could start.
fn entry_guard_passes(p: &Pattern, env: &GuardEnv<'_>) -> bool {
    match p {
        Pattern::Singleton(v) => !env.unreachable.iter().any(|h| h == &v.host) && v.guard.eval(env),
        Pattern::Seq(parts) => parts.first().is_some_and(|p| entry_guard_passes(p, env)),
        Pattern::Alt(alts) => alts.iter().any(|p| entry_guard_passes(p, env)),
        Pattern::Par { branches, .. } => branches.iter().any(|p| entry_guard_passes(p, env)),
    }
}

#[cfg(test)]
mod tests {
    use super::super::guard::Guard;
    use super::super::pattern::Visit;
    use super::super::Itinerary;
    use super::*;

    fn env(state: &NapletState, hops: usize) -> GuardEnv<'_> {
        GuardEnv {
            state,
            hops,
            unreachable: &[],
        }
    }

    /// Drive a cursor to completion with all guards implicitly passing,
    /// collecting (hosts, actions) in order; panics on Fork.
    fn run_linear(mut c: Cursor, state: &NapletState) -> (Vec<String>, Vec<ActionSpec>) {
        let mut hosts = Vec::new();
        let mut actions = Vec::new();
        let mut hops = 0;
        loop {
            match c.next(&env(state, hops)) {
                Step::Visit { host, action } => {
                    hosts.push(host);
                    hops += 1;
                    if let Some(a) = action {
                        actions.push(a);
                    }
                }
                Step::Action(a) => actions.push(a),
                Step::Fork { .. } => panic!("unexpected fork in linear itinerary"),
                Step::Done => return (hosts, actions),
            }
        }
    }

    #[test]
    fn sequence_visits_in_order() {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["a", "b", "c"], None)).unwrap();
        let state = NapletState::new();
        let (hosts, actions) = run_linear(it.start(), &state);
        assert_eq!(hosts, ["a", "b", "c"]);
        assert!(actions.is_empty());
    }

    #[test]
    fn per_visit_actions_emitted() {
        let it = Itinerary::new(Pattern::seq_of_hosts(
            &["a", "b"],
            Some(ActionSpec::DataComm),
        ))
        .unwrap();
        let state = NapletState::new();
        let (hosts, actions) = run_linear(it.start(), &state);
        assert_eq!(hosts.len(), 2);
        assert_eq!(actions, vec![ActionSpec::DataComm, ActionSpec::DataComm]);
    }

    #[test]
    fn final_action_runs_last() {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["a"], None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        let state = NapletState::new();
        let mut c = it.start();
        assert!(matches!(c.next(&env(&state, 0)), Step::Visit { .. }));
        assert_eq!(
            c.next(&env(&state, 1)),
            Step::Action(ActionSpec::ReportHome)
        );
        assert_eq!(c.next(&env(&state, 1)), Step::Done);
        assert!(c.is_done());
    }

    #[test]
    fn guarded_visits_skip_when_found() {
        // sequential search: stop visiting once state says found
        let keep = Guard::not(Guard::state_truthy("found"));
        let it = Itinerary::new(Pattern::conditional_route(&["a", "b", "c"], keep)).unwrap();
        let mut state = NapletState::new();
        let mut c = it.start();

        let Step::Visit { host, .. } = c.next(&env(&state, 0)) else {
            panic!()
        };
        assert_eq!(host, "a");
        // found it at `a`: remaining conditional visits are skipped
        state.set("found", true);
        assert_eq!(c.next(&env(&state, 1)), Step::Done);
    }

    #[test]
    fn alt_takes_first_passing_alternative() {
        let p = Pattern::alt(
            Pattern::visit(Visit::to("mirror").when(Guard::state_truthy("mirror-up"))),
            Pattern::singleton("origin"),
        );
        let it = Itinerary::new(p).unwrap();

        // mirror down → origin
        let state = NapletState::new();
        let (hosts, _) = run_linear(it.start(), &state);
        assert_eq!(hosts, ["origin"]);

        // mirror up → mirror
        let mut state = NapletState::new();
        state.set("mirror-up", true);
        let (hosts, _) = run_linear(it.start(), &state);
        assert_eq!(hosts, ["mirror"]);
    }

    #[test]
    fn alt_avoids_unreachable_alternative() {
        let p = Pattern::alt(Pattern::singleton("primary"), Pattern::singleton("backup"));
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();

        // with `primary` marked unreachable, the Alt falls back
        let unreachable = vec!["primary".to_string()];
        let mut c = it.start();
        let step = c.next(&GuardEnv {
            state: &state,
            hops: 0,
            unreachable: &unreachable,
        });
        assert_eq!(
            step,
            Step::Visit {
                host: "backup".to_string(),
                action: None
            }
        );

        // a plain Seq visit is NOT skipped by unreachability
        let it = Itinerary::new(Pattern::seq_of_hosts(&["primary", "b"], None)).unwrap();
        let mut c = it.start();
        let step = c.next(&GuardEnv {
            state: &state,
            hops: 0,
            unreachable: &unreachable,
        });
        assert_eq!(
            step,
            Step::Visit {
                host: "primary".to_string(),
                action: None
            }
        );
    }

    #[test]
    fn alt_with_no_passing_alternative_is_skipped() {
        let p = Pattern::seq2(
            Pattern::alt(
                Pattern::visit(Visit::to("x").when(Guard::Never)),
                Pattern::visit(Visit::to("y").when(Guard::Never)),
            ),
            Pattern::singleton("z"),
        );
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let (hosts, _) = run_linear(it.start(), &state);
        assert_eq!(hosts, ["z"]);
    }

    #[test]
    fn alt_entry_guard_looks_into_seq_head() {
        let p = Pattern::alt(
            Pattern::seq2(
                Pattern::visit(Visit::to("s1").when(Guard::Never)),
                Pattern::singleton("s2"),
            ),
            Pattern::singleton("fallback"),
        );
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let (hosts, _) = run_linear(it.start(), &state);
        assert_eq!(hosts, ["fallback"]);
    }

    #[test]
    fn par_forks_clones_and_continues_first_branch() {
        // par(seq(s0,s1), seq(s2,s3)) — paper Example 3
        let p = Pattern::par(vec![
            Pattern::seq_of_hosts(&["s0", "s1"], None),
            Pattern::seq_of_hosts(&["s2", "s3"], None),
        ]);
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let mut c = it.start();

        let Step::Fork { clones } = c.next(&env(&state, 0)) else {
            panic!("expected fork")
        };
        assert_eq!(clones.len(), 1);

        // originator walks s0, s1
        let (hosts, _) = run_linear(c, &state);
        assert_eq!(hosts, ["s0", "s1"]);
        // clone walks s2, s3
        let (hosts, _) = run_linear(clones.into_iter().next().unwrap(), &state);
        assert_eq!(hosts, ["s2", "s3"]);
    }

    #[test]
    fn par_completion_action_runs_on_every_executor() {
        let p = Pattern::par_with_action(
            vec![Pattern::singleton("a"), Pattern::singleton("b")],
            ActionSpec::DataComm,
        );
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let mut c = it.start();
        let Step::Fork { clones } = c.next(&env(&state, 0)) else {
            panic!()
        };

        let (hosts, actions) = run_linear(c, &state);
        assert_eq!(hosts, ["a"]);
        assert_eq!(actions, vec![ActionSpec::DataComm]);

        let (hosts, actions) = run_linear(clones.into_iter().next().unwrap(), &state);
        assert_eq!(hosts, ["b"]);
        assert_eq!(actions, vec![ActionSpec::DataComm]);
    }

    #[test]
    fn sequel_after_par_stays_with_originator() {
        let p = Pattern::seq2(
            Pattern::par2(Pattern::singleton("a"), Pattern::singleton("b")),
            Pattern::singleton("home-stretch"),
        );
        let it = Itinerary::new(p)
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        let state = NapletState::new();
        let mut c = it.start();
        let Step::Fork { clones } = c.next(&env(&state, 0)) else {
            panic!()
        };

        // clone: only its branch, no sequel, no final action
        let (hosts, actions) = run_linear(clones.into_iter().next().unwrap(), &state);
        assert_eq!(hosts, ["b"]);
        assert!(actions.is_empty());

        // originator: branch 0, then sequel, then final action
        let (hosts, actions) = run_linear(c, &state);
        assert_eq!(hosts, ["a", "home-stretch"]);
        assert_eq!(actions, vec![ActionSpec::ReportHome]);
    }

    #[test]
    fn broadcast_forks_n_minus_one_clones() {
        let it = Itinerary::new(Pattern::par_singletons(
            &["d1", "d2", "d3", "d4", "d5"],
            Some(ActionSpec::ReportHome),
        ))
        .unwrap();
        let state = NapletState::new();
        let mut c = it.start();
        let Step::Fork { clones } = c.next(&env(&state, 0)) else {
            panic!()
        };
        assert_eq!(clones.len(), 4);
    }

    #[test]
    fn hop_budget_guard_uses_env_hops() {
        let p = Pattern::Seq(
            ["a", "b", "c", "d"]
                .iter()
                .map(|h| Pattern::visit(Visit::to(*h).when(Guard::HopsLessThan(2))))
                .collect(),
        );
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let mut c = it.start();
        let mut hosts = Vec::new();
        let mut hops = 0;
        loop {
            match c.next(&env(&state, hops)) {
                Step::Visit { host, .. } => {
                    hosts.push(host);
                    hops += 1;
                }
                Step::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(hosts, ["a", "b"]);
    }

    #[test]
    fn cursor_serializes_mid_journey() {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["a", "b", "c"], None)).unwrap();
        let state = NapletState::new();
        let mut c = it.start();
        let _ = c.next(&env(&state, 0)); // consume visit to `a`

        let bytes = crate::codec::to_bytes(&c).unwrap();
        let mut back: Cursor = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);

        let Step::Visit { host, .. } = back.next(&env(&state, 1)) else {
            panic!()
        };
        assert_eq!(host, "b");
    }

    #[test]
    fn peek_does_not_consume() {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["a", "b"], None)).unwrap();
        let state = NapletState::new();
        let c = it.start();
        assert_eq!(c.peek_next_host(&env(&state, 0)), Some("a".to_string()));
        assert_eq!(c.peek_next_host(&env(&state, 0)), Some("a".to_string()));
        assert_eq!(c.remaining_depth(), 1);
    }

    #[test]
    fn done_cursor_stays_done() {
        let mut c = Cursor::done();
        let state = NapletState::new();
        assert!(c.is_done());
        assert_eq!(c.next(&env(&state, 0)), Step::Done);
        assert_eq!(c.next(&env(&state, 0)), Step::Done);
    }
}
