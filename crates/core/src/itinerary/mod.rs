//! Structured itinerary mechanism (paper §3).
//!
//! An itinerary separates *where an agent travels* from *what it does*
//! (its business logic). Following the paper's BNF:
//!
//! ```text
//! <Visit V>            ::= <S> | <S; T> | <C→S; T>
//! <ItineraryPattern P> ::= Singleton(V) | Seq(P, P) | Alt(P, P) | Par(P, P)
//! ```
//!
//! * `S` — server-specific business logic (the naplet's `on_start`);
//! * `T` — an itinerary-dependent post-action ([`ActionSpec`]) run
//!   after the visit, used for inter-agent communication and
//!   synchronization;
//! * `C` — a guard condition ([`Guard`]) making the visit conditional.
//!
//! [`Pattern`] is the static, composable travel plan; [`Cursor`] is the
//! serializable runtime traversal state that moves with the naplet and
//! tells the server what to do next ([`Step`]): travel somewhere, fork
//! clones for a `Par`, run a pattern-level action, or finish.

mod cursor;
mod guard;
mod pattern;

pub use cursor::{Cursor, GuardEnv, Step};
pub use guard::Guard;
pub use pattern::{ActionSpec, Pattern, Visit};

use serde::{Deserialize, Serialize};

use crate::error::Result;

/// A complete itinerary: a validated pattern plus an optional final
/// action run when the whole journey completes (the paper's Example 1
/// reports results home after the last visit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Itinerary {
    pattern: Pattern,
    final_action: Option<ActionSpec>,
}

impl Itinerary {
    /// Build an itinerary from a pattern, validating it.
    pub fn new(pattern: Pattern) -> Result<Itinerary> {
        pattern.validate()?;
        Ok(Itinerary {
            pattern,
            final_action: None,
        })
    }

    /// Attach an action to run after the itinerary completes.
    pub fn with_final_action(mut self, action: ActionSpec) -> Itinerary {
        self.final_action = Some(action);
        self
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The final action, if any.
    pub fn final_action(&self) -> Option<&ActionSpec> {
        self.final_action.as_ref()
    }

    /// Begin traversal: the serializable cursor that travels with the
    /// naplet.
    pub fn start(&self) -> Cursor {
        Cursor::begin(self.pattern.clone(), self.final_action.clone())
    }

    /// All hosts this itinerary could ever visit (deduplicated,
    /// deterministic order).
    pub fn hosts(&self) -> Vec<String> {
        self.pattern.hosts()
    }

    /// Upper bound on the number of visits a single naplet (one branch
    /// through every `Alt`/`Par`) performs.
    pub fn max_hops_per_agent(&self) -> usize {
        self.pattern.max_hops_per_agent()
    }

    /// Number of naplets (original + clones) a full traversal employs
    /// when every guard passes: each `Par` of `k` branches adds `k-1`
    /// clones.
    pub fn agents_required(&self) -> usize {
        self.pattern.agents_required()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_single_agent_sequence() {
        // "an information collection application over s1..sn, a single
        // agent accumulates information, results reported after the
        // last visit"
        let servers = ["s1", "s2", "s3"];
        let it = Itinerary::new(Pattern::seq_of_hosts(&servers, None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        assert_eq!(it.hosts(), ["s1", "s2", "s3"]);
        assert_eq!(it.max_hops_per_agent(), 3);
        assert_eq!(it.agents_required(), 1);
    }

    #[test]
    fn paper_example_2_parallel_broadcast() {
        // one singleton per server, visited by clones in parallel, each
        // reporting home directly
        let servers = ["s1", "s2", "s3", "s4"];
        let it = Itinerary::new(Pattern::par_singletons(
            &servers,
            Some(ActionSpec::ReportHome),
        ))
        .unwrap();
        assert_eq!(it.agents_required(), 4);
        assert_eq!(it.max_hops_per_agent(), 1);
    }

    #[test]
    fn paper_example_3_par_of_seqs() {
        // par(seq(s0, s1), seq(s2, s3)) — four servers, two naplets
        let p = Pattern::par(vec![
            Pattern::seq_of_hosts(&["s0", "s1"], Some(ActionSpec::DataComm)),
            Pattern::seq_of_hosts(&["s2", "s3"], Some(ActionSpec::DataComm)),
        ]);
        let it = Itinerary::new(p).unwrap();
        assert_eq!(it.agents_required(), 2);
        assert_eq!(it.max_hops_per_agent(), 2);
        assert_eq!(it.hosts(), ["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(Itinerary::new(Pattern::seq(vec![])).is_err());
        assert!(Itinerary::new(Pattern::par(vec![])).is_err());
    }

    #[test]
    fn codec_round_trip() {
        let it = Itinerary::new(Pattern::alt(
            Pattern::singleton("fast-mirror"),
            Pattern::singleton("origin"),
        ))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
        let bytes = crate::codec::to_bytes(&it).unwrap();
        let back: Itinerary = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, it);
    }
}
