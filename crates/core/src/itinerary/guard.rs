//! Guard conditions for conditional visits (`<C→S; T>`, paper §3).
//!
//! A guard is a serializable predicate evaluated just before a visit
//! against the naplet's own state and travel history. The paper's
//! motivating case: "in a mobile agent-based sequential search
//! application, the agent will search along its route until the end of
//! its route or the search is completed" — i.e. every visit after the
//! first is guarded on *search not yet completed*. That guard is
//! expressed here as `Guard::not(Guard::state_truthy("found"))`.

use serde::{Deserialize, Serialize};

use crate::value::Value;

use super::cursor::GuardEnv;

/// Serializable guard expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Guard {
    /// Always visit (the unconditional `<S; T>` case).
    #[default]
    Always,
    /// Never visit (useful for disabling branches in tests/ablations).
    Never,
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction over all sub-guards (true when empty).
    All(Vec<Guard>),
    /// Disjunction over sub-guards (false when empty).
    Any(Vec<Guard>),
    /// True when the named state entry is truthy ([`Value::is_truthy`]).
    StateTruthy(String),
    /// True when the named state entry equals the given value.
    StateEquals(String, Value),
    /// True while the naplet has completed fewer than `n` visits.
    HopsLessThan(u32),
}

impl Guard {
    /// Negate a guard. (Named after the paper's condition algebra, not
    /// `std::ops::Not` — guards negate by value at construction time.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(g: Guard) -> Guard {
        Guard::Not(Box::new(g))
    }

    /// Shorthand for [`Guard::StateTruthy`].
    pub fn state_truthy(key: &str) -> Guard {
        Guard::StateTruthy(key.to_string())
    }

    /// Shorthand for [`Guard::StateEquals`].
    pub fn state_equals(key: &str, value: impl Into<Value>) -> Guard {
        Guard::StateEquals(key.to_string(), value.into())
    }

    /// Evaluate against the naplet's current environment.
    pub fn eval(&self, env: &GuardEnv<'_>) -> bool {
        match self {
            Guard::Always => true,
            Guard::Never => false,
            Guard::Not(g) => !g.eval(env),
            Guard::All(gs) => gs.iter().all(|g| g.eval(env)),
            Guard::Any(gs) => gs.iter().any(|g| g.eval(env)),
            Guard::StateTruthy(key) => env.state.get(key).is_truthy(),
            Guard::StateEquals(key, v) => &env.state.get(key) == v,
            Guard::HopsLessThan(n) => env.hops < *n as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NapletState;

    fn env_with(state: &NapletState, hops: usize) -> GuardEnv<'_> {
        GuardEnv {
            state,
            hops,
            unreachable: &[],
        }
    }

    #[test]
    fn constants() {
        let s = NapletState::new();
        let env = env_with(&s, 0);
        assert!(Guard::Always.eval(&env));
        assert!(!Guard::Never.eval(&env));
        assert!(Guard::not(Guard::Never).eval(&env));
    }

    #[test]
    fn boolean_algebra() {
        let s = NapletState::new();
        let env = env_with(&s, 0);
        assert!(Guard::All(vec![]).eval(&env));
        assert!(!Guard::Any(vec![]).eval(&env));
        assert!(Guard::All(vec![Guard::Always, Guard::Always]).eval(&env));
        assert!(!Guard::All(vec![Guard::Always, Guard::Never]).eval(&env));
        assert!(Guard::Any(vec![Guard::Never, Guard::Always]).eval(&env));
    }

    #[test]
    fn state_predicates() {
        let mut s = NapletState::new();
        s.set("found", true);
        s.set("target", "router-7");
        let env = env_with(&s, 0);
        assert!(Guard::state_truthy("found").eval(&env));
        assert!(!Guard::state_truthy("missing").eval(&env));
        assert!(Guard::state_equals("target", "router-7").eval(&env));
        assert!(!Guard::state_equals("target", "router-8").eval(&env));
    }

    #[test]
    fn sequential_search_guard() {
        // the paper's canonical conditional visit: keep going while the
        // search is not completed
        let keep_going = Guard::not(Guard::state_truthy("found"));
        let mut s = NapletState::new();
        assert!(keep_going.eval(&env_with(&s, 3)));
        s.set("found", true);
        assert!(!keep_going.eval(&env_with(&s, 3)));
    }

    #[test]
    fn hop_budget() {
        let s = NapletState::new();
        assert!(Guard::HopsLessThan(2).eval(&env_with(&s, 1)));
        assert!(!Guard::HopsLessThan(2).eval(&env_with(&s, 2)));
    }

    #[test]
    fn codec_round_trip() {
        let g = Guard::All(vec![
            Guard::not(Guard::state_truthy("found")),
            Guard::HopsLessThan(10),
        ]);
        let bytes = crate::codec::to_bytes(&g).unwrap();
        let back: Guard = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
    }
}
