//! Itinerary patterns: the static travel plan (paper §3).
//!
//! The BNF is binary (`Seq(P,P)`, `Alt(P,P)`, `Par(P,P)`), but the
//! paper's own Java examples construct n-ary forms (`SeqPattern(servers,
//! act)`, `ParPattern(_ip, act)`). [`Pattern`] is therefore n-ary with
//! binary constructors provided for BNF fidelity; n-ary and nested
//! binary forms are semantically identical.

use serde::{Deserialize, Serialize};

use crate::error::{NapletError, Result};

use super::guard::Guard;

/// A post-action `T` run after a visit or pattern completes — the
/// paper's `Operable`. Actions are serializable *references*; the code
/// they name is resolved at the executing server (native behaviours
/// register `Operable` callbacks under these names; VM naplets bind
/// them to bytecode functions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionSpec {
    /// Report gathered results back to the owner's listener
    /// (the paper's `ResultReport`).
    ReportHome,
    /// Exchange state with every naplet in the address book
    /// (the paper's `DataComm` collective operator).
    DataComm,
    /// An application-registered `Operable`, dispatched by name.
    Named(String),
}

/// One visit `<C→S; T>`: a target host, an optional guard `C` and an
/// optional post-action `T`. `S` is the naplet's own business logic
/// and lives in the behaviour, not here — that separation is the point
/// of §3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Visit {
    /// Host to visit.
    pub host: String,
    /// Guard condition; `Guard::Always` for unconditional visits.
    pub guard: Guard,
    /// Post-action run after the server-specific work.
    pub action: Option<ActionSpec>,
}

impl Visit {
    /// An unconditional visit with no post-action.
    pub fn to(host: impl Into<String>) -> Visit {
        Visit {
            host: host.into(),
            guard: Guard::Always,
            action: None,
        }
    }

    /// Add a guard (`<C→S; T>`).
    pub fn when(mut self, guard: Guard) -> Visit {
        self.guard = guard;
        self
    }

    /// Add a post-action (`<S; T>`).
    pub fn then(mut self, action: ActionSpec) -> Visit {
        self.action = Some(action);
        self
    }
}

/// A recursively composed itinerary pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// A single (possibly conditional) visit.
    Singleton(Visit),
    /// Visit the sub-patterns one after another.
    Seq(Vec<Pattern>),
    /// Visit exactly one alternative: the first whose entry guard
    /// passes at decision time.
    Alt(Vec<Pattern>),
    /// Visit all branches in parallel: the naplet clones itself, the
    /// originator branch (heritage `.0`) takes the first branch and
    /// continues with whatever follows the `Par`; spawned clones take
    /// one branch each and finish when their branch (and its actions)
    /// complete. An optional action runs on each executor after its
    /// branch.
    Par {
        /// Parallel branches (one agent each).
        branches: Vec<Pattern>,
        /// Action each executor runs after completing its branch
        /// (the `act` of the paper's `ParPattern(_ip, act)`).
        after: Option<ActionSpec>,
    },
}

impl Pattern {
    /// `Singleton(V)` with an unconditional visit.
    pub fn singleton(host: impl Into<String>) -> Pattern {
        Pattern::Singleton(Visit::to(host))
    }

    /// `Singleton(V)` from a full visit spec.
    pub fn visit(v: Visit) -> Pattern {
        Pattern::Singleton(v)
    }

    /// n-ary sequence.
    pub fn seq(parts: Vec<Pattern>) -> Pattern {
        Pattern::Seq(parts)
    }

    /// Binary `seq(P, Q)` (BNF form).
    pub fn seq2(p: Pattern, q: Pattern) -> Pattern {
        Pattern::Seq(vec![p, q])
    }

    /// n-ary alternative.
    pub fn alt_n(parts: Vec<Pattern>) -> Pattern {
        Pattern::Alt(parts)
    }

    /// Binary `alt(P, Q)` (BNF form).
    pub fn alt(p: Pattern, q: Pattern) -> Pattern {
        Pattern::Alt(vec![p, q])
    }

    /// n-ary parallel.
    pub fn par(branches: Vec<Pattern>) -> Pattern {
        Pattern::Par {
            branches,
            after: None,
        }
    }

    /// Binary `par(P, Q)` (BNF form).
    pub fn par2(p: Pattern, q: Pattern) -> Pattern {
        Pattern::par(vec![p, q])
    }

    /// n-ary parallel with a per-branch completion action
    /// (the paper's `ParPattern(_ip, act)`).
    pub fn par_with_action(branches: Vec<Pattern>, after: ActionSpec) -> Pattern {
        Pattern::Par {
            branches,
            after: Some(after),
        }
    }

    /// The paper's `SeqPattern(servers, act)`: visit `servers` in
    /// order, running `act` after each visit.
    pub fn seq_of_hosts(hosts: &[&str], action: Option<ActionSpec>) -> Pattern {
        Pattern::Seq(
            hosts
                .iter()
                .map(|h| {
                    let mut v = Visit::to(*h);
                    v.action = action.clone();
                    Pattern::Singleton(v)
                })
                .collect(),
        )
    }

    /// The paper's Example 2 broadcast: a `Par` of one `Singleton` per
    /// server, each with the given post-action.
    pub fn par_singletons(hosts: &[&str], action: Option<ActionSpec>) -> Pattern {
        Pattern::par(
            hosts
                .iter()
                .map(|h| {
                    let mut v = Visit::to(*h);
                    v.action = action.clone();
                    Pattern::Singleton(v)
                })
                .collect(),
        )
    }

    /// Sequential conditional search (paper §3): visit `hosts` in order
    /// but guard every visit after the first on `keep_going`.
    pub fn conditional_route(hosts: &[&str], keep_going: Guard) -> Pattern {
        Pattern::Seq(
            hosts
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    let v = if i == 0 {
                        Visit::to(*h)
                    } else {
                        Visit::to(*h).when(keep_going.clone())
                    };
                    Pattern::Singleton(v)
                })
                .collect(),
        )
    }

    /// Validate structural invariants: no empty composites, no empty
    /// host names.
    pub fn validate(&self) -> Result<()> {
        match self {
            Pattern::Singleton(v) => {
                if v.host.is_empty() {
                    Err(NapletError::Itinerary("empty host in visit".into()))
                } else {
                    Ok(())
                }
            }
            Pattern::Seq(ps) | Pattern::Alt(ps) => {
                if ps.is_empty() {
                    return Err(NapletError::Itinerary("empty composite pattern".into()));
                }
                ps.iter().try_for_each(Pattern::validate)
            }
            Pattern::Par { branches, .. } => {
                if branches.is_empty() {
                    return Err(NapletError::Itinerary("empty Par pattern".into()));
                }
                branches.iter().try_for_each(Pattern::validate)
            }
        }
    }

    /// All hosts mentioned anywhere in the pattern, deduplicated,
    /// in first-mention order.
    pub fn hosts(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_hosts(&mut out);
        out
    }

    fn collect_hosts(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Singleton(v) => {
                if !out.contains(&v.host) {
                    out.push(v.host.clone());
                }
            }
            Pattern::Seq(ps) | Pattern::Alt(ps) => {
                ps.iter().for_each(|p| p.collect_hosts(out));
            }
            Pattern::Par { branches, .. } => {
                branches.iter().for_each(|p| p.collect_hosts(out));
            }
        }
    }

    /// Upper bound on visits one agent performs traversing this
    /// pattern (Alt counts its widest alternative; Par counts only the
    /// widest branch because branches run on different agents).
    pub fn max_hops_per_agent(&self) -> usize {
        match self {
            Pattern::Singleton(_) => 1,
            Pattern::Seq(ps) => ps.iter().map(Pattern::max_hops_per_agent).sum(),
            Pattern::Alt(ps) => ps
                .iter()
                .map(Pattern::max_hops_per_agent)
                .max()
                .unwrap_or(0),
            Pattern::Par { branches, .. } => branches
                .iter()
                .map(Pattern::max_hops_per_agent)
                .max()
                .unwrap_or(0),
        }
    }

    /// Number of agents (original + clones) employed when every branch
    /// executes: each `Par` of `k` branches multiplies nothing but adds
    /// `k-1` clones at its position; agents for nested patterns
    /// compose additively along the executing branch.
    pub fn agents_required(&self) -> usize {
        match self {
            Pattern::Singleton(_) => 1,
            // a sequence is walked by one agent, but any Par inside a
            // part adds clones; the walker is shared across parts
            Pattern::Seq(ps) => 1 + ps.iter().map(|p| p.agents_required() - 1).sum::<usize>(),
            // only one alternative executes; take the worst case
            Pattern::Alt(ps) => ps.iter().map(Pattern::agents_required).max().unwrap_or(1),
            // every branch gets its own agent (branch 0 reuses the
            // parent), and branches may fork further
            Pattern::Par { branches, .. } => branches
                .iter()
                .map(Pattern::agents_required)
                .sum::<usize>()
                .max(1),
        }
    }

    /// Total visits across *all* agents when every guard passes and,
    /// for `Alt`, the first alternative is taken. This is the traffic
    /// analyst's hop count.
    pub fn total_visits_first_alt(&self) -> usize {
        match self {
            Pattern::Singleton(_) => 1,
            Pattern::Seq(ps) => ps.iter().map(Pattern::total_visits_first_alt).sum(),
            Pattern::Alt(ps) => ps.first().map(Pattern::total_visits_first_alt).unwrap_or(0),
            Pattern::Par { branches, .. } => {
                branches.iter().map(Pattern::total_visits_first_alt).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = Pattern::seq2(
            Pattern::singleton("a"),
            Pattern::par2(Pattern::singleton("b"), Pattern::singleton("c")),
        );
        p.validate().unwrap();
        assert_eq!(p.hosts(), ["a", "b", "c"]);
    }

    #[test]
    fn hosts_deduplicated_in_order() {
        let p = Pattern::seq_of_hosts(&["x", "y", "x", "z"], None);
        assert_eq!(p.hosts(), ["x", "y", "z"]);
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(Pattern::Seq(vec![]).validate().is_err());
        assert!(Pattern::Alt(vec![]).validate().is_err());
        assert!(Pattern::par(vec![]).validate().is_err());
        assert!(Pattern::singleton("").validate().is_err());
        assert!(
            Pattern::seq(vec![Pattern::singleton("ok"), Pattern::par(vec![])])
                .validate()
                .is_err()
        );
    }

    #[test]
    fn hop_counting() {
        // seq of 3 → 3 hops, one agent
        let s3 = Pattern::seq_of_hosts(&["a", "b", "c"], None);
        assert_eq!(s3.max_hops_per_agent(), 3);
        assert_eq!(s3.agents_required(), 1);
        assert_eq!(s3.total_visits_first_alt(), 3);

        // par(seq2, seq2) → 2 hops per agent, 2 agents, 4 total visits
        let p = Pattern::par(vec![
            Pattern::seq_of_hosts(&["s0", "s1"], None),
            Pattern::seq_of_hosts(&["s2", "s3"], None),
        ]);
        assert_eq!(p.max_hops_per_agent(), 2);
        assert_eq!(p.agents_required(), 2);
        assert_eq!(p.total_visits_first_alt(), 4);

        // alt picks the widest for bounds, the first for traffic
        let a = Pattern::alt(Pattern::seq_of_hosts(&["x"], None), s3.clone());
        assert_eq!(a.max_hops_per_agent(), 3);
        assert_eq!(a.agents_required(), 1);
        assert_eq!(a.total_visits_first_alt(), 1);
    }

    #[test]
    fn nested_par_agent_counting() {
        // par(par(a,b), c) → 3 agents
        let p = Pattern::par(vec![
            Pattern::par2(Pattern::singleton("a"), Pattern::singleton("b")),
            Pattern::singleton("c"),
        ]);
        assert_eq!(p.agents_required(), 3);

        // seq(a, par(b,c)) → walker + 1 clone = 2
        let q = Pattern::seq2(
            Pattern::singleton("a"),
            Pattern::par2(Pattern::singleton("b"), Pattern::singleton("c")),
        );
        assert_eq!(q.agents_required(), 2);

        // seq(par(a,b), par(c,d)) → walker + 2 clones = 3
        let r = Pattern::seq2(
            Pattern::par2(Pattern::singleton("a"), Pattern::singleton("b")),
            Pattern::par2(Pattern::singleton("c"), Pattern::singleton("d")),
        );
        assert_eq!(r.agents_required(), 3);
    }

    #[test]
    fn conditional_route_guards_all_but_first() {
        let g = Guard::not(Guard::state_truthy("found"));
        let p = Pattern::conditional_route(&["a", "b", "c"], g.clone());
        let Pattern::Seq(parts) = &p else {
            panic!("expected seq")
        };
        let guards: Vec<&Guard> = parts
            .iter()
            .map(|p| match p {
                Pattern::Singleton(v) => &v.guard,
                _ => panic!("expected singleton"),
            })
            .collect();
        assert_eq!(guards[0], &Guard::Always);
        assert_eq!(guards[1], &g);
        assert_eq!(guards[2], &g);
    }

    #[test]
    fn visit_builder() {
        let v = Visit::to("h")
            .when(Guard::HopsLessThan(5))
            .then(ActionSpec::DataComm);
        assert_eq!(v.host, "h");
        assert_eq!(v.guard, Guard::HopsLessThan(5));
        assert_eq!(v.action, Some(ActionSpec::DataComm));
    }

    #[test]
    fn binary_and_nary_equivalent_hosts() {
        let binary = Pattern::seq2(
            Pattern::singleton("a"),
            Pattern::seq2(Pattern::singleton("b"), Pattern::singleton("c")),
        );
        let nary = Pattern::seq_of_hosts(&["a", "b", "c"], None);
        assert_eq!(binary.hosts(), nary.hosts());
        assert_eq!(binary.max_hops_per_agent(), nary.max_hops_per_agent());
        assert_eq!(
            binary.total_visits_first_alt(),
            nary.total_visits_first_alt()
        );
    }

    #[test]
    fn codec_round_trip() {
        let p = Pattern::par_with_action(
            vec![
                Pattern::seq_of_hosts(&["a", "b"], Some(ActionSpec::Named("sync".into()))),
                Pattern::singleton("c"),
            ],
            ActionSpec::ReportHome,
        );
        let bytes = crate::codec::to_bytes(&p).unwrap();
        let back: Pattern = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }
}
