//! Wire-propagated trace context.
//!
//! A [`TraceCtx`] rides along with every wire value a journey emits —
//! inside the `SimRuntime`'s delivery events in-process, and as an
//! optional extension block of the transport frame across real
//! sockets — so trace events recorded by *different* daemons can be
//! joined into one causal timeline:
//!
//! - `journey` is the travelling naplet's id string (the journey's
//!   trace id, same correlation key the tracer already uses);
//! - `origin` is the host that minted the context (the journey's home
//!   as seen by the first sender);
//! - `hop` counts successful-migration attempts: it advances exactly
//!   once per first-attempt `Transfer` send and is *kept* by
//!   retransmissions, so the sequence of hops observed at admissions
//!   is strictly monotone per journey even under loss;
//! - `seq` is a per-sender causal sequence number, advanced on every
//!   context-carrying send. `(journey, seq, sending host)` uniquely
//!   names one physical send, which is how a merged cluster trace
//!   pairs a `wire.recv` with the `wire.send` that caused it.
//!
//! The type lives in `naplet-core` because both the transport framing
//! (`naplet-net`) and the observability plane (`naplet-obs`) speak it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Compact causal context propagated with a journey's wire traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The journey's trace id (the naplet id string).
    pub journey: String,
    /// Host that minted this context.
    pub origin: String,
    /// Migration-hop counter (advances on first-attempt transfers).
    pub hop: u32,
    /// Per-sender causal sequence number (advances on every send).
    pub seq: u64,
}

/// Per-driver table of the freshest [`TraceCtx`] known for each
/// journey. Every driver that moves wire values (the sim runtime, a
/// live server loop, the cluster control node) owns one; senders
/// advance it, receivers adopt what arrived when it is at least as
/// fresh as what they knew.
#[derive(Debug, Clone, Default)]
pub struct CtxTable {
    map: HashMap<String, TraceCtx>,
}

impl CtxTable {
    /// An empty table.
    pub fn new() -> CtxTable {
        CtxTable::default()
    }

    /// Advance the journey's context for one outgoing send and return
    /// the value to stamp on the wire: `seq` always steps, `hop` steps
    /// only when `new_hop` (a first-attempt `Transfer`) is set. A
    /// journey first seen here is minted with `origin_host` as origin.
    pub fn on_send(&mut self, journey: &str, origin_host: &str, new_hop: bool) -> TraceCtx {
        let entry = self
            .map
            .entry(journey.to_string())
            .or_insert_with(|| TraceCtx {
                journey: journey.to_string(),
                origin: origin_host.to_string(),
                hop: 0,
                seq: 0,
            });
        entry.seq += 1;
        if new_hop {
            entry.hop += 1;
        }
        entry.clone()
    }

    /// Adopt a context that arrived on the wire: it replaces the local
    /// entry when its `seq` is at least as fresh (so a reordered stale
    /// frame never winds a journey backwards). The hop counter only
    /// ever ratchets up.
    pub fn adopt(&mut self, ctx: &TraceCtx) {
        match self.map.get_mut(&ctx.journey) {
            Some(entry) => {
                if ctx.seq >= entry.seq {
                    entry.origin = ctx.origin.clone();
                    entry.seq = ctx.seq;
                    entry.hop = entry.hop.max(ctx.hop);
                }
            }
            None => {
                self.map.insert(ctx.journey.clone(), ctx.clone());
            }
        }
    }

    /// The freshest context known for `journey`, if any.
    pub fn current(&self, journey: &str) -> Option<&TraceCtx> {
        self.map.get(journey)
    }

    /// Forget a finished journey (bounds live tables).
    pub fn forget(&mut self, journey: &str) {
        self.map.remove(journey);
    }

    /// Tracked journeys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no journey is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_seq_and_hops_only_on_new_hops() {
        let mut t = CtxTable::new();
        let a = t.on_send("j", "home", false);
        assert_eq!((a.hop, a.seq), (0, 1));
        assert_eq!(a.origin, "home");
        let b = t.on_send("j", "home", true);
        assert_eq!((b.hop, b.seq), (1, 2));
        // a retransmission keeps the hop, advances the seq
        let c = t.on_send("j", "home", false);
        assert_eq!((c.hop, c.seq), (1, 3));
    }

    #[test]
    fn adopt_takes_fresher_contexts_and_ignores_stale_ones() {
        let mut t = CtxTable::new();
        t.adopt(&TraceCtx {
            journey: "j".into(),
            origin: "home".into(),
            hop: 2,
            seq: 5,
        });
        assert_eq!(t.current("j").unwrap().hop, 2);
        // stale frame (lower seq) must not wind the journey backwards
        t.adopt(&TraceCtx {
            journey: "j".into(),
            origin: "home".into(),
            hop: 1,
            seq: 3,
        });
        assert_eq!(t.current("j").unwrap().seq, 5);
        assert_eq!(t.current("j").unwrap().hop, 2);
        // fresher seq with an equal hop is adopted
        t.adopt(&TraceCtx {
            journey: "j".into(),
            origin: "home".into(),
            hop: 2,
            seq: 9,
        });
        assert_eq!(t.current("j").unwrap().seq, 9);
        // local sends continue from the adopted point
        let next = t.on_send("j", "elsewhere", true);
        assert_eq!((next.hop, next.seq), (3, 10));
        assert_eq!(next.origin, "home", "origin survives adoption");
    }

    #[test]
    fn forget_drops_the_journey() {
        let mut t = CtxTable::new();
        t.on_send("j", "home", false);
        assert_eq!(t.len(), 1);
        t.forget("j");
        assert!(t.is_empty());
    }

    #[test]
    fn ctx_codec_round_trip() {
        let ctx = TraceCtx {
            journey: "naplet://czxu@home/1".into(),
            origin: "home".into(),
            hop: 3,
            seq: 17,
        };
        let bytes = crate::codec::to_bytes(&ctx).unwrap();
        let back: TraceCtx = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, ctx);
    }
}
