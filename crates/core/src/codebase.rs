//! Lazy code loading (paper §2.1).
//!
//! "The Naplet system supports lazy code loading. It allows classes
//! loaded on demand and at the last moment possible. The codebase URL
//! points to the location of the classes required by the naplet … all
//! the classes and resources needed are transported at a time."
//!
//! Rust cannot ship native code, so the codebase model splits in two
//! (see DESIGN.md §2):
//!
//! * **Native behaviours** — every "host" in the in-process fabric
//!   shares the binary, mirroring a Java network where every JVM *can*
//!   load any class. The [`CodebaseRegistry`] plays the role of the
//!   codebase server: it maps a codebase URL to a behaviour factory
//!   and a declared *code size*. A per-host [`CodeCache`] models the
//!   lazy JAR fetch: the first instantiation on a host "downloads" the
//!   code (the caller meters those bytes on the fabric); later
//!   arrivals hit the cache and transfer nothing.
//! * **VM programs** — truly mobile bytecode, carried inside the
//!   naplet itself (crate `naplet-vm`); they never consult this
//!   registry.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::behavior::NapletBehavior;
use crate::error::{NapletError, Result};

/// Factory producing a fresh behaviour instance per arrival.
pub type BehaviorFactory = Arc<dyn Fn() -> Box<dyn NapletBehavior> + Send + Sync>;

/// One registered codebase: factory plus the size of the "JAR" that
/// must be transferred to a host that has never loaded it.
#[derive(Clone)]
struct CodebaseEntry {
    factory: BehaviorFactory,
    code_size: u64,
}

/// The codebase server: resolves codebase URLs to behaviour factories.
#[derive(Clone, Default)]
pub struct CodebaseRegistry {
    entries: HashMap<String, CodebaseEntry>,
}

impl CodebaseRegistry {
    /// Empty registry.
    pub fn new() -> CodebaseRegistry {
        CodebaseRegistry::default()
    }

    /// Register a behaviour under a codebase URL with a declared code
    /// size in bytes (what a first-time host must download).
    pub fn register<F, B>(&mut self, codebase: &str, code_size: u64, factory: F)
    where
        F: Fn() -> B + Send + Sync + 'static,
        B: NapletBehavior + 'static,
    {
        self.entries.insert(
            codebase.to_string(),
            CodebaseEntry {
                factory: Arc::new(move || Box::new(factory()) as Box<dyn NapletBehavior>),
                code_size,
            },
        );
    }

    /// Instantiate a behaviour from a codebase URL.
    pub fn instantiate(&self, codebase: &str) -> Result<Box<dyn NapletBehavior>> {
        self.entries
            .get(codebase)
            .map(|e| (e.factory)())
            .ok_or_else(|| NapletError::NotFound(format!("unknown codebase `{codebase}`")))
    }

    /// Declared code size for a codebase.
    pub fn code_size(&self, codebase: &str) -> Result<u64> {
        self.entries
            .get(codebase)
            .map(|e| e.code_size)
            .ok_or_else(|| NapletError::NotFound(format!("unknown codebase `{codebase}`")))
    }

    /// Is this codebase registered?
    pub fn contains(&self, codebase: &str) -> bool {
        self.entries.contains_key(codebase)
    }

    /// Registered codebase URLs (sorted, diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for CodebaseRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodebaseRegistry")
            .field("codebases", &self.names())
            .finish()
    }
}

/// Per-host record of which codebases have already been fetched.
///
/// [`CodeCache::load`] returns the number of bytes that had to be
/// transferred: the full code size on a cold load, `0` on a cache hit.
/// The hosting server adds those bytes to the fabric's `Code` traffic
/// class — this is what experiment E7 measures.
#[derive(Debug, Default, Clone)]
pub struct CodeCache {
    loaded: HashSet<String>,
}

impl CodeCache {
    /// Empty cache (a freshly installed server).
    pub fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Ensure `codebase` is present on this host, returning the bytes
    /// transferred to make it so.
    pub fn load(&mut self, registry: &CodebaseRegistry, codebase: &str) -> Result<u64> {
        let size = registry.code_size(codebase)?;
        if self.loaded.insert(codebase.to_string()) {
            Ok(size)
        } else {
            Ok(0)
        }
    }

    /// Is the codebase already cached here?
    pub fn is_cached(&self, codebase: &str) -> bool {
        self.loaded.contains(codebase)
    }

    /// Drop everything (e.g. server reconfiguration).
    pub fn clear(&mut self) {
        self.loaded.clear();
    }

    /// Number of cached codebases.
    pub fn len(&self) -> usize {
        self.loaded.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Millis;
    use crate::context::{LocalContext, NapletContext};
    use crate::id::NapletId;

    struct Nop;
    impl NapletBehavior for Nop {
        fn on_start(&mut self, _ctx: &mut dyn NapletContext) -> Result<()> {
            Ok(())
        }
    }

    fn registry() -> CodebaseRegistry {
        let mut r = CodebaseRegistry::new();
        r.register("naplet://code/nop.jar", 4096, || Nop);
        r
    }

    #[test]
    fn instantiate_known_codebase() {
        let r = registry();
        let mut b = r.instantiate("naplet://code/nop.jar").unwrap();
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let mut ctx = LocalContext::new("s", id);
        b.on_start(&mut ctx).unwrap();
        assert!(r.contains("naplet://code/nop.jar"));
        assert_eq!(r.code_size("naplet://code/nop.jar").unwrap(), 4096);
    }

    #[test]
    fn unknown_codebase_errors() {
        let r = registry();
        assert!(r.instantiate("naplet://code/missing.jar").is_err());
        assert!(r.code_size("naplet://code/missing.jar").is_err());
        assert!(!r.contains("naplet://code/missing.jar"));
    }

    #[test]
    fn cold_load_pays_code_size_once() {
        let r = registry();
        let mut cache = CodeCache::new();
        assert!(!cache.is_cached("naplet://code/nop.jar"));
        assert_eq!(cache.load(&r, "naplet://code/nop.jar").unwrap(), 4096);
        assert_eq!(cache.load(&r, "naplet://code/nop.jar").unwrap(), 0);
        assert!(cache.is_cached("naplet://code/nop.jar"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_forces_refetch() {
        let r = registry();
        let mut cache = CodeCache::new();
        cache.load(&r, "naplet://code/nop.jar").unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.load(&r, "naplet://code/nop.jar").unwrap(), 4096);
    }

    #[test]
    fn loading_unknown_codebase_fails_without_caching() {
        let r = registry();
        let mut cache = CodeCache::new();
        assert!(cache.load(&r, "nope").is_err());
        assert!(cache.is_empty());
    }
}
