//! The dynamic [`Value`] type.
//!
//! Java's Naplet carries arbitrary serializable objects in its
//! `NapletState`, passes them through service channels and mails them
//! between agents. Rust has no runtime object model, so the framework
//! uses one dynamic value type everywhere an "arbitrary serializable
//! object" appears in the paper: agent state entries, user messages,
//! service-channel payloads, VM operands and SNMP variable bindings.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{NapletError, Result};

/// A dynamically typed, serializable value.
///
/// Maps use `BTreeMap` so serialization (and therefore traffic
/// accounting and signatures) is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map with deterministic ordering.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Human-readable type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Truthiness used by the VM and by itinerary guard conditions:
    /// nil, false, 0, 0.0, "" and empty collections are falsy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Nil => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Integer view, or a typed error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(type_err("int", other)),
        }
    }

    /// Float view; ints widen losslessly when possible.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_err("float", other)),
        }
    }

    /// String view, or a typed error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("str", other)),
        }
    }

    /// Bool view, or a typed error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    /// List view, or a typed error.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(type_err("list", other)),
        }
    }

    /// Map view, or a typed error.
    pub fn as_map(&self) -> Result<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(type_err("map", other)),
        }
    }

    /// Mutable map view, or a typed error.
    pub fn as_map_mut(&mut self) -> Result<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(type_err("map", other)),
        }
    }

    /// Deep approximate in-memory footprint in bytes, used by the
    /// NapletMonitor's memory budget (paper §5.2). The estimate counts
    /// payload bytes plus a fixed per-node overhead; it intentionally
    /// over-approximates rather than under-approximates.
    pub fn deep_size(&self) -> u64 {
        const NODE: u64 = 16;
        match self {
            Value::Nil | Value::Bool(_) | Value::Int(_) | Value::Float(_) => NODE,
            Value::Str(s) => NODE + s.len() as u64,
            Value::Bytes(b) => NODE + b.len() as u64,
            Value::List(l) => NODE + l.iter().map(Value::deep_size).sum::<u64>(),
            Value::Map(m) => {
                NODE + m
                    .iter()
                    .map(|(k, v)| k.len() as u64 + v.deep_size())
                    .sum::<u64>()
            }
        }
    }

    /// Convenience constructor for maps.
    pub fn map<I, K>(entries: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for lists.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Index into a map value by key (Nil when missing).
    pub fn get(&self, key: &str) -> Value {
        match self {
            Value::Map(m) => m.get(key).cloned().unwrap_or(Value::Nil),
            _ => Value::Nil,
        }
    }
}

fn type_err(wanted: &str, got: &Value) -> NapletError {
    NapletError::Internal(format!(
        "type error: wanted {wanted}, got {}",
        got.type_name()
    ))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v.into())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
        assert!(!Value::list([]).is_truthy());
        assert!(Value::list([Value::Nil]).is_truthy());
    }

    #[test]
    fn typed_views() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
        assert!(Value::Nil.as_map().is_err());
    }

    #[test]
    fn deep_size_monotone_in_content() {
        let small = Value::from("ab");
        let big = Value::from("abcdefgh");
        assert!(big.deep_size() > small.deep_size());
        let list = Value::list([small.clone(), big.clone()]);
        assert!(list.deep_size() > small.deep_size() + big.deep_size() - 1);
    }

    #[test]
    fn map_get() {
        let m = Value::map([("a", Value::Int(1)), ("b", Value::from("x"))]);
        assert_eq!(m.get("a"), Value::Int(1));
        assert_eq!(m.get("missing"), Value::Nil);
        assert_eq!(Value::Int(1).get("a"), Value::Nil);
    }

    #[test]
    fn display_forms() {
        let v = Value::map([
            ("n", Value::Int(3)),
            ("l", Value::list([Value::Bool(true), Value::Nil])),
        ]);
        assert_eq!(v.to_string(), "{l: [true, nil], n: 3}");
    }

    #[test]
    fn codec_round_trip() {
        let v = Value::map([
            ("id", Value::from("czxu@ece:0:0")),
            ("readings", Value::list([Value::Float(0.5), Value::Int(9)])),
            ("blob", Value::Bytes(vec![1, 2, 3])),
        ]);
        let bytes = codec::to_bytes(&v).unwrap();
        let back: Value = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_iterator_collects_list() {
        let v: Value = (0..3i64).collect();
        assert_eq!(
            v,
            Value::list([Value::Int(0), Value::Int(1), Value::Int(2)])
        );
    }
}
