//! The `Naplet` itself (paper §2.1): the serializable agent that
//! travels between servers.
//!
//! A naplet bundles its immutable identity (`NapletId`, codebase,
//! credential), its protected application state, its itinerary and
//! traversal cursor, its address book and its navigation log. The
//! execution context is *not* part of the naplet — it is transient,
//! attached by the hosting server on arrival (see
//! [`crate::context::NapletContext`]).
//!
//! Two agent kinds exist (DESIGN.md §2):
//! * [`AgentKind::Native`] — business logic resolved from the
//!   [`CodebaseRegistry`](crate::codebase::CodebaseRegistry) at each
//!   host (weak mobility, like the paper's Java classes);
//! * [`AgentKind::Vm`] — bytecode and execution image carried inside
//!   the naplet (strong mobility; interpreted by `naplet-vm`). The
//!   image is opaque bytes at this layer.

use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::address_book::AddressBook;
use crate::clock::Millis;
use crate::codec;
use crate::credential::{Credential, SigningKey};
use crate::error::{NapletError, Result};
use crate::id::NapletId;
use crate::itinerary::{Cursor, GuardEnv, Itinerary, Step};
use crate::navlog::NavigationLog;
use crate::state::NapletState;

/// How the naplet's business logic is carried.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentKind {
    /// Logic lives in the codebase registry; only the codebase URL
    /// travels (lazy code loading).
    Native,
    /// Logic travels with the agent as an opaque VM image
    /// (serialized `naplet_vm::VmImage`), giving strong mobility.
    Vm(Vec<u8>),
}

/// The mobile agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Naplet {
    id: NapletId,
    codebase: String,
    credential: Credential,
    kind: AgentKind,
    /// Application state container (naplet-side full access; servers
    /// only ever get the mode-checked view).
    pub state: NapletState,
    itinerary: Itinerary,
    cursor: Cursor,
    /// Known peers for messaging.
    pub address_book: AddressBook,
    /// Travel history.
    pub nav_log: NavigationLog,
    next_clone_ordinal: u32,
}

impl Naplet {
    /// Create a new original naplet.
    ///
    /// `key` signs the credential over the immutable attributes
    /// (id + codebase + attribute claims).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        key: &SigningKey,
        user: &str,
        home: &str,
        created: Millis,
        codebase: &str,
        kind: AgentKind,
        itinerary: Itinerary,
        attributes: Vec<(String, String)>,
    ) -> Result<Naplet> {
        let id = NapletId::new(user, home, created)?;
        let credential = Credential::issue(key, id.clone(), codebase, attributes);
        Ok(Naplet {
            id,
            codebase: codebase.to_string(),
            credential,
            kind,
            state: NapletState::new(),
            cursor: itinerary.start(),
            itinerary,
            address_book: AddressBook::new(),
            nav_log: NavigationLog::new(),
            next_clone_ordinal: 1,
        })
    }

    /// Immutable identifier.
    pub fn id(&self) -> &NapletId {
        &self.id
    }

    /// Immutable codebase URL.
    pub fn codebase(&self) -> &str {
        &self.codebase
    }

    /// The signed credential.
    pub fn credential(&self) -> &Credential {
        &self.credential
    }

    /// Agent kind (native vs VM image).
    pub fn kind(&self) -> &AgentKind {
        &self.kind
    }

    /// Mutable access to a VM image payload, used by the hosting
    /// monitor to persist execution progress between hops.
    pub fn kind_mut(&mut self) -> &mut AgentKind {
        &mut self.kind
    }

    /// The naplet's home server, derived from its identifier — this
    /// derivability is what enables home-manager directory service
    /// (paper §4.1).
    pub fn home(&self) -> &str {
        self.id.home()
    }

    /// The static itinerary (travel plan).
    pub fn itinerary(&self) -> &Itinerary {
        &self.itinerary
    }

    /// The live traversal cursor.
    pub fn cursor(&self) -> &Cursor {
        &self.cursor
    }

    /// Verify the credential and that it certifies this naplet's
    /// family: clones carry the family credential, so the certified id
    /// must be this id or one of its ancestors.
    pub fn verify(&self, key: &SigningKey) -> Result<()> {
        self.credential.verify(key)?;
        let cert_id = &self.credential.naplet_id;
        let certified = cert_id == &self.id || cert_id.is_ancestor_of(&self.id);
        if !certified {
            return Err(NapletError::SecurityDenied {
                permission: "VERIFY".into(),
                subject: format!(
                    "credential certifies {cert_id}, which does not cover {}",
                    self.id
                ),
            });
        }
        if self.credential.codebase != self.codebase {
            return Err(NapletError::Immutable(format!(
                "codebase `{}` differs from certified `{}`",
                self.codebase, self.credential.codebase
            )));
        }
        Ok(())
    }

    /// Advance the itinerary: evaluate guards against the current
    /// state, travel history and unreachable hosts, and return the next
    /// directive.
    pub fn advance(&mut self) -> Step {
        let unreachable = self.nav_log.failed_hosts();
        let env = GuardEnv {
            state: &self.state,
            hops: self.nav_log.hops(),
            unreachable: &unreachable,
        };
        self.cursor.next(&env)
    }

    /// The next destination host without consuming traversal state.
    pub fn peek_next_host(&self) -> Option<String> {
        let unreachable = self.nav_log.failed_hosts();
        let env = GuardEnv {
            state: &self.state,
            hops: self.nav_log.hops(),
            unreachable: &unreachable,
        };
        self.cursor.peek_next_host(&env)
    }

    /// Rewind the traversal cursor to a previously saved checkpoint.
    /// The reliable-transfer layer snapshots the cursor before each
    /// `advance()` so a permanently failed migration can be re-decided
    /// (an `Alt` then picks another branch via the failure records).
    pub fn set_cursor(&mut self, cursor: Cursor) {
        self.cursor = cursor;
    }

    /// True when the journey has completed.
    pub fn journey_done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Spawn a clone to execute a `Par` branch (paper §3): the clone
    /// receives the branch cursor, a copy of the state, the inherited
    /// address book (including this naplet at `current_host`), a fresh
    /// navigation log, and the next heritage ordinal. Ordinal `0` is
    /// reserved: the continuing parent *is* the `.0` branch.
    pub fn clone_for_branch(&mut self, branch: Cursor, current_host: &str) -> Naplet {
        let ordinal = self.next_clone_ordinal;
        self.next_clone_ordinal += 1;
        let clone_id = self.id.clone_child(ordinal);
        let address_book = self.address_book.inherited(&self.id, current_host);
        // the parent also learns about its clone, starting here
        self.address_book.put(clone_id.clone(), current_host);
        Naplet {
            id: clone_id,
            codebase: self.codebase.clone(),
            credential: self.credential.clone(),
            kind: self.kind.clone(),
            state: self.state.clone(),
            cursor: branch,
            itinerary: self.itinerary.clone(),
            address_book,
            nav_log: NavigationLog::new(),
            next_clone_ordinal: 1,
        }
    }

    /// Serialized wire size in bytes — what a migration of this naplet
    /// costs on the fabric (code transfer excluded; that is metered by
    /// the code cache).
    pub fn wire_size(&self) -> Result<u64> {
        codec::encoded_size(self)
    }

    /// Serialize for migration.
    pub fn to_wire(&self) -> Result<Vec<u8>> {
        codec::to_bytes(self)
    }

    /// Deserialize a migrated naplet.
    pub fn from_wire(bytes: &[u8]) -> Result<Naplet> {
        codec::from_bytes(bytes)
    }
}

/// A copy-on-write handle to an immutable [`Naplet`] snapshot.
///
/// During a migration the same agent image is needed several times —
/// the journal write, the transfer frame, every retransmit of that
/// frame, and the byte metering on the fabric. Deep-cloning (and
/// re-encoding) the whole agent each time dominates the handoff hot
/// path, so the reliable-transfer layer holds one `SharedNaplet`
/// instead: clones are `Arc` bumps, and the wire encoding / wire size
/// are computed once and cached inside the shared allocation.
///
/// The handle serializes exactly like the underlying [`Naplet`]
/// (byte-identical `napcode`), so it can replace `Naplet` inside wire
/// envelopes without changing the format.
#[derive(Debug, Clone)]
pub struct SharedNaplet {
    inner: Arc<SharedInner>,
}

#[derive(Debug)]
struct SharedInner {
    naplet: Naplet,
    /// Cached `to_wire` snapshot, filled on first use and shared by
    /// every clone of the handle (journal + retransmits reuse it).
    bytes: OnceLock<Arc<Vec<u8>>>,
    /// Cached wire size for when only metering is needed.
    size: OnceLock<u64>,
}

impl SharedNaplet {
    /// Freeze a naplet into a shared snapshot.
    pub fn new(naplet: Naplet) -> SharedNaplet {
        SharedNaplet {
            inner: Arc::new(SharedInner {
                naplet,
                bytes: OnceLock::new(),
                size: OnceLock::new(),
            }),
        }
    }

    /// Borrow the underlying naplet.
    pub fn get(&self) -> &Naplet {
        &self.inner.naplet
    }

    /// Take the naplet back out for mutation: zero-copy when this is
    /// the last handle, a deep clone otherwise (copy-on-write).
    pub fn into_owned(self) -> Naplet {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.naplet,
            Err(shared) => shared.naplet.clone(),
        }
    }

    /// The wire encoding, computed once per snapshot and shared across
    /// clones — the cheap path for journal writes and retransmits.
    pub fn wire_bytes(&self) -> Result<Arc<Vec<u8>>> {
        if let Some(bytes) = self.inner.bytes.get() {
            return Ok(Arc::clone(bytes));
        }
        let bytes = Arc::new(self.inner.naplet.to_wire()?);
        Ok(Arc::clone(self.inner.bytes.get_or_init(|| bytes)))
    }

    /// The wire size in bytes, cached like [`wire_bytes`]
    /// (`SharedNaplet::wire_bytes`) but without materialising the
    /// encoding when it has not been needed yet.
    pub fn wire_size(&self) -> Result<u64> {
        if let Some(bytes) = self.inner.bytes.get() {
            return Ok(bytes.len() as u64);
        }
        if let Some(&size) = self.inner.size.get() {
            return Ok(size);
        }
        let size = self.inner.naplet.wire_size()?;
        Ok(*self.inner.size.get_or_init(|| size))
    }
}

impl Deref for SharedNaplet {
    type Target = Naplet;
    fn deref(&self) -> &Naplet {
        &self.inner.naplet
    }
}

impl From<Naplet> for SharedNaplet {
    fn from(naplet: Naplet) -> SharedNaplet {
        SharedNaplet::new(naplet)
    }
}

impl PartialEq for SharedNaplet {
    fn eq(&self, other: &SharedNaplet) -> bool {
        self.inner.naplet == other.inner.naplet
    }
}

impl Serialize for SharedNaplet {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        self.inner.naplet.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SharedNaplet {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<SharedNaplet, D::Error> {
        Naplet::deserialize(deserializer).map(SharedNaplet::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itinerary::{ActionSpec, Pattern};
    use crate::value::Value;

    fn key() -> SigningKey {
        SigningKey::new("czxu", b"secret")
    }

    fn sample() -> Naplet {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["s1", "s2"], None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        Naplet::create(
            &key(),
            "czxu",
            "home.host",
            Millis(7),
            "naplet://code/demo.jar",
            AgentKind::Native,
            it,
            vec![("role".into(), "demo".into())],
        )
        .unwrap()
    }

    #[test]
    fn creation_sets_immutables() {
        let n = sample();
        assert_eq!(n.id().user(), "czxu");
        assert_eq!(n.home(), "home.host");
        assert_eq!(n.codebase(), "naplet://code/demo.jar");
        assert!(n.id().is_original());
        n.verify(&key()).unwrap();
    }

    #[test]
    fn verification_rejects_wrong_key_and_tampered_codebase() {
        let mut n = sample();
        assert!(n.verify(&SigningKey::new("czxu", b"wrong")).is_err());
        n.codebase = "naplet://code/evil.jar".into();
        assert!(n.verify(&key()).is_err());
    }

    #[test]
    fn advance_walks_itinerary() {
        let mut n = sample();
        let Step::Visit { host, .. } = n.advance() else {
            panic!()
        };
        assert_eq!(host, "s1");
        n.nav_log.record_arrival("s1", Millis(10));
        n.nav_log.record_departure(Millis(20));
        let Step::Visit { host, .. } = n.advance() else {
            panic!()
        };
        assert_eq!(host, "s2");
        assert_eq!(n.advance(), Step::Action(ActionSpec::ReportHome));
        assert_eq!(n.advance(), Step::Done);
        assert!(n.journey_done());
    }

    #[test]
    fn clone_gets_next_ordinal_and_inherited_book() {
        let mut n = sample();
        n.state.set("shared", Value::Int(1));
        n.address_book
            .put(NapletId::new("peer", "p", Millis(0)).unwrap(), "ps");

        let c1 = n.clone_for_branch(Cursor::done(), "here");
        let c2 = n.clone_for_branch(Cursor::done(), "here");

        assert_eq!(c1.id().heritage(), [1]);
        assert_eq!(c2.id().heritage(), [2]);
        assert!(n.id().is_ancestor_of(c1.id()));
        // clone inherits peers + parent location
        assert!(c1.address_book.knows(n.id()));
        assert!(c1
            .address_book
            .knows(&NapletId::new("peer", "p", Millis(0)).unwrap()));
        // parent learns about clones
        assert!(n.address_book.knows(c1.id()));
        assert!(n.address_book.knows(c2.id()));
        // state copied, log fresh
        assert_eq!(c1.state.get("shared"), Value::Int(1));
        assert_eq!(c1.nav_log.hops(), 0);
        // clones verify under the family credential
        c1.verify(&key()).unwrap();
        c2.verify(&key()).unwrap();
    }

    #[test]
    fn recursive_clone_heritage() {
        let mut n = sample();
        let mut c2 = n.clone_for_branch(Cursor::done(), "h");
        let mut c2x = c2.clone_for_branch(Cursor::done(), "h");
        let c2y = c2.clone_for_branch(Cursor::done(), "h");
        assert_eq!(c2x.id().heritage(), [1, 1]);
        assert_eq!(c2y.id().heritage(), [1, 2]);
        c2x.verify(&key()).unwrap();
        let deep = c2x.clone_for_branch(Cursor::done(), "h");
        assert_eq!(deep.id().heritage(), [1, 1, 1]);
        deep.verify(&key()).unwrap();
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut n = sample();
        n.state.set("gathered", Value::list([Value::Int(3)]));
        n.nav_log.record_arrival("s1", Millis(10));
        let bytes = n.to_wire().unwrap();
        assert_eq!(bytes.len() as u64, n.wire_size().unwrap());
        let back = Naplet::from_wire(&bytes).unwrap();
        assert_eq!(back, n);
        back.verify(&key()).unwrap();
    }

    #[test]
    fn wire_size_grows_with_state() {
        let mut n = sample();
        let before = n.wire_size().unwrap();
        n.state.set("blob", Value::Bytes(vec![0; 2048]));
        assert!(n.wire_size().unwrap() >= before + 2048);
    }

    #[test]
    fn shared_naplet_encodes_byte_identically() {
        let mut n = sample();
        n.state.set("gathered", Value::list([Value::Int(3)]));
        let plain = n.to_wire().unwrap();
        let shared = SharedNaplet::new(n.clone());
        assert_eq!(codec::to_bytes(&shared).unwrap(), plain);
        assert_eq!(shared.wire_size().unwrap(), plain.len() as u64);
        assert_eq!(shared.wire_bytes().unwrap().as_slice(), plain.as_slice());
        // decoding a plain wire image yields the same snapshot
        let back: SharedNaplet = codec::from_bytes(&plain).unwrap();
        assert_eq!(back, shared);
        assert_eq!(back.into_owned(), n);
    }

    #[test]
    fn shared_naplet_cache_is_shared_and_cow_is_cheap_when_unique() {
        let n = sample();
        let a = SharedNaplet::new(n.clone());
        let b = a.clone();
        // the snapshot computed through one handle is visible via the other
        let bytes = a.wire_bytes().unwrap();
        assert!(Arc::ptr_eq(&bytes, &b.wire_bytes().unwrap()));
        drop(a);
        // last handle: into_owned must not clone
        let owned = b.into_owned();
        assert_eq!(owned, n);
    }

    #[test]
    fn vm_kind_carries_image() {
        let it = Itinerary::new(Pattern::singleton("s1")).unwrap();
        let n = Naplet::create(
            &key(),
            "czxu",
            "h",
            Millis(1),
            "vm:demo",
            AgentKind::Vm(vec![1, 2, 3]),
            it,
            vec![],
        )
        .unwrap();
        assert_eq!(n.kind(), &AgentKind::Vm(vec![1, 2, 3]));
        let back = Naplet::from_wire(&n.to_wire().unwrap()).unwrap();
        assert_eq!(back.kind(), &AgentKind::Vm(vec![1, 2, 3]));
    }
}
