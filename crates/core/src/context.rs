//! The naplet execution context (paper §2.1).
//!
//! "The naplet executes in a confined environment, defined by its
//! `NapletContext` object. The context object provides references to
//! dispatch proxy, message, and stationary application services on the
//! server. The context object is a transient attribute and is to be set
//! by a resource manager on the arrival of the naplet. It can't be
//! serialized for migration."
//!
//! [`NapletContext`] is therefore a *trait*, implemented by the hosting
//! `NapletServer`'s run context and handed to the behaviour's lifecycle
//! hooks. It is never part of the serialized naplet. A self-contained
//! [`LocalContext`] implementation backs unit tests and single-host
//! examples.

use crate::address_book::AddressBook;
use crate::clock::Millis;
use crate::error::{NapletError, Result};
use crate::id::NapletId;
use crate::message::Message;
use crate::state::NapletState;
use crate::value::Value;

/// Server-provided capabilities available to a running naplet.
///
/// Everything a behaviour can do on a host flows through this trait:
/// state, messaging, services (open and privileged), reporting home.
/// Travel and cloning are *not* here — they are directed by the
/// itinerary cursor and enacted by the server between visits, which is
/// exactly the separation of business logic from travel the paper
/// builds §3 around.
pub trait NapletContext {
    /// Name of the host this naplet currently executes on.
    fn host_name(&self) -> &str;

    /// The executing naplet's identifier.
    fn naplet_id(&self) -> &NapletId;

    /// Full (naplet-side) access to the carried state container.
    fn state(&mut self) -> &mut NapletState;

    /// The naplet's address book.
    fn address_book(&mut self) -> &mut AddressBook;

    /// Post a user message to a peer naplet through the server's
    /// Messenger. The peer must be present in the address book.
    fn post_message(&mut self, to: &NapletId, body: Value) -> Result<()>;

    /// Take the oldest waiting message from this naplet's mailbox,
    /// if any. Non-blocking: "it is the naplet that decides when to
    /// check its mailbox".
    fn get_message(&mut self) -> Result<Option<Message>>;

    /// Invoke a *non-privileged* (open) service registered on this
    /// server, by handler name (paper §2.2).
    fn call_service(&mut self, name: &str, args: Value) -> Result<Value>;

    /// Request a service channel to a *privileged* service: write a
    /// request down the channel and read the reply. One call models
    /// one `NapletWriter.writeLine` / `NapletReader.readLine` exchange
    /// over the synchronous pipe pair (paper §5.3). Repeated calls
    /// reuse the channel.
    fn channel_exchange(&mut self, service: &str, request: Value) -> Result<Value>;

    /// Report a result back to the owner's `NapletListener` at home.
    fn report_home(&mut self, body: Value) -> Result<()>;

    /// Current time on the server's clock.
    fn now(&self) -> Millis;

    /// Append a line to the naplet's execution log (diagnostics).
    fn log(&mut self, line: &str);
}

/// A minimal in-memory context for unit tests and single-host use:
/// services are closures, messages loop back into the own mailbox
/// queue, reports are collected.
pub struct LocalContext {
    host: String,
    id: NapletId,
    /// Carried naplet state.
    pub state: NapletState,
    /// Carried address book.
    pub address_book: AddressBook,
    /// Messages "sent" (captured for assertions).
    pub sent: Vec<(NapletId, Value)>,
    /// Incoming mailbox (push messages here in tests).
    pub inbox: Vec<Message>,
    /// Reports delivered home.
    pub reports: Vec<Value>,
    /// Captured log lines.
    pub log_lines: Vec<String>,
    clock: crate::clock::Clock,
    services: std::collections::HashMap<String, Box<dyn FnMut(Value) -> Result<Value> + Send>>,
    channels: std::collections::HashMap<String, Box<dyn FnMut(Value) -> Result<Value> + Send>>,
}

impl LocalContext {
    /// New local context for `id` pretending to run on `host`.
    pub fn new(host: &str, id: NapletId) -> LocalContext {
        LocalContext {
            host: host.to_string(),
            id,
            state: NapletState::new(),
            address_book: AddressBook::new(),
            sent: Vec::new(),
            inbox: Vec::new(),
            reports: Vec::new(),
            log_lines: Vec::new(),
            clock: crate::clock::Clock::virtual_at(Millis(0)),
            services: Default::default(),
            channels: Default::default(),
        }
    }

    /// Register an open service backed by a closure.
    pub fn register_service(
        &mut self,
        name: &str,
        f: impl FnMut(Value) -> Result<Value> + Send + 'static,
    ) {
        self.services.insert(name.to_string(), Box::new(f));
    }

    /// Register a privileged service backed by a closure.
    pub fn register_channel(
        &mut self,
        name: &str,
        f: impl FnMut(Value) -> Result<Value> + Send + 'static,
    ) {
        self.channels.insert(name.to_string(), Box::new(f));
    }

    /// The clock driving [`NapletContext::now`].
    pub fn clock(&self) -> &crate::clock::Clock {
        &self.clock
    }
}

impl NapletContext for LocalContext {
    fn host_name(&self) -> &str {
        &self.host
    }
    fn naplet_id(&self) -> &NapletId {
        &self.id
    }
    fn state(&mut self) -> &mut NapletState {
        &mut self.state
    }
    fn address_book(&mut self) -> &mut AddressBook {
        &mut self.address_book
    }
    fn post_message(&mut self, to: &NapletId, body: Value) -> Result<()> {
        if !self.address_book.knows(to) {
            return Err(NapletError::Communication(format!(
                "peer {to} not in address book"
            )));
        }
        self.sent.push((to.clone(), body));
        Ok(())
    }
    fn get_message(&mut self) -> Result<Option<Message>> {
        if self.inbox.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.inbox.remove(0)))
        }
    }
    fn call_service(&mut self, name: &str, args: Value) -> Result<Value> {
        match self.services.get_mut(name) {
            Some(f) => f(args),
            None => Err(NapletError::Service(format!("no open service `{name}`"))),
        }
    }
    fn channel_exchange(&mut self, service: &str, request: Value) -> Result<Value> {
        match self.channels.get_mut(service) {
            Some(f) => f(request),
            None => Err(NapletError::Service(format!(
                "no privileged service `{service}`"
            ))),
        }
    }
    fn report_home(&mut self, body: Value) -> Result<()> {
        self.reports.push(body);
        Ok(())
    }
    fn now(&self) -> Millis {
        self.clock.now()
    }
    fn log(&mut self, line: &str) {
        self.log_lines.push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Sender;

    fn nid(n: u64) -> NapletId {
        NapletId::new("u", "h", Millis(n)).unwrap()
    }

    #[test]
    fn services_dispatch_by_name() {
        let mut ctx = LocalContext::new("s1", nid(1));
        ctx.register_service("math.double", |v| Ok(Value::Int(v.as_int()? * 2)));
        assert_eq!(
            ctx.call_service("math.double", Value::Int(21)).unwrap(),
            Value::Int(42)
        );
        assert!(ctx.call_service("nope", Value::Nil).is_err());
    }

    #[test]
    fn channel_exchange_dispatches() {
        let mut ctx = LocalContext::new("s1", nid(1));
        ctx.register_channel("serviceImpl.NetManagement", |req| {
            Ok(Value::map([("echo", req)]))
        });
        let reply = ctx
            .channel_exchange("serviceImpl.NetManagement", Value::from("sysUpTime"))
            .unwrap();
        assert_eq!(reply.get("echo"), Value::from("sysUpTime"));
        assert!(ctx.channel_exchange("other", Value::Nil).is_err());
    }

    #[test]
    fn messaging_requires_address_book_entry() {
        let mut ctx = LocalContext::new("s1", nid(1));
        let peer = nid(2);
        assert!(ctx.post_message(&peer, Value::Nil).is_err());
        ctx.address_book.put(peer.clone(), "s2");
        ctx.post_message(&peer, Value::Int(5)).unwrap();
        assert_eq!(ctx.sent.len(), 1);
    }

    #[test]
    fn mailbox_and_reports() {
        let mut ctx = LocalContext::new("s1", nid(1));
        assert!(ctx.get_message().unwrap().is_none());
        ctx.inbox.push(Message::user(
            0,
            Sender::Owner("home".into()),
            nid(1),
            Millis(0),
            Value::Int(9),
        ));
        let m = ctx.get_message().unwrap().unwrap();
        assert_eq!(m.payload, crate::message::Payload::User(Value::Int(9)));
        ctx.report_home(Value::from("done")).unwrap();
        assert_eq!(ctx.reports, vec![Value::from("done")]);
    }

    #[test]
    fn state_and_log_accessible() {
        let mut ctx = LocalContext::new("s1", nid(1));
        ctx.state().set("k", 1i64);
        assert_eq!(ctx.state().get("k"), Value::Int(1));
        ctx.log("visited");
        assert_eq!(ctx.log_lines, vec!["visited"]);
        assert_eq!(ctx.host_name(), "s1");
        assert_eq!(ctx.naplet_id(), &nid(1));
    }
}
