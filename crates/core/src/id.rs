//! Hierarchical naplet identifiers (paper §2.1, Figure 1).
//!
//! A naplet identifier records **who, when and where** the naplet was
//! created, plus clone-heritage information: a sequence of integers in
//! which `0` is reserved for the originator in each generation. The
//! textual form is
//!
//! ```text
//! user@host:timestamp:h0.h1.h2...
//! ```
//!
//! e.g. `czxu@ece.eng.wayne.edu:010512172720:2.1` — the first clone of
//! the second clone of the original naplet created by `czxu`.
//! Identifiers are immutable for the naplet's whole life cycle.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::clock::Millis;
use crate::error::{NapletError, Result};

/// Immutable, system-wide unique naplet identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NapletId {
    user: String,
    home: String,
    created: Millis,
    /// Clone heritage. Empty for an original naplet; each element is
    /// the clone ordinal within its generation, with 0 reserved for
    /// the originator branch (see [`NapletId::clone_child`]).
    heritage: Vec<u32>,
}

impl NapletId {
    /// Create an original (un-cloned) identifier.
    ///
    /// `user` and `home` must be non-empty and must not contain the
    /// reserved separator characters `@`, `:` or whitespace
    /// (`home` may contain dots, as host names do).
    pub fn new(user: &str, home: &str, created: Millis) -> Result<NapletId> {
        validate_part(user, "user")?;
        validate_part(home, "home host")?;
        Ok(NapletId {
            user: user.to_string(),
            home: home.to_string(),
            created,
            heritage: Vec::new(),
        })
    }

    /// The creating user ("who").
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The home host on which the naplet was created ("where").
    /// The home server is derivable from the id, which is what lets
    /// home NapletManagers provide distributed directory service
    /// (paper §4.1).
    pub fn home(&self) -> &str {
        &self.home
    }

    /// Creation timestamp ("when").
    pub fn created(&self) -> Millis {
        self.created
    }

    /// Clone heritage sequence (empty for the original).
    pub fn heritage(&self) -> &[u32] {
        &self.heritage
    }

    /// True when this id belongs to the original, never-cloned naplet
    /// of its family.
    pub fn is_original(&self) -> bool {
        self.heritage.is_empty()
    }

    /// Number of clone generations between this naplet and the family
    /// original.
    pub fn generation(&self) -> usize {
        self.heritage.len()
    }

    /// Derive the identifier of the `ordinal`-th clone of this naplet.
    ///
    /// The paper reserves ordinal `0` for "the originator in a
    /// generation": when a naplet clones, the continuing parent is
    /// logically re-identified as `….0` and the `k`-th spawned clone as
    /// `….k` (`k ≥ 1`). Both are produced with this method.
    pub fn clone_child(&self, ordinal: u32) -> NapletId {
        let mut heritage = self.heritage.clone();
        heritage.push(ordinal);
        NapletId {
            user: self.user.clone(),
            home: self.home.clone(),
            created: self.created,
            heritage,
        }
    }

    /// The parent identifier in the clone tree, or `None` for the
    /// original.
    pub fn parent(&self) -> Option<NapletId> {
        if self.heritage.is_empty() {
            return None;
        }
        let mut heritage = self.heritage.clone();
        heritage.pop();
        Some(NapletId {
            user: self.user.clone(),
            home: self.home.clone(),
            created: self.created,
            heritage,
        })
    }

    /// The family original this naplet descends from.
    pub fn original(&self) -> NapletId {
        NapletId {
            user: self.user.clone(),
            home: self.home.clone(),
            created: self.created,
            heritage: Vec::new(),
        }
    }

    /// True if `self` is an ancestor of `other` in the clone tree
    /// (proper ancestor: `x` is not an ancestor of itself).
    pub fn is_ancestor_of(&self, other: &NapletId) -> bool {
        self.same_family(other)
            && self.heritage.len() < other.heritage.len()
            && other.heritage[..self.heritage.len()] == self.heritage[..]
    }

    /// True when two ids descend from the same original naplet.
    pub fn same_family(&self, other: &NapletId) -> bool {
        self.user == other.user && self.home == other.home && self.created == other.created
    }

    /// A short display form for logs: `user@host:…:heritage` with the
    /// timestamp elided.
    pub fn short(&self) -> String {
        if self.heritage.is_empty() {
            format!("{}@{}", self.user, self.home)
        } else {
            format!(
                "{}@{}:{}",
                self.user,
                self.home,
                heritage_string(&self.heritage)
            )
        }
    }
}

fn validate_part(s: &str, what: &str) -> Result<()> {
    if s.is_empty() {
        return Err(NapletError::Parse(format!("{what} must be non-empty")));
    }
    if s.chars().any(|c| c == '@' || c == ':' || c.is_whitespace()) {
        return Err(NapletError::Parse(format!(
            "{what} `{s}` contains a reserved character (@, : or whitespace)"
        )));
    }
    Ok(())
}

fn heritage_string(h: &[u32]) -> String {
    h.iter().map(u32::to_string).collect::<Vec<_>>().join(".")
}

impl fmt::Display for NapletId {
    /// Canonical textual form: `user@host:timestamp[:h0.h1...]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.user, self.home, self.created.0)?;
        if !self.heritage.is_empty() {
            write!(f, ":{}", heritage_string(&self.heritage))?;
        }
        Ok(())
    }
}

impl FromStr for NapletId {
    type Err = NapletError;

    fn from_str(s: &str) -> Result<NapletId> {
        let (user, rest) = s
            .split_once('@')
            .ok_or_else(|| NapletError::Parse(format!("missing `@` in naplet id `{s}`")))?;
        let mut parts = rest.split(':');
        let home = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| NapletError::Parse(format!("missing home host in `{s}`")))?;
        let ts_part = parts
            .next()
            .ok_or_else(|| NapletError::Parse(format!("missing timestamp in `{s}`")))?;
        let created = Millis(
            ts_part
                .parse::<u64>()
                .map_err(|_| NapletError::Parse(format!("bad timestamp `{ts_part}` in `{s}`")))?,
        );
        let heritage = match parts.next() {
            None | Some("") => Vec::new(),
            Some(h) => h
                .split('.')
                .map(|seg| {
                    seg.parse::<u32>().map_err(|_| {
                        NapletError::Parse(format!("bad heritage segment `{seg}` in `{s}`"))
                    })
                })
                .collect::<Result<Vec<u32>>>()?,
        };
        if parts.next().is_some() {
            return Err(NapletError::Parse(format!(
                "too many `:` sections in `{s}`"
            )));
        }
        let mut id = NapletId::new(user, home, created)?;
        id.heritage = heritage;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NapletId {
        NapletId::new("czxu", "ece.eng.wayne.edu", Millis(10512172720)).unwrap()
    }

    #[test]
    fn paper_example_displays() {
        // the Figure 1 example: czxu@ece.eng.wayne.edu:010512172720:2.1
        let id = base().clone_child(2).clone_child(1);
        assert_eq!(id.to_string(), "czxu@ece.eng.wayne.edu:10512172720:2.1");
        assert_eq!(id.generation(), 2);
    }

    #[test]
    fn parse_round_trip() {
        for s in [
            "czxu@ece.eng.wayne.edu:10512172720",
            "czxu@ece:1:0",
            "a@b:0:2.1.0.7",
            "user-1@host_2:999999999999:0.0.0",
        ] {
            let id: NapletId = s.parse().unwrap();
            assert_eq!(id.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "czxu",
            "czxu@",
            "@host:1",
            "czxu@host",
            "czxu@host:abc",
            "czxu@host:1:x",
            "czxu@host:1:2.",
            "czxu@host:1:2:3",
            "cz xu@host:1",
            "czxu@ho st:1",
            "czxu@host:1:-2",
        ] {
            assert!(s.parse::<NapletId>().is_err(), "should reject `{s}`");
        }
    }

    #[test]
    fn reserved_characters_rejected_at_creation() {
        assert!(NapletId::new("a@b", "h", Millis(0)).is_err());
        assert!(NapletId::new("a", "h:1", Millis(0)).is_err());
        assert!(NapletId::new("", "h", Millis(0)).is_err());
    }

    #[test]
    fn heritage_tree_relations() {
        let root = base();
        let continuing = root.clone_child(0); // originator branch
        let clone2 = root.clone_child(2);
        let clone21 = clone2.clone_child(1);

        assert!(root.is_original());
        assert!(!clone2.is_original());
        assert_eq!(clone21.parent().unwrap(), clone2);
        assert_eq!(clone2.parent().unwrap(), root);
        assert_eq!(root.parent(), None);
        assert_eq!(clone21.original(), root);

        assert!(root.is_ancestor_of(&clone21));
        assert!(clone2.is_ancestor_of(&clone21));
        assert!(!clone21.is_ancestor_of(&clone2));
        assert!(!root.is_ancestor_of(&root));
        assert!(!continuing.is_ancestor_of(&clone21));
        assert!(root.same_family(&clone21));
    }

    #[test]
    fn different_creations_are_different_families() {
        let a = NapletId::new("u", "h", Millis(1)).unwrap();
        let b = NapletId::new("u", "h", Millis(2)).unwrap();
        assert!(!a.same_family(&b));
        assert!(!a.is_ancestor_of(&b.clone_child(1)));
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let root = base();
        set.insert(root.clone());
        set.insert(root.clone_child(0));
        set.insert(root.clone_child(1));
        set.insert(root.clone_child(1)); // duplicate
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn short_form() {
        assert_eq!(base().short(), "czxu@ece.eng.wayne.edu");
        assert_eq!(base().clone_child(3).short(), "czxu@ece.eng.wayne.edu:3");
    }

    #[test]
    fn codec_round_trip() {
        let id = base().clone_child(4).clone_child(0);
        let bytes = crate::codec::to_bytes(&id).unwrap();
        let back: NapletId = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, id);
    }
}
