//! Application-specific agent state with protection modes (paper §2.1).
//!
//! `NapletState` is the serializable container a naplet carries between
//! servers. Every entry lives in one of three protection modes:
//!
//! * **private** — accessible to the naplet only (e.g. a shopping
//!   agent's gathered price list);
//! * **public** — accessible to any naplet server on the itinerary;
//! * **protected** — accessible to an explicit set of servers (e.g. so
//!   a server can update a returning naplet with new information).
//!
//! The naplet itself always has full access to its own state; the modes
//! govern what a *server* may read or write through the server-side
//! view. Access checks are enforced by [`ServerStateView`], which is the
//! only state handle a `NapletServer` ever receives.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{NapletError, Result};
use crate::value::Value;

/// Protection mode of one state entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// Accessible to the owning naplet only.
    Private,
    /// Accessible to any server on the itinerary.
    Public,
    /// Accessible only to the named servers.
    Protected(Vec<String>),
}

impl Access {
    /// May the server named `host` access an entry with this mode?
    fn server_allowed(&self, host: &str) -> bool {
        match self {
            Access::Private => false,
            Access::Public => true,
            Access::Protected(hosts) => hosts.iter().any(|h| h == host),
        }
    }
}

/// One protected entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Entry {
    value: Value,
    access: Access,
}

/// The serializable, mode-protected state container of a naplet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NapletState {
    entries: BTreeMap<String, Entry>,
}

impl NapletState {
    /// Empty state container.
    pub fn new() -> NapletState {
        NapletState::default()
    }

    /// Set an entry with an explicit protection mode (naplet-side:
    /// always allowed). Replacing an entry also replaces its mode.
    pub fn set_with_access(&mut self, key: &str, value: impl Into<Value>, access: Access) {
        self.entries.insert(
            key.to_string(),
            Entry {
                value: value.into(),
                access,
            },
        );
    }

    /// Set a private entry (the common case for gathered data).
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        self.set_with_access(key, value, Access::Private);
    }

    /// Set a public entry.
    pub fn set_public(&mut self, key: &str, value: impl Into<Value>) {
        self.set_with_access(key, value, Access::Public);
    }

    /// Set an entry readable/writable by the given servers only.
    pub fn set_protected<S: Into<String>>(
        &mut self,
        key: &str,
        value: impl Into<Value>,
        servers: impl IntoIterator<Item = S>,
    ) {
        self.set_with_access(
            key,
            value,
            Access::Protected(servers.into_iter().map(Into::into).collect()),
        );
    }

    /// Naplet-side read (always allowed). Returns `Nil` when missing.
    pub fn get(&self, key: &str) -> Value {
        self.entries
            .get(key)
            .map(|e| e.value.clone())
            .unwrap_or(Value::Nil)
    }

    /// Naplet-side in-place update of an existing entry, preserving its
    /// protection mode. Errors when the entry does not exist.
    pub fn update(&mut self, key: &str, f: impl FnOnce(&mut Value)) -> Result<()> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                f(&mut entry.value);
                Ok(())
            }
            None => Err(NapletError::StateAccess(format!("no state entry `{key}`"))),
        }
    }

    /// The protection mode of an entry, if present.
    pub fn access_of(&self, key: &str) -> Option<&Access> {
        self.entries.get(key).map(|e| &e.access)
    }

    /// Remove an entry (naplet-side).
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key).map(|e| e.value)
    }

    /// All keys, in deterministic order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate deep memory footprint in bytes, used by the
    /// NapletMonitor memory budget (paper §5.2).
    pub fn deep_size(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, e)| k.len() as u64 + e.value.deep_size() + 8)
            .sum()
    }

    /// Obtain the mode-enforcing view a server named `host` gets.
    pub fn server_view(&mut self, host: &str) -> ServerStateView<'_> {
        ServerStateView {
            state: self,
            host: host.to_string(),
        }
    }
}

/// The only handle a `NapletServer` receives onto a naplet's state:
/// every read and write is checked against the entry's protection mode.
pub struct ServerStateView<'a> {
    state: &'a mut NapletState,
    host: String,
}

impl ServerStateView<'_> {
    /// Server-side read; fails on private entries and on protected
    /// entries that do not list this server.
    pub fn get(&self, key: &str) -> Result<Value> {
        match self.state.entries.get(key) {
            None => Err(NapletError::StateAccess(format!("no state entry `{key}`"))),
            Some(e) if e.access.server_allowed(&self.host) => Ok(e.value.clone()),
            Some(_) => Err(NapletError::StateAccess(format!(
                "server `{}` may not read entry `{key}`",
                self.host
            ))),
        }
    }

    /// Server-side write to an *existing* entry, subject to its mode.
    /// Servers can update (e.g. refresh a returning naplet's protected
    /// data, paper §2.1) but cannot create or re-mode entries.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> Result<()> {
        match self.state.entries.get_mut(key) {
            None => Err(NapletError::StateAccess(format!(
                "server `{}` may not create entry `{key}`",
                self.host
            ))),
            Some(e) if e.access.server_allowed(&self.host) => {
                e.value = value.into();
                Ok(())
            }
            Some(_) => Err(NapletError::StateAccess(format!(
                "server `{}` may not write entry `{key}`",
                self.host
            ))),
        }
    }

    /// Keys this server is allowed to read.
    pub fn visible_keys(&self) -> Vec<String> {
        self.state
            .entries
            .iter()
            .filter(|(_, e)| e.access.server_allowed(&self.host))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NapletState {
        let mut s = NapletState::new();
        s.set("prices", Value::list([Value::Int(10), Value::Int(20)]));
        s.set_public("query", "cpu-load");
        s.set_protected("cache", Value::Int(7), ["ece", "cs"]);
        s
    }

    #[test]
    fn naplet_has_full_access() {
        let mut s = sample();
        assert_eq!(s.get("query"), Value::from("cpu-load"));
        assert_eq!(s.get("prices").as_list().unwrap().len(), 2);
        assert_eq!(s.get("cache"), Value::Int(7));
        assert_eq!(s.get("missing"), Value::Nil);
        s.update("cache", |v| *v = Value::Int(8)).unwrap();
        assert_eq!(s.get("cache"), Value::Int(8));
        assert!(s.update("missing", |_| ()).is_err());
    }

    #[test]
    fn private_hidden_from_servers() {
        let mut s = sample();
        let view = s.server_view("anyhost");
        assert!(view.get("prices").is_err());
        assert_eq!(view.get("query").unwrap(), Value::from("cpu-load"));
    }

    #[test]
    fn protected_limited_to_listed_servers() {
        let mut s = sample();
        assert!(s.server_view("ece").get("cache").is_ok());
        assert!(s.server_view("cs").get("cache").is_ok());
        assert!(s.server_view("other").get("cache").is_err());
    }

    #[test]
    fn server_writes_respect_modes() {
        let mut s = sample();
        // server may update a protected entry it is listed for
        s.server_view("ece").set("cache", Value::Int(99)).unwrap();
        assert_eq!(s.get("cache"), Value::Int(99));
        // but not private ones, and it cannot create entries
        assert!(s.server_view("ece").set("prices", Value::Nil).is_err());
        assert!(s.server_view("ece").set("new-entry", Value::Nil).is_err());
        // public entries are writable by anyone
        s.server_view("stranger").set("query", "mem-load").unwrap();
        assert_eq!(s.get("query"), Value::from("mem-load"));
    }

    #[test]
    fn visible_keys_filtered_per_server() {
        let mut s = sample();
        let mut keys = s.server_view("ece").visible_keys();
        keys.sort();
        assert_eq!(keys, ["cache", "query"]);
        assert_eq!(s.server_view("other").visible_keys(), ["query"]);
    }

    #[test]
    fn replace_changes_mode() {
        let mut s = sample();
        s.set("query", "now-private"); // re-set as private
        assert!(s.server_view("x").get("query").is_err());
        assert_eq!(s.access_of("query"), Some(&Access::Private));
    }

    #[test]
    fn remove_and_len() {
        let mut s = sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.remove("query"), Some(Value::from("cpu-load")));
        assert_eq!(s.remove("query"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn deep_size_tracks_content() {
        let empty = NapletState::new();
        let s = sample();
        assert_eq!(empty.deep_size(), 0);
        assert!(s.deep_size() > 0);
        let mut bigger = s.clone();
        bigger.set("blob", Value::Bytes(vec![0; 1024]));
        assert!(bigger.deep_size() > s.deep_size() + 1024);
    }

    #[test]
    fn state_travels_whole_through_codec() {
        // Private entries are hidden from servers *via the API*, but the
        // container serializes completely — the naplet carries them.
        let s = sample();
        let bytes = crate::codec::to_bytes(&s).unwrap();
        let back: NapletState = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.get("prices").as_list().unwrap().len(), 2);
    }
}
