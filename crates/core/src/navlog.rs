//! Navigation logs (paper §2.1).
//!
//! The `NavigationLog` records the arrival and departure time of the
//! naplet at each server it visits, giving the owner "detailed travel
//! information for post-analysis". Beyond raw records this module
//! provides the post-analysis itself: dwell times, transit times, and
//! per-host aggregation — the numbers several experiments report.

use serde::{Deserialize, Serialize};

use crate::clock::Millis;

/// One visit record. `departed` is `None` while the naplet is still
/// resident (or was terminated on site).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitRecord {
    /// Host visited.
    pub host: String,
    /// Arrival instant.
    pub arrived: Millis,
    /// Departure instant, if the naplet has left.
    pub departed: Option<Millis>,
}

impl VisitRecord {
    /// Time spent on the host, if the visit has completed.
    pub fn dwell(&self) -> Option<u64> {
        self.departed.map(|d| d.since(self.arrived))
    }
}

/// One permanently failed migration: the reliable-transfer layer
/// exhausted its retries trying to reach `host`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Destination the naplet could not reach.
    pub host: String,
    /// When the navigator gave up.
    pub at: Millis,
    /// Send attempts made before giving up.
    pub attempts: u32,
    /// Short human-readable cause ("no landing reply", ...).
    pub reason: String,
}

/// The travel log a naplet carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NavigationLog {
    records: Vec<VisitRecord>,
    failures: Vec<FailureRecord>,
}

impl NavigationLog {
    /// Empty log.
    pub fn new() -> NavigationLog {
        NavigationLog::default()
    }

    /// Record arrival at `host`.
    pub fn record_arrival(&mut self, host: impl Into<String>, at: Millis) {
        self.records.push(VisitRecord {
            host: host.into(),
            arrived: at,
            departed: None,
        });
    }

    /// Record departure from the current (latest) host. Returns `false`
    /// when there is no open visit to close — a protocol bug the caller
    /// should surface.
    pub fn record_departure(&mut self, at: Millis) -> bool {
        match self.records.last_mut() {
            Some(rec) if rec.departed.is_none() => {
                rec.departed = Some(at);
                true
            }
            _ => false,
        }
    }

    /// Record that a migration towards `host` permanently failed after
    /// `attempts` sends. Hosts recorded here are treated as unreachable
    /// by subsequent itinerary guard evaluation, which is how `Alt`
    /// patterns fall back to their next branch.
    pub fn record_failure(
        &mut self,
        host: impl Into<String>,
        at: Millis,
        attempts: u32,
        reason: impl Into<String>,
    ) {
        self.failures.push(FailureRecord {
            host: host.into(),
            at,
            attempts,
            reason: reason.into(),
        });
    }

    /// All permanent migration failures, in the order they occurred.
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Distinct hosts with at least one recorded migration failure.
    pub fn failed_hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.failures.iter().map(|f| f.host.clone()).collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }

    /// All records in visit order.
    pub fn records(&self) -> &[VisitRecord] {
        &self.records
    }

    /// The visit currently in progress, if any.
    pub fn current_visit(&self) -> Option<&VisitRecord> {
        self.records.last().filter(|r| r.departed.is_none())
    }

    /// Number of hops (arrivals) so far.
    pub fn hops(&self) -> usize {
        self.records.len()
    }

    /// The **visit epoch**: the number of arrivals recorded so far.
    ///
    /// The epoch is the exactly-once ratchet of crash recovery. A
    /// durable snapshot taken *after* a visit's effects were applied
    /// stores `applied_epoch == visit_epoch()`; a snapshot taken at
    /// admission stores `visit_epoch() - 1`. Recovery replays a
    /// rehydrated naplet's visit only when its journaled
    /// `applied_epoch` is behind the log — a visit whose effects
    /// already escaped (messages posted, reports sent) is resumed at
    /// its end instead of being run a second time.
    pub fn visit_epoch(&self) -> u64 {
        self.records.len() as u64
    }

    /// Hosts in visit order (with repetitions, as travelled).
    pub fn route(&self) -> Vec<&str> {
        self.records.iter().map(|r| r.host.as_str()).collect()
    }

    // ---------- post-analysis (paper: "for post-analysis") ----------

    /// Total time spent executing on hosts (sum of completed dwells).
    pub fn total_dwell(&self) -> u64 {
        self.records.iter().filter_map(VisitRecord::dwell).sum()
    }

    /// Total time spent in transit: gaps between a departure and the
    /// next arrival.
    pub fn total_transit(&self) -> u64 {
        self.records
            .windows(2)
            .filter_map(|w| w[0].departed.map(|d| w[1].arrived.since(d)))
            .sum()
    }

    /// End-to-end journey time from first arrival to last known event.
    pub fn journey_time(&self) -> u64 {
        let Some(first) = self.records.first() else {
            return 0;
        };
        let last = self
            .records
            .last()
            .map(|r| r.departed.unwrap_or(r.arrived))
            .unwrap_or(first.arrived);
        last.since(first.arrived)
    }

    /// Dwell time aggregated per host (host, total-dwell), sorted by
    /// host name for deterministic reporting.
    pub fn dwell_by_host(&self) -> Vec<(String, u64)> {
        let mut agg: std::collections::BTreeMap<String, u64> = Default::default();
        for r in &self.records {
            if let Some(d) = r.dwell() {
                *agg.entry(r.host.clone()).or_default() += d;
            }
        }
        agg.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> NavigationLog {
        let mut l = NavigationLog::new();
        l.record_arrival("s1", Millis(100));
        l.record_departure(Millis(150));
        l.record_arrival("s2", Millis(170));
        l.record_departure(Millis(200));
        l.record_arrival("s1", Millis(230));
        l
    }

    #[test]
    fn dwell_and_transit() {
        let l = log();
        assert_eq!(l.total_dwell(), 50 + 30);
        assert_eq!(l.total_transit(), 20 + 30);
        assert_eq!(l.journey_time(), 130);
        assert_eq!(l.hops(), 3);
    }

    #[test]
    fn open_visit_tracked() {
        let mut l = log();
        assert_eq!(l.current_visit().unwrap().host, "s1");
        assert!(l.record_departure(Millis(300)));
        assert!(l.current_visit().is_none());
        // double departure is a protocol error
        assert!(!l.record_departure(Millis(301)));
    }

    #[test]
    fn departure_without_arrival_rejected() {
        let mut l = NavigationLog::new();
        assert!(!l.record_departure(Millis(1)));
    }

    #[test]
    fn route_preserves_repetition() {
        assert_eq!(log().route(), ["s1", "s2", "s1"]);
    }

    #[test]
    fn visit_epoch_counts_arrivals_only() {
        let mut l = NavigationLog::new();
        assert_eq!(l.visit_epoch(), 0);
        l.record_arrival("s1", Millis(1));
        assert_eq!(l.visit_epoch(), 1);
        // departures do not advance the epoch
        l.record_departure(Millis(2));
        assert_eq!(l.visit_epoch(), 1);
        // revisits are distinct epochs: replay suppression must key on
        // the arrival count, not on distinct host names
        l.record_arrival("s1", Millis(3));
        assert_eq!(l.visit_epoch(), 2);
    }

    #[test]
    fn per_host_aggregation() {
        let mut l = log();
        l.record_departure(Millis(260));
        assert_eq!(
            l.dwell_by_host(),
            vec![("s1".to_string(), 50 + 30), ("s2".to_string(), 30)]
        );
    }

    #[test]
    fn empty_log_is_sane() {
        let l = NavigationLog::new();
        assert_eq!(l.journey_time(), 0);
        assert_eq!(l.total_dwell(), 0);
        assert_eq!(l.total_transit(), 0);
        assert!(l.current_visit().is_none());
    }

    #[test]
    fn codec_round_trip() {
        let mut l = log();
        l.record_failure("s9", Millis(240), 6, "no landing reply");
        let bytes = crate::codec::to_bytes(&l).unwrap();
        let back: NavigationLog = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn failures_recorded_and_deduped() {
        let mut l = NavigationLog::new();
        assert!(l.failed_hosts().is_empty());
        l.record_failure("s3", Millis(10), 6, "no landing reply");
        l.record_failure("s3", Millis(90), 6, "transfer unacknowledged");
        l.record_failure("s1", Millis(120), 3, "no landing reply");
        assert_eq!(l.failures().len(), 3);
        assert_eq!(l.failures()[0].attempts, 6);
        assert_eq!(l.failed_hosts(), vec!["s1".to_string(), "s3".to_string()]);
    }
}
