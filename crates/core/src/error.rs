//! Error types shared across the Naplet framework.
//!
//! The paper's Java implementation surfaces failures as exceptions
//! (`NapletCommunicationException` and friends). We model the same
//! taxonomy as a single [`NapletError`] enum so every crate in the
//! workspace can speak one error language at the API boundary.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Framework-wide error type.
///
/// Variants mirror the failure classes the paper names: security
/// (launch/landing denial), navigation (itinerary exceptions),
/// communication (post-office failures), resource control
/// (monitor/manager enforcement) and generic protocol violations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NapletError {
    /// A malformed identifier, URN, or other parse failure.
    Parse(String),
    /// Security policy denied an operation (paper §5.1).
    SecurityDenied {
        /// The permission that was requested.
        permission: String,
        /// Who requested it (textual naplet id or principal).
        subject: String,
    },
    /// The navigator could not complete a launch or landing (paper §2.2).
    Navigation(String),
    /// Itinerary is invalid or exhausted (paper §3).
    Itinerary(String),
    /// Post-office messaging failure (paper §4.2),
    /// the analogue of `NapletCommunicationException`.
    Communication(String),
    /// A naplet or host could not be located (paper §4.1).
    NotFound(String),
    /// Resource manager / monitor enforcement (paper §5.2–5.3):
    /// out of gas, memory budget exceeded, bandwidth exhausted.
    ResourceExhausted {
        /// Which budget was exhausted ("cpu", "memory", "bandwidth").
        resource: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A service channel operation failed (paper §5.3).
    Service(String),
    /// Attempted to mutate an immutable attribute (naplet id, codebase).
    Immutable(String),
    /// Access-mode violation on `NapletState` (paper §2.1).
    StateAccess(String),
    /// The VM trapped while executing mobile code.
    VmTrap(String),
    /// Serialization / wire-format failure.
    Codec(String),
    /// The operation timed out.
    Timeout(String),
    /// Anything else.
    Internal(String),
}

impl NapletError {
    /// Short machine-readable kind tag, used in logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            NapletError::Parse(_) => "parse",
            NapletError::SecurityDenied { .. } => "security",
            NapletError::Navigation(_) => "navigation",
            NapletError::Itinerary(_) => "itinerary",
            NapletError::Communication(_) => "communication",
            NapletError::NotFound(_) => "not-found",
            NapletError::ResourceExhausted { .. } => "resource",
            NapletError::Service(_) => "service",
            NapletError::Immutable(_) => "immutable",
            NapletError::StateAccess(_) => "state-access",
            NapletError::VmTrap(_) => "vm-trap",
            NapletError::Codec(_) => "codec",
            NapletError::Timeout(_) => "timeout",
            NapletError::Internal(_) => "internal",
        }
    }

    /// True when retrying the same operation later could succeed
    /// (transient failures: communication, timeout, not-found).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NapletError::Communication(_) | NapletError::Timeout(_) | NapletError::NotFound(_)
        )
    }
}

impl fmt::Display for NapletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NapletError::Parse(m) => write!(f, "parse error: {m}"),
            NapletError::SecurityDenied {
                permission,
                subject,
            } => {
                write!(
                    f,
                    "security: permission `{permission}` denied for {subject}"
                )
            }
            NapletError::Navigation(m) => write!(f, "navigation error: {m}"),
            NapletError::Itinerary(m) => write!(f, "itinerary error: {m}"),
            NapletError::Communication(m) => write!(f, "communication error: {m}"),
            NapletError::NotFound(m) => write!(f, "not found: {m}"),
            NapletError::ResourceExhausted { resource, detail } => {
                write!(f, "resource `{resource}` exhausted: {detail}")
            }
            NapletError::Service(m) => write!(f, "service error: {m}"),
            NapletError::Immutable(m) => write!(f, "immutable attribute: {m}"),
            NapletError::StateAccess(m) => write!(f, "state access violation: {m}"),
            NapletError::VmTrap(m) => write!(f, "vm trap: {m}"),
            NapletError::Codec(m) => write!(f, "codec error: {m}"),
            NapletError::Timeout(m) => write!(f, "timeout: {m}"),
            NapletError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for NapletError {}

/// Convenience alias used across all Naplet crates.
pub type Result<T> = std::result::Result<T, NapletError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = NapletError::SecurityDenied {
            permission: "LAUNCH".into(),
            subject: "czxu@ece:0:0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("LAUNCH"));
        assert!(s.contains("czxu@ece"));
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(NapletError::Parse("x".into()).kind(), "parse");
        assert_eq!(
            NapletError::ResourceExhausted {
                resource: "cpu".into(),
                detail: String::new()
            }
            .kind(),
            "resource"
        );
        assert_eq!(NapletError::VmTrap("div".into()).kind(), "vm-trap");
    }

    #[test]
    fn transience_classification() {
        assert!(NapletError::Communication("lost".into()).is_transient());
        assert!(NapletError::Timeout("t".into()).is_transient());
        assert!(!NapletError::Immutable("id".into()).is_transient());
        assert!(!NapletError::SecurityDenied {
            permission: "p".into(),
            subject: "s".into()
        }
        .is_transient());
    }

    #[test]
    fn serde_round_trip() {
        let e = NapletError::ResourceExhausted {
            resource: "memory".into(),
            detail: "budget 4096 exceeded".into(),
        };
        let bytes = crate::codec::to_bytes(&e).unwrap();
        let back: NapletError = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, e);
    }
}
