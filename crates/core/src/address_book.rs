//! Address books for inter-naplet communication (paper §2.1).
//!
//! Each naplet carries an `AddressBook`: a set of naplet identifiers
//! with their *initial* (home or last-known) locations. Locations may
//! be stale — they are hints that seed tracing and location (§4.1) —
//! but every entry provides at least one residing server to start a
//! forwarding chase from. The book grows as the naplet learns about
//! peers, and it is inherited (and extended) on clone. The framework
//! restricts communication to naplets whose identifiers appear in the
//! sender's book.

use serde::{Deserialize, Serialize};

use crate::id::NapletId;

/// One address book entry: a peer naplet and a location hint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressEntry {
    /// The peer's identifier.
    pub naplet_id: NapletId,
    /// A server the peer was last known to reside on (possibly stale).
    pub server: String,
}

/// The communication directory a naplet carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AddressBook {
    entries: Vec<AddressEntry>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> AddressBook {
        AddressBook::default()
    }

    /// Insert or update the location hint for a peer. Returns `true`
    /// when the peer was new to the book.
    pub fn put(&mut self, naplet_id: NapletId, server: impl Into<String>) -> bool {
        let server = server.into();
        match self.entries.iter_mut().find(|e| e.naplet_id == naplet_id) {
            Some(entry) => {
                entry.server = server;
                false
            }
            None => {
                self.entries.push(AddressEntry { naplet_id, server });
                true
            }
        }
    }

    /// Look up the location hint for a peer.
    pub fn lookup(&self, naplet_id: &NapletId) -> Option<&AddressEntry> {
        self.entries.iter().find(|e| &e.naplet_id == naplet_id)
    }

    /// True when the peer is known — the precondition the framework
    /// imposes on sending a message to it.
    pub fn knows(&self, naplet_id: &NapletId) -> bool {
        self.lookup(naplet_id).is_some()
    }

    /// Remove a peer, returning whether it was present.
    pub fn remove(&mut self, naplet_id: &NapletId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| &e.naplet_id != naplet_id);
        self.entries.len() != before
    }

    /// Iterate all entries (the `DataComm` collective pattern in the
    /// paper's Example 2 walks the book exactly like this).
    pub fn iter(&self) -> impl Iterator<Item = &AddressEntry> {
        self.entries.iter()
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no peers are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another book into this one (peer entries from `other`
    /// overwrite stale hints here). Used when a clone's discoveries are
    /// folded back into its parent, and when a book is inherited.
    pub fn merge(&mut self, other: &AddressBook) {
        for e in &other.entries {
            self.put(e.naplet_id.clone(), e.server.clone());
        }
    }

    /// The book a clone inherits: the parent's entries plus the parent
    /// itself at its current server, so siblings can always reach the
    /// originator branch.
    pub fn inherited(&self, parent: &NapletId, parent_server: &str) -> AddressBook {
        let mut book = self.clone();
        book.put(parent.clone(), parent_server);
        book
    }
}

impl<'a> IntoIterator for &'a AddressBook {
    type Item = &'a AddressEntry;
    type IntoIter = std::slice::Iter<'a, AddressEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Millis;

    fn nid(user: &str, n: u64) -> NapletId {
        NapletId::new(user, "host", Millis(n)).unwrap()
    }

    #[test]
    fn put_lookup_update() {
        let mut book = AddressBook::new();
        assert!(book.put(nid("a", 1), "s1"));
        assert!(book.put(nid("b", 2), "s2"));
        assert!(!book.put(nid("a", 1), "s9")); // update, not insert
        assert_eq!(book.len(), 2);
        assert_eq!(book.lookup(&nid("a", 1)).unwrap().server, "s9");
        assert!(book.knows(&nid("b", 2)));
        assert!(!book.knows(&nid("c", 3)));
    }

    #[test]
    fn remove() {
        let mut book = AddressBook::new();
        book.put(nid("a", 1), "s1");
        assert!(book.remove(&nid("a", 1)));
        assert!(!book.remove(&nid("a", 1)));
        assert!(book.is_empty());
    }

    #[test]
    fn merge_overwrites_stale_hints() {
        let mut a = AddressBook::new();
        a.put(nid("x", 1), "old");
        a.put(nid("y", 2), "keep");
        let mut b = AddressBook::new();
        b.put(nid("x", 1), "new");
        b.put(nid("z", 3), "add");
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.lookup(&nid("x", 1)).unwrap().server, "new");
        assert_eq!(a.lookup(&nid("y", 2)).unwrap().server, "keep");
    }

    #[test]
    fn clone_inheritance_includes_parent() {
        let mut parent_book = AddressBook::new();
        parent_book.put(nid("peer", 9), "sp");
        let parent = nid("czxu", 1);
        let child_book = parent_book.inherited(&parent, "current-server");
        assert!(child_book.knows(&parent));
        assert!(child_book.knows(&nid("peer", 9)));
        assert_eq!(child_book.lookup(&parent).unwrap().server, "current-server");
        // the parent book itself is untouched
        assert!(!parent_book.knows(&parent));
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut book = AddressBook::new();
        book.put(nid("a", 1), "s1");
        book.put(nid("b", 2), "s2");
        let names: Vec<&str> = book.iter().map(|e| e.naplet_id.user()).collect();
        assert_eq!(names, ["a", "b"]);
        let count = (&book).into_iter().count();
        assert_eq!(count, 2);
    }

    #[test]
    fn codec_round_trip() {
        let mut book = AddressBook::new();
        book.put(nid("a", 1), "s1");
        let bytes = crate::codec::to_bytes(&book).unwrap();
        let back: AddressBook = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, book);
    }
}
