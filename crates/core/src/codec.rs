//! `napcode`: the Naplet wire format.
//!
//! The paper relies on Java object serialization to move agents, state and
//! messages between servers. The approved offline dependency set contains
//! `serde` but no serialization *format* crate, so Naplet-RS ships its own
//! compact, non-self-describing binary format (in the spirit of bincode):
//!
//! * unsigned integers: LEB128 varint
//! * signed integers: zigzag + varint
//! * floats: little-endian IEEE-754
//! * strings / byte strings: varint length prefix + raw bytes
//! * options: 1-byte tag
//! * enums: varint variant index + payload
//! * sequences / maps: varint element count + elements
//! * tuples / structs: fields in declaration order, no framing
//!
//! Because the format is not self-describing, both ends must agree on the
//! type — exactly the contract Java serialization gives the paper (both
//! sides load the same class). Every byte written is accounted by the
//! network fabric, which makes traffic measurements byte-accurate.

use std::fmt::Display;

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use serde::Deserialize;

use crate::error::{NapletError, Result};

/// Serialize a value into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    value.serialize(&mut Encoder { out: &mut out })?;
    Ok(out)
}

/// Serialize a value into a caller-supplied scratch buffer.
///
/// The buffer is cleared first, so its capacity is reused across calls —
/// the hot-path alternative to [`to_bytes`] when the same thread encodes
/// many values in a row. The bytes produced are identical to
/// [`to_bytes`].
pub fn to_bytes_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    value.serialize(&mut Encoder { out })?;
    Ok(())
}

/// Deserialize a value from a byte slice, requiring full consumption.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T> {
    let mut de = Decoder { input: bytes };
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(NapletError::Codec(format!(
            "{} trailing bytes after value",
            de.input.len()
        )))
    }
}

/// Serialized size of a value in bytes — the framework's canonical measure
/// of "how much would this cost on the wire", used for traffic metering
/// and memory budgeting.
///
/// Computed by a counting serializer that never materialises the bytes,
/// so sizing a large agent costs no allocation. The result is always
/// exactly `to_bytes(value)?.len()`.
pub fn encoded_size<T: Serialize + ?Sized>(value: &T) -> Result<u64> {
    let mut counter = SizeCounter { len: 0 };
    value.serialize(&mut counter)?;
    Ok(counter.len)
}

impl ser::Error for NapletError {
    fn custom<T: Display>(msg: T) -> Self {
        NapletError::Codec(msg.to_string())
    }
}

impl de::Error for NapletError {
    fn custom<T: Display>(msg: T) -> Self {
        NapletError::Codec(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// varint primitives
// ---------------------------------------------------------------------------

pub(crate) fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length in bytes of `v` as a LEB128 uvarint (1..=10).
pub fn uvarint_len(v: u64) -> u64 {
    u64::from((64 - v.max(1).leading_zeros()).div_ceil(7))
}

pub(crate) fn read_uvarint(input: &mut &[u8]) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input
            .split_first()
            .ok_or_else(|| NapletError::Codec("eof in varint".into()))?;
        *input = rest;
        if shift == 63 && byte > 1 {
            return Err(NapletError::Codec("varint overflow".into()));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(NapletError::Codec("varint too long".into()));
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Encoder<'a> {
    fn put_u64(&mut self, v: u64) {
        write_uvarint(self.out, v);
    }
    fn put_i64(&mut self, v: i64) {
        write_uvarint(self.out, zigzag(v));
    }
    fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.out.extend_from_slice(b);
    }
}

/// Sequence/map serializer that knows the count up-front.
struct SizedCompound<'a, 'b> {
    enc: &'b mut Encoder<'a>,
}

/// Sequence/map serializer for iterators of unknown length: elements are
/// buffered, counted, then emitted with a varint count prefix.
struct BufferedCompound<'a, 'b> {
    enc: &'b mut Encoder<'a>,
    buf: Vec<u8>,
    count: u64,
}

impl<'a, 'b> ser::Serializer for &'b mut Encoder<'a> {
    type Ok = ();
    type Error = NapletError;
    type SerializeSeq = CompoundEncoder<'a, 'b>;
    type SerializeTuple = SizedCompound<'a, 'b>;
    type SerializeTupleStruct = SizedCompound<'a, 'b>;
    type SerializeTupleVariant = SizedCompound<'a, 'b>;
    type SerializeMap = CompoundEncoder<'a, 'b>;
    type SerializeStruct = SizedCompound<'a, 'b>;
    type SerializeStructVariant = SizedCompound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.put_i64(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.put_u64(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.put_u64(v as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_bytes(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_bytes(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put_u64(variant_index.into());
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put_u64(variant_index.into());
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        match len {
            Some(n) => {
                self.put_u64(n as u64);
                Ok(CompoundEncoder::Sized(SizedCompound { enc: self }))
            }
            None => Ok(CompoundEncoder::Buffered(BufferedCompound {
                enc: self,
                buf: Vec::new(),
                count: 0,
            })),
        }
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(SizedCompound { enc: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(SizedCompound { enc: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.put_u64(variant_index.into());
        Ok(SizedCompound { enc: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        match len {
            Some(n) => {
                self.put_u64(n as u64);
                Ok(CompoundEncoder::Sized(SizedCompound { enc: self }))
            }
            None => Ok(CompoundEncoder::Buffered(BufferedCompound {
                enc: self,
                buf: Vec::new(),
                count: 0,
            })),
        }
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(SizedCompound { enc: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.put_u64(variant_index.into());
        Ok(SizedCompound { enc: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Either-sized compound encoder used for seqs and maps.
enum CompoundEncoder<'a, 'b> {
    Sized(SizedCompound<'a, 'b>),
    Buffered(BufferedCompound<'a, 'b>),
}

impl<'a, 'b> ser::SerializeSeq for CompoundEncoder<'a, 'b> {
    type Ok = ();
    type Error = NapletError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        match self {
            CompoundEncoder::Sized(s) => value.serialize(&mut *s.enc),
            CompoundEncoder::Buffered(b) => {
                b.count += 1;
                value.serialize(&mut Encoder { out: &mut b.buf })
            }
        }
    }
    fn end(self) -> Result<()> {
        match self {
            CompoundEncoder::Sized(_) => Ok(()),
            CompoundEncoder::Buffered(b) => {
                b.enc.put_u64(b.count);
                b.enc.out.extend_from_slice(&b.buf);
                Ok(())
            }
        }
    }
}

impl<'a, 'b> ser::SerializeMap for CompoundEncoder<'a, 'b> {
    type Ok = ();
    type Error = NapletError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, key)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

macro_rules! impl_sized_compound {
    ($trait:ident, $method:ident) => {
        impl<'a, 'b> ser::$trait for SizedCompound<'a, 'b> {
            type Ok = ();
            type Error = NapletError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut *self.enc)
            }
            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
    ($trait:ident, $method:ident, named) => {
        impl<'a, 'b> ser::$trait for SizedCompound<'a, 'b> {
            type Ok = ();
            type Error = NapletError;
            fn $method<T: Serialize + ?Sized>(
                &mut self,
                _key: &'static str,
                value: &T,
            ) -> Result<()> {
                value.serialize(&mut *self.enc)
            }
            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_sized_compound!(SerializeTuple, serialize_element);
impl_sized_compound!(SerializeTupleStruct, serialize_field);
impl_sized_compound!(SerializeTupleVariant, serialize_field);
impl_sized_compound!(SerializeStruct, serialize_field, named);
impl_sized_compound!(SerializeStructVariant, serialize_field, named);

// ---------------------------------------------------------------------------
// Size counter
// ---------------------------------------------------------------------------

/// Serializer twin of [`Encoder`] that adds up byte lengths instead of
/// writing them. Every arm must mirror the encoder exactly — the
/// `encoded_size_matches_bytes` tests (unit + proptest) hold the two in
/// lock-step.
struct SizeCounter {
    len: u64,
}

impl SizeCounter {
    fn put_u64(&mut self, v: u64) {
        self.len += uvarint_len(v);
    }
    fn put_i64(&mut self, v: i64) {
        self.put_u64(zigzag(v));
    }
    fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.len += b.len() as u64;
    }
}

/// Compound counter: sized compounds already counted their prefix;
/// unknown-length seqs/maps count elements as they stream by and charge
/// the count prefix at `end` (position is irrelevant for a sum).
enum CountCompound<'a> {
    Sized(&'a mut SizeCounter),
    Counted {
        counter: &'a mut SizeCounter,
        count: u64,
    },
}

impl<'a> ser::Serializer for &'a mut SizeCounter {
    type Ok = ();
    type Error = NapletError;
    type SerializeSeq = CountCompound<'a>;
    type SerializeTuple = CountCompound<'a>;
    type SerializeTupleStruct = CountCompound<'a>;
    type SerializeTupleVariant = CountCompound<'a>;
    type SerializeMap = CountCompound<'a>;
    type SerializeStruct = CountCompound<'a>;
    type SerializeStructVariant = CountCompound<'a>;

    fn serialize_bool(self, _v: bool) -> Result<()> {
        self.len += 1;
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.put_i64(v.into());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.put_i64(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.put_u64(v.into());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.put_u64(v);
        Ok(())
    }
    fn serialize_f32(self, _v: f32) -> Result<()> {
        self.len += 4;
        Ok(())
    }
    fn serialize_f64(self, _v: f64) -> Result<()> {
        self.len += 8;
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.put_u64(v as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_bytes(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_bytes(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<()> {
        self.len += 1;
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.len += 1;
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put_u64(variant_index.into());
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put_u64(variant_index.into());
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        match len {
            Some(n) => {
                self.put_u64(n as u64);
                Ok(CountCompound::Sized(self))
            }
            None => Ok(CountCompound::Counted {
                counter: self,
                count: 0,
            }),
        }
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(CountCompound::Sized(self))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(CountCompound::Sized(self))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.put_u64(variant_index.into());
        Ok(CountCompound::Sized(self))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        match len {
            Some(n) => {
                self.put_u64(n as u64);
                Ok(CountCompound::Sized(self))
            }
            None => Ok(CountCompound::Counted {
                counter: self,
                count: 0,
            }),
        }
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(CountCompound::Sized(self))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.put_u64(variant_index.into());
        Ok(CountCompound::Sized(self))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl CountCompound<'_> {
    fn count_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        match self {
            CountCompound::Sized(c) => value.serialize(&mut **c),
            CountCompound::Counted { counter, count } => {
                *count += 1;
                value.serialize(&mut **counter)
            }
        }
    }
    fn finish(self) -> Result<()> {
        if let CountCompound::Counted { counter, count } = self {
            counter.put_u64(count);
        }
        Ok(())
    }
}

impl ser::SerializeSeq for CountCompound<'_> {
    type Ok = ();
    type Error = NapletError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.count_element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeMap for CountCompound<'_> {
    type Ok = ();
    type Error = NapletError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        self.count_element(key)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.count_element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

macro_rules! impl_count_compound {
    ($trait:ident, $method:ident) => {
        impl ser::$trait for CountCompound<'_> {
            type Ok = ();
            type Error = NapletError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                self.count_element(value)
            }
            fn end(self) -> Result<()> {
                self.finish()
            }
        }
    };
    ($trait:ident, $method:ident, named) => {
        impl ser::$trait for CountCompound<'_> {
            type Ok = ();
            type Error = NapletError;
            fn $method<T: Serialize + ?Sized>(
                &mut self,
                _key: &'static str,
                value: &T,
            ) -> Result<()> {
                self.count_element(value)
            }
            fn end(self) -> Result<()> {
                self.finish()
            }
        }
    };
}

impl_count_compound!(SerializeTuple, serialize_element);
impl_count_compound!(SerializeTupleStruct, serialize_field);
impl_count_compound!(SerializeTupleVariant, serialize_field);
impl_count_compound!(SerializeStruct, serialize_field, named);
impl_count_compound!(SerializeStructVariant, serialize_field, named);

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(NapletError::Codec(format!(
                "eof: wanted {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }
    fn get_u64(&mut self) -> Result<u64> {
        read_uvarint(&mut self.input)
    }
    fn get_i64(&mut self) -> Result<i64> {
        Ok(unzigzag(self.get_u64()?))
    }
    fn get_len_bytes(&mut self) -> Result<&'de [u8]> {
        let len = self.get_u64()? as usize;
        self.take(len)
    }
}

macro_rules! de_int {
    ($fn:ident, $visit:ident, $ty:ty, signed) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.get_i64()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| {
                NapletError::Codec(format!("{} out of range for {}", v, stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
    ($fn:ident, $visit:ident, $ty:ty, unsigned) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.get_u64()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| {
                NapletError::Codec(format!("{} out of range for {}", v, stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = NapletError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(NapletError::Codec(
            "napcode is not self-describing; deserialize_any unsupported".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(NapletError::Codec(format!("invalid bool byte {b}"))),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8, signed);
    de_int!(deserialize_i16, visit_i16, i16, signed);
    de_int!(deserialize_i32, visit_i32, i32, signed);
    de_int!(deserialize_u8, visit_u8, u8, unsigned);
    de_int!(deserialize_u16, visit_u16, u16, unsigned);
    de_int!(deserialize_u32, visit_u32, u32, unsigned);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_i64()?;
        visitor.visit_i64(v)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u64()?;
        visitor.visit_u64(v)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let b = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let b = self.take(8)?;
        visitor.visit_f64(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = u32::try_from(self.get_u64()?)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| NapletError::Codec("invalid char".into()))?;
        visitor.visit_char(v)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.get_len_bytes()?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| NapletError::Codec(format!("invalid utf8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.get_len_bytes()?;
        visitor.visit_borrowed_bytes(bytes)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(NapletError::Codec(format!("invalid option tag {b}"))),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_u64()? as usize;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_u64()? as usize;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(NapletError::Codec("identifiers not encoded".into()))
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(NapletError::Codec(
            "cannot skip unknown fields in napcode".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'de, 'a> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for CountedAccess<'de, 'a> {
    type Error = NapletError;
    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for CountedAccess<'de, 'a> {
    type Error = NapletError;
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'de, 'a> {
    de: &'a mut Decoder<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'de, 'a> {
    type Error = NapletError;
    type Variant = VariantAccess<'de, 'a>;
    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let index = u32::try_from(self.de.get_u64()?)
            .map_err(|_| NapletError::Codec("variant index overflow".into()))?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'de, 'a> {
    de: &'a mut Decoder<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'de, 'a> {
    type Error = NapletError;
    fn unit_variant(self) -> Result<()> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use serde::{Deserialize, Serialize};

    use super::*;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, value);
        back
    }

    #[test]
    fn primitives() {
        round_trip(&true);
        round_trip(&false);
        round_trip(&0u8);
        round_trip(&255u8);
        round_trip(&-1i32);
        round_trip(&i64::MIN);
        round_trip(&i64::MAX);
        round_trip(&u64::MAX);
        round_trip(&3.5f32);
        round_trip(&-0.25f64);
        round_trip(&'λ');
        round_trip(&"hello naplet".to_string());
    }

    #[test]
    fn small_negative_ints_are_compact() {
        // zigzag makes -1 cost one byte
        assert_eq!(to_bytes(&-1i64).unwrap().len(), 1);
        assert_eq!(to_bytes(&1i64).unwrap().len(), 1);
        assert_eq!(to_bytes(&0i64).unwrap().len(), 1);
    }

    #[test]
    fn collections() {
        round_trip(&vec![1u32, 2, 3, 4, 5]);
        round_trip(&vec!["a".to_string(), "b".to_string()]);
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1i64);
        m.insert("y".to_string(), -2i64);
        round_trip(&m);
        round_trip(&Some(42u16));
        round_trip(&Option::<u16>::None);
        round_trip(&(1u8, "two".to_string(), 3.0f64));
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Sample {
        Unit,
        New(u32),
        Tup(i8, String),
        Struct { a: Vec<u8>, b: Option<bool> },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Nested {
        name: String,
        samples: Vec<Sample>,
        flags: (bool, bool),
        blob: Vec<u8>,
    }

    #[test]
    fn enums_and_structs() {
        round_trip(&Sample::Unit);
        round_trip(&Sample::New(7));
        round_trip(&Sample::Tup(-3, "t".into()));
        round_trip(&Sample::Struct {
            a: vec![1, 2],
            b: Some(false),
        });
        round_trip(&Nested {
            name: "czxu@ece".into(),
            samples: vec![Sample::Unit, Sample::New(1)],
            flags: (true, false),
            blob: vec![0; 300],
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&"hello".to_string()).unwrap();
        assert!(from_bytes::<String>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn encoded_size_matches_bytes() {
        let v = Nested {
            name: "n".into(),
            samples: vec![Sample::New(9)],
            flags: (false, true),
            blob: vec![7; 19],
        };
        assert_eq!(
            encoded_size(&v).unwrap(),
            to_bytes(&v).unwrap().len() as u64
        );
    }

    #[test]
    fn uvarint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_uvarint(&mut out, v);
            let mut slice = out.as_slice();
            assert_eq!(read_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn uvarint_len_matches_write_uvarint() {
        for shift in 0..64 {
            for v in [1u64 << shift, (1u64 << shift) - 1, (1u64 << shift) + 1] {
                let mut out = Vec::new();
                write_uvarint(&mut out, v);
                assert_eq!(uvarint_len(v), out.len() as u64, "v={v}");
            }
        }
    }

    /// Serializes through `serialize_seq(None)`, forcing the buffered /
    /// counted compound path that derived impls never exercise.
    struct UnsizedSeq(Vec<i64>);

    impl Serialize for UnsizedSeq {
        fn serialize<S: serde::Serializer>(
            &self,
            serializer: S,
        ) -> std::result::Result<S::Ok, S::Error> {
            use serde::ser::SerializeSeq;
            let mut seq = serializer.serialize_seq(None)?;
            for v in &self.0 {
                seq.serialize_element(v)?;
            }
            seq.end()
        }
    }

    #[test]
    fn counted_size_matches_bytes_for_unsized_seq() {
        // 200 elements pushes the count prefix to two varint bytes
        let v = UnsizedSeq((0..200).map(|i| i - 100).collect());
        assert_eq!(
            encoded_size(&v).unwrap(),
            to_bytes(&v).unwrap().len() as u64
        );
    }

    #[test]
    fn to_bytes_into_reuses_and_matches() {
        let v = Nested {
            name: "scratch".into(),
            samples: vec![Sample::Tup(-3, "x".into()), Sample::Unit],
            flags: (true, true),
            blob: vec![9; 100],
        };
        let mut scratch = Vec::new();
        to_bytes_into(&"first".to_string(), &mut scratch).unwrap();
        to_bytes_into(&v, &mut scratch).unwrap();
        assert_eq!(scratch, to_bytes(&v).unwrap());
        let back: Nested = from_bytes(&scratch).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn varint_overflow_detected() {
        // 10 bytes of 0xFF encodes more than 64 bits
        let bad = [0xffu8; 10];
        let mut slice = &bad[..];
        assert!(read_uvarint(&mut slice).is_err());
    }
}
