//! Naplet behaviours: the lifecycle hooks of the `Naplet` class
//! (paper §2.1).
//!
//! A behaviour holds the application's server-specific business logic
//! `S`. The paper's hooks map one-to-one:
//!
//! * `onStart()` — abstract, "the single entry point when the naplet
//!   arrives at a host" → [`NapletBehavior::on_start`] (required);
//! * `onInterrupt()` — remote control reaction → `on_interrupt`;
//! * `onStop()` — before departure → `on_stop`;
//! * `onDestroy()` — before the naplet is destroyed → `on_destroy`.
//!
//! Behaviours are deliberately **stateless across migration**: all
//! persistent agent state lives in the carried [`NapletState`]
//! container, as in the paper. On each arrival the server materializes
//! a fresh behaviour instance from the codebase registry (the lazy
//! code-loading model) and drives its hooks.
//!
//! Post-actions `T` (the paper's `Operable`) are modelled by
//! [`Operable`] and dispatched by name via [`ActionRegistry`].
//!
//! [`NapletState`]: crate::state::NapletState

use std::collections::HashMap;
use std::sync::Arc;

use crate::context::NapletContext;
use crate::error::{NapletError, Result};
use crate::message::ControlVerb;

/// Application-specific agent logic, instantiated per arrival.
pub trait NapletBehavior: Send {
    /// Entry point on arrival at a host (the abstract `onStart()`).
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()>;

    /// Reaction to a system (control) message cast onto the naplet.
    /// Default: ignore (the paper leaves the reaction unspecified,
    /// to be defined by the creator).
    fn on_interrupt(&mut self, _ctx: &mut dyn NapletContext, _verb: &ControlVerb) -> Result<()> {
        Ok(())
    }

    /// Called when the naplet is about to leave the host.
    fn on_stop(&mut self, _ctx: &mut dyn NapletContext) -> Result<()> {
        Ok(())
    }

    /// Called when the naplet is about to be destroyed (journey end or
    /// termination).
    fn on_destroy(&mut self, _ctx: &mut dyn NapletContext) -> Result<()> {
        Ok(())
    }
}

/// A post-action `T` run after a visit (the paper's `Operable`
/// interface with its single `operate(Naplet)` method).
pub trait Operable: Send + Sync {
    /// Perform the itinerary-dependent control logic.
    fn operate(&self, ctx: &mut dyn NapletContext) -> Result<()>;
}

impl<F> Operable for F
where
    F: Fn(&mut dyn NapletContext) -> Result<()> + Send + Sync,
{
    fn operate(&self, ctx: &mut dyn NapletContext) -> Result<()> {
        self(ctx)
    }
}

/// Registry resolving [`ActionSpec::Named`] post-actions to code at the
/// executing server.
///
/// [`ActionSpec::Named`]: crate::itinerary::ActionSpec::Named
#[derive(Default, Clone)]
pub struct ActionRegistry {
    actions: HashMap<String, Arc<dyn Operable>>,
}

impl ActionRegistry {
    /// Empty registry.
    pub fn new() -> ActionRegistry {
        ActionRegistry::default()
    }

    /// Register an operable under `name`, replacing any previous one.
    pub fn register(&mut self, name: &str, op: impl Operable + 'static) {
        self.actions.insert(name.to_string(), Arc::new(op));
    }

    /// Resolve a named action.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Operable>> {
        self.actions
            .get(name)
            .cloned()
            .ok_or_else(|| NapletError::NotFound(format!("no registered action `{name}`")))
    }

    /// Registered action names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.actions.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for ActionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionRegistry")
            .field("actions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Millis;
    use crate::context::LocalContext;
    use crate::id::NapletId;
    use crate::value::Value;

    struct Collector;

    impl NapletBehavior for Collector {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
            let host = ctx.host_name().to_string();
            ctx.state().update("visits", |v| {
                if let Value::List(l) = v {
                    l.push(Value::Str(host.clone()));
                }
            })?;
            Ok(())
        }
        fn on_interrupt(&mut self, ctx: &mut dyn NapletContext, verb: &ControlVerb) -> Result<()> {
            ctx.log(&format!("interrupted: {verb:?}"));
            Ok(())
        }
    }

    fn ctx() -> LocalContext {
        let id = NapletId::new("u", "h", Millis(1)).unwrap();
        let mut c = LocalContext::new("s1", id);
        c.state.set("visits", Value::list([]));
        c
    }

    #[test]
    fn lifecycle_hooks_run() {
        let mut b = Collector;
        let mut c = ctx();
        b.on_start(&mut c).unwrap();
        assert_eq!(c.state.get("visits").as_list().unwrap().len(), 1);
        b.on_interrupt(&mut c, &ControlVerb::Callback).unwrap();
        assert_eq!(c.log_lines.len(), 1);
        b.on_stop(&mut c).unwrap();
        b.on_destroy(&mut c).unwrap();
    }

    #[test]
    fn closures_are_operable() {
        let mut reg = ActionRegistry::new();
        reg.register("report", |ctx: &mut dyn NapletContext| {
            let snapshot = ctx.state().get("visits");
            ctx.report_home(snapshot)
        });
        let mut c = ctx();
        reg.get("report").unwrap().operate(&mut c).unwrap();
        assert_eq!(c.reports.len(), 1);
        assert!(reg.get("missing").is_err());
        assert_eq!(reg.names(), vec!["report".to_string()]);
    }
}
