//! # naplet-core
//!
//! Core agent model of **Naplet-RS**, a Rust reproduction of
//! *"Naplet: A Flexible Mobile Agent Framework for Network-Centric
//! Applications"* (Cheng-Zhong Xu, IPPS 2002).
//!
//! This crate contains everything an agent *carries*: its hierarchical
//! identifier, credential, protected state container, structured
//! itinerary with traversal cursor, address book and navigation log —
//! plus the traits the hosting environment implements (execution
//! context, behaviours, operable post-actions), the lazy code-loading
//! registry, the wire codec and a shared dynamic value type.
//!
//! Server-side machinery (navigator, messenger, locator, monitor, …)
//! lives in `naplet-server`; the mobile-code VM in `naplet-vm`; the
//! metered network fabric in `naplet-net`.
//!
//! ## Quick tour
//!
//! ```
//! use naplet_core::clock::Millis;
//! use naplet_core::credential::SigningKey;
//! use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern, Step};
//! use naplet_core::naplet::{AgentKind, Naplet};
//!
//! let key = SigningKey::new("czxu", b"campus-secret");
//! let itinerary = Itinerary::new(Pattern::seq_of_hosts(&["s1", "s2"], None))
//!     .unwrap()
//!     .with_final_action(ActionSpec::ReportHome);
//!
//! let mut naplet = Naplet::create(
//!     &key, "czxu", "home.host", Millis(0),
//!     "naplet://code/demo.jar", AgentKind::Native, itinerary, vec![],
//! ).unwrap();
//!
//! // the itinerary directs travel; the server enacts it
//! match naplet.advance() {
//!     Step::Visit { host, .. } => assert_eq!(host, "s1"),
//!     other => panic!("unexpected step {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod address_book;
pub mod behavior;
pub mod clock;
pub mod codebase;
pub mod codec;
pub mod context;
pub mod credential;
pub mod error;
pub mod id;
pub mod itinerary;
pub mod message;
pub mod naplet;
pub mod navlog;
pub mod state;
pub mod tracectx;
pub mod value;

pub use address_book::{AddressBook, AddressEntry};
pub use behavior::{ActionRegistry, NapletBehavior, Operable};
pub use clock::{Clock, Millis};
pub use codebase::{CodeCache, CodebaseRegistry};
pub use context::{LocalContext, NapletContext};
pub use credential::{Credential, SigningKey};
pub use error::{NapletError, Result};
pub use id::NapletId;
pub use itinerary::{ActionSpec, Cursor, Guard, GuardEnv, Itinerary, Pattern, Step, Visit};
pub use message::{ControlVerb, Mailbox, Message, Payload, Sender};
pub use naplet::{AgentKind, Naplet};
pub use navlog::{NavigationLog, VisitRecord};
pub use state::{Access, NapletState, ServerStateView};
pub use value::Value;
