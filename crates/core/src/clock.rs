//! Time sources for the framework.
//!
//! Naplet IDs embed creation timestamps and the navigation log records
//! arrival/departure instants. Real deployments use wall-clock time;
//! tests and deterministic experiments use a manually advanced virtual
//! clock. Everything in the framework that needs "now" takes a
//! [`Clock`], never `SystemTime` directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// A timestamp in milliseconds. For the real clock this is milliseconds
/// since the Unix epoch; for virtual clocks it is milliseconds since an
/// arbitrary origin. Only differences and ordering are meaningful to
/// the framework itself.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millis(pub u64);

impl Millis {
    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Millis) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Timestamp advanced by `ms` milliseconds.
    pub fn plus(self, ms: u64) -> Millis {
        Millis(self.0.saturating_add(ms))
    }
}

impl std::fmt::Display for Millis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A source of time. Cheap to clone; clones observe the same clock.
#[derive(Clone, Default)]
pub enum Clock {
    /// Wall-clock time from the OS.
    #[default]
    System,
    /// A virtual clock advanced explicitly (deterministic tests and
    /// discrete-event experiments).
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    /// A fresh virtual clock starting at 0.
    pub fn virtual_at(start: Millis) -> Clock {
        Clock::Virtual(Arc::new(AtomicU64::new(start.0)))
    }

    /// Current time on this clock.
    pub fn now(&self) -> Millis {
        match self {
            Clock::System => {
                let ms = SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0);
                Millis(ms)
            }
            Clock::Virtual(v) => Millis(v.load(Ordering::SeqCst)),
        }
    }

    /// Advance a virtual clock by `ms`. No-op (and a logic error worth
    /// catching in tests) on the system clock.
    ///
    /// # Panics
    /// Panics when called on [`Clock::System`]: advancing wall time is
    /// always a bug.
    pub fn advance(&self, ms: u64) {
        match self {
            Clock::System => panic!("cannot advance the system clock"),
            Clock::Virtual(v) => {
                v.fetch_add(ms, Ordering::SeqCst);
            }
        }
    }

    /// Move a virtual clock forward to `to` if `to` is later than now.
    /// Used by discrete-event drivers which jump to the next event time.
    pub fn advance_to(&self, to: Millis) {
        match self {
            Clock::System => panic!("cannot advance the system clock"),
            Clock::Virtual(v) => {
                // fetch_max keeps the clock monotone even with racing drivers
                v.fetch_max(to.0, Ordering::SeqCst);
            }
        }
    }

    /// True for virtual clocks.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Clock::System => write!(f, "Clock::System"),
            Clock::Virtual(v) => write!(f, "Clock::Virtual({}ms)", v.load(Ordering::SeqCst)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances() {
        let c = Clock::virtual_at(Millis(100));
        assert_eq!(c.now(), Millis(100));
        c.advance(50);
        assert_eq!(c.now(), Millis(150));
        c.advance_to(Millis(300));
        assert_eq!(c.now(), Millis(300));
        // advance_to never goes backwards
        c.advance_to(Millis(10));
        assert_eq!(c.now(), Millis(300));
    }

    #[test]
    fn clones_share_time() {
        let c = Clock::virtual_at(Millis(0));
        let c2 = c.clone();
        c.advance(7);
        assert_eq!(c2.now(), Millis(7));
    }

    #[test]
    fn system_clock_monotonic_enough() {
        let c = Clock::System;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.0 > 1_000_000_000_000); // after 2001, sanity
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn system_clock_cannot_advance() {
        Clock::System.advance(1);
    }

    #[test]
    fn millis_arithmetic() {
        assert_eq!(Millis(10).since(Millis(3)), 7);
        assert_eq!(Millis(3).since(Millis(10)), 0);
        assert_eq!(Millis(3).plus(4), Millis(7));
        assert_eq!(format!("{}", Millis(12)), "12ms");
    }
}
