//! Naplet credentials (paper §2.1, §5).
//!
//! The paper certifies a naplet's immutable attributes (identifier and
//! codebase URL) with the creator's digital signature; servers use the
//! credential to pick naplet-specific security policies. The offline
//! dependency set has no cryptography, so Naplet-RS signs with a keyed
//! MAC built on a 128-bit FNV-style mixing function. This gives the
//! framework property the paper needs — *tamper evidence* of immutable
//! attributes under a shared secret — but it is **not** cryptographically
//! strong and must not be used outside simulations (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

use crate::error::{NapletError, Result};
use crate::id::NapletId;

/// A signing key shared between a principal and the servers that
/// verify its naplets. In the paper this is the creator's key pair; in
/// this simulation it is a symmetric secret distributed out of band.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigningKey {
    /// Name of the principal holding this key.
    pub principal: String,
    secret: [u8; 16],
}

impl SigningKey {
    /// Derive a key for `principal` from raw secret material.
    pub fn new(principal: &str, secret_material: &[u8]) -> SigningKey {
        let mut secret = [0u8; 16];
        let (a, b) = mac128(secret_material, principal.as_bytes());
        secret[..8].copy_from_slice(&a.to_le_bytes());
        secret[8..].copy_from_slice(&b.to_le_bytes());
        SigningKey {
            principal: principal.to_string(),
            secret,
        }
    }

    fn sign_bytes(&self, data: &[u8]) -> [u8; 16] {
        let (a, b) = mac128(&self.secret, data);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        out
    }
}

/// 128-bit keyed mixing function (two FNV-1a-like lanes with distinct
/// offsets, keyed by absorbing the key before and after the message —
/// a sandwich MAC over a non-cryptographic hash).
fn mac128(key: &[u8], msg: &[u8]) -> (u64, u64) {
    const PRIME_A: u64 = 0x0000_0100_0000_01B3;
    const PRIME_B: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x84222325_cbf29ce4;
    let absorb = |bytes: &[u8], a: &mut u64, b: &mut u64| {
        for &byte in bytes {
            *a = (*a ^ u64::from(byte)).wrapping_mul(PRIME_A);
            *b = (*b).rotate_left(13) ^ u64::from(byte).wrapping_mul(PRIME_B);
            *b = b.wrapping_add(*a);
        }
    };
    absorb(key, &mut a, &mut b);
    absorb(msg, &mut a, &mut b);
    absorb(key, &mut a, &mut b);
    // final avalanche
    a ^= a >> 33;
    a = a.wrapping_mul(PRIME_B);
    a ^= a >> 29;
    b ^= b >> 31;
    b = b.wrapping_mul(PRIME_A);
    b ^= b >> 27;
    (a, b)
}

/// The credential carried by every naplet: its immutable attributes
/// plus attribute claims and the creator's signature over all of them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credential {
    /// Principal that signed this credential (the naplet creator).
    pub principal: String,
    /// The immutable naplet identifier being certified.
    pub naplet_id: NapletId,
    /// The immutable codebase locator being certified.
    pub codebase: String,
    /// Free-form attribute claims ("role=net-mgmt", "trust=campus")
    /// that security policies match on (paper §5.1). Sorted for
    /// deterministic signing.
    pub attributes: Vec<(String, String)>,
    signature: [u8; 16],
}

impl Credential {
    /// Sign the immutable attributes of a naplet.
    pub fn issue(
        key: &SigningKey,
        naplet_id: NapletId,
        codebase: &str,
        mut attributes: Vec<(String, String)>,
    ) -> Credential {
        attributes.sort();
        attributes.dedup();
        let payload = Self::payload(&key.principal, &naplet_id, codebase, &attributes);
        Credential {
            principal: key.principal.clone(),
            naplet_id,
            codebase: codebase.to_string(),
            attributes,
            signature: key.sign_bytes(&payload),
        }
    }

    /// Verify this credential against the principal's key. Fails when
    /// any certified field was altered after issuance.
    pub fn verify(&self, key: &SigningKey) -> Result<()> {
        if key.principal != self.principal {
            return Err(NapletError::SecurityDenied {
                permission: "VERIFY".into(),
                subject: format!(
                    "key for `{}` cannot verify `{}`",
                    key.principal, self.principal
                ),
            });
        }
        let payload = Self::payload(
            &self.principal,
            &self.naplet_id,
            &self.codebase,
            &self.attributes,
        );
        if key.sign_bytes(&payload) == self.signature {
            Ok(())
        } else {
            Err(NapletError::SecurityDenied {
                permission: "VERIFY".into(),
                subject: format!("credential for {} failed verification", self.naplet_id),
            })
        }
    }

    /// Value of an attribute claim, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn payload(
        principal: &str,
        id: &NapletId,
        codebase: &str,
        attributes: &[(String, String)],
    ) -> Vec<u8> {
        let mut p = Vec::with_capacity(128);
        for part in [principal, &id.to_string(), codebase] {
            p.extend_from_slice(&(part.len() as u64).to_le_bytes());
            p.extend_from_slice(part.as_bytes());
        }
        for (k, v) in attributes {
            p.extend_from_slice(&(k.len() as u64).to_le_bytes());
            p.extend_from_slice(k.as_bytes());
            p.extend_from_slice(&(v.len() as u64).to_le_bytes());
            p.extend_from_slice(v.as_bytes());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Millis;

    fn key() -> SigningKey {
        SigningKey::new("czxu", b"campus-secret")
    }

    fn id() -> NapletId {
        NapletId::new("czxu", "ece.eng.wayne.edu", Millis(42)).unwrap()
    }

    #[test]
    fn issue_and_verify() {
        let cred = Credential::issue(
            &key(),
            id(),
            "naplet://codebase/netmgmt.jar",
            vec![("role".into(), "net-mgmt".into())],
        );
        cred.verify(&key()).unwrap();
        assert_eq!(cred.attribute("role"), Some("net-mgmt"));
        assert_eq!(cred.attribute("missing"), None);
    }

    #[test]
    fn tampered_id_detected() {
        let mut cred = Credential::issue(&key(), id(), "cb", vec![]);
        cred.naplet_id = id().clone_child(1);
        assert!(cred.verify(&key()).is_err());
    }

    #[test]
    fn tampered_codebase_detected() {
        let mut cred = Credential::issue(&key(), id(), "cb", vec![]);
        cred.codebase = "evil".into();
        assert!(cred.verify(&key()).is_err());
    }

    #[test]
    fn tampered_attribute_detected() {
        let mut cred = Credential::issue(&key(), id(), "cb", vec![("trust".into(), "low".into())]);
        cred.attributes[0].1 = "high".into();
        assert!(cred.verify(&key()).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let cred = Credential::issue(&key(), id(), "cb", vec![]);
        let other = SigningKey::new("czxu", b"other-secret");
        assert!(cred.verify(&other).is_err());
        let other_principal = SigningKey::new("mallory", b"campus-secret");
        assert!(cred.verify(&other_principal).is_err());
    }

    #[test]
    fn attribute_order_does_not_matter() {
        let a = Credential::issue(
            &key(),
            id(),
            "cb",
            vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        );
        let b = Credential::issue(
            &key(),
            id(),
            "cb",
            vec![("b".into(), "2".into()), ("a".into(), "1".into())],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip_preserves_validity() {
        let cred = Credential::issue(&key(), id(), "cb", vec![("x".into(), "y".into())]);
        let bytes = crate::codec::to_bytes(&cred).unwrap();
        let back: Credential = crate::codec::from_bytes(&bytes).unwrap();
        back.verify(&key()).unwrap();
    }

    #[test]
    fn mac_differs_across_keys_and_messages() {
        let k1 = SigningKey::new("p", b"k1");
        let k2 = SigningKey::new("p", b"k2");
        assert_ne!(k1.sign_bytes(b"m"), k2.sign_bytes(b"m"));
        assert_ne!(k1.sign_bytes(b"m1"), k1.sign_bytes(b"m2"));
    }
}
