//! Property-based tests over naplet-core invariants.

use proptest::collection::{btree_map, vec};
use proptest::option;
use proptest::prelude::*;

use naplet_core::clock::Millis;
use naplet_core::codec;
use naplet_core::itinerary::{ActionSpec, Guard, GuardEnv, Itinerary, Pattern, Step, Visit};
use naplet_core::navlog::NavigationLog;
use naplet_core::state::NapletState;
use naplet_core::value::Value;
use naplet_core::NapletId;

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,12}"
}

fn naplet_id() -> impl Strategy<Value = NapletId> {
    (ident(), ident(), any::<u64>(), vec(any::<u32>(), 0..5)).prop_map(
        |(user, home, ts, heritage)| {
            let mut id = NapletId::new(&user, &home, Millis(ts)).unwrap();
            for h in heritage {
                id = id.clone_child(h);
            }
            id
        },
    )
}

fn value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // avoid NaN: Value uses PartialEq in tests
        (-1e12f64..1e12).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..6).prop_map(Value::List),
            btree_map("[a-z]{1,6}", inner, 0..6).prop_map(Value::Map),
        ]
    })
    .boxed()
}

fn pattern(depth: u32) -> BoxedStrategy<Pattern> {
    let visit = (ident(), option::of(Just(ActionSpec::ReportHome))).prop_map(|(h, a)| {
        let mut v = Visit::to(h);
        v.action = a;
        Pattern::Singleton(v)
    });
    visit
        .prop_recursive(depth, 24, 4, |inner| {
            prop_oneof![
                vec(inner.clone(), 1..4).prop_map(Pattern::Seq),
                vec(inner.clone(), 1..4).prop_map(Pattern::Alt),
                vec(inner, 1..4).prop_map(Pattern::par),
            ]
        })
        .boxed()
}

// ---------------------------------------------------------------------------
// NapletId laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn id_display_parse_round_trip(id in naplet_id()) {
        let text = id.to_string();
        let parsed: NapletId = text.parse().unwrap();
        prop_assert_eq!(parsed, id);
    }

    #[test]
    fn id_clone_child_is_proper_descendant(id in naplet_id(), k in any::<u32>()) {
        let child = id.clone_child(k);
        prop_assert!(id.is_ancestor_of(&child));
        prop_assert!(!child.is_ancestor_of(&id));
        prop_assert_eq!(child.parent().unwrap(), id.clone());
        prop_assert_eq!(child.generation(), id.generation() + 1);
        prop_assert!(id.same_family(&child));
        prop_assert_eq!(child.original(), id.original());
    }

    #[test]
    fn id_ancestry_is_transitive(id in naplet_id(), a in any::<u32>(), b in any::<u32>()) {
        let x = id.clone_child(a);
        let y = x.clone_child(b);
        prop_assert!(id.is_ancestor_of(&y));
    }

    #[test]
    fn id_codec_round_trip(id in naplet_id()) {
        let bytes = codec::to_bytes(&id).unwrap();
        let back: NapletId = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, id);
    }
}

// ---------------------------------------------------------------------------
// Value / codec laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn value_codec_round_trip(v in value(3)) {
        let bytes = codec::to_bytes(&v).unwrap();
        let back: Value = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn value_deep_size_positive_and_additive(v in value(2)) {
        let single = v.deep_size();
        prop_assert!(single >= 16);
        let list = Value::List(vec![v.clone(), v]);
        prop_assert!(list.deep_size() >= 2 * single);
    }

    #[test]
    fn encoded_size_equals_len(v in value(2)) {
        let bytes = codec::to_bytes(&v).unwrap();
        prop_assert_eq!(codec::encoded_size(&v).unwrap(), bytes.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Itinerary laws
// ---------------------------------------------------------------------------

/// Fully unfold a cursor (including forks), collecting every visited
/// host across all agents.
fn unfold_all(mut cursor: naplet_core::Cursor, state: &NapletState) -> Vec<String> {
    let mut visited = Vec::new();
    let mut hops = 0usize;
    let mut pending = Vec::new();
    loop {
        let step = cursor.next(&GuardEnv {
            state,
            hops,
            unreachable: &[],
        });
        match step {
            Step::Visit { host, .. } => {
                visited.push(host);
                hops += 1;
            }
            Step::Fork { clones } => pending.extend(clones),
            Step::Action(_) => {}
            Step::Done => match pending.pop() {
                Some(next) => {
                    cursor = next;
                    hops = 0;
                }
                None => return visited,
            },
        }
    }
}

proptest! {
    #[test]
    fn unguarded_traversal_visits_expected_count(p in pattern(3)) {
        prop_assume!(p.validate().is_ok());
        let it = Itinerary::new(p.clone()).unwrap();
        let state = NapletState::new();
        let visited = unfold_all(it.start(), &state);
        // With no guards, total visits across all agents equals the
        // analytic count with first-alternative choice.
        prop_assert_eq!(visited.len(), p.total_visits_first_alt());
        // And every visited host is mentioned by the pattern.
        let hosts = p.hosts();
        for h in &visited {
            prop_assert!(hosts.contains(h));
        }
    }

    #[test]
    fn cursor_codec_round_trip_mid_journey(p in pattern(3), steps in 0usize..4) {
        prop_assume!(p.validate().is_ok());
        let it = Itinerary::new(p).unwrap();
        let state = NapletState::new();
        let mut cursor = it.start();
        let mut hops = 0usize;
        for _ in 0..steps {
            match cursor.next(&GuardEnv { state: &state, hops, unreachable: &[] }) {
                Step::Visit { .. } => hops += 1,
                Step::Done => break,
                _ => {}
            }
        }
        let bytes = codec::to_bytes(&cursor).unwrap();
        let back: naplet_core::Cursor = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, cursor);
    }

    #[test]
    fn never_guard_prunes_everything(hosts in vec(ident(), 1..6)) {
        let parts: Vec<Pattern> = hosts
            .iter()
            .map(|h| Pattern::visit(Visit::to(h.clone()).when(Guard::Never)))
            .collect();
        let it = Itinerary::new(Pattern::Seq(parts)).unwrap();
        let state = NapletState::new();
        prop_assert!(unfold_all(it.start(), &state).is_empty());
    }

    #[test]
    fn agents_required_matches_forks(p in pattern(3)) {
        prop_assume!(p.validate().is_ok());
        let it = Itinerary::new(p.clone()).unwrap();
        let state = NapletState::new();
        // count agents = 1 (original) + forks spawned during full unfold
        let mut agents = 1usize;
        let mut stack = vec![it.start()];
        let mut hops = 0usize;
        while let Some(mut cursor) = stack.pop() {
            loop {
                match cursor.next(&GuardEnv { state: &state, hops, unreachable: &[] }) {
                    Step::Fork { clones } => {
                        agents += clones.len();
                        stack.extend(clones);
                    }
                    Step::Visit { .. } => hops += 1,
                    Step::Action(_) => {}
                    Step::Done => break,
                }
            }
            hops = 0;
        }
        // Alt chooses the first alternative at runtime, while
        // agents_required() bounds by the max; the runtime count can
        // never exceed the static bound.
        prop_assert!(agents <= p.agents_required());
    }
}

// ---------------------------------------------------------------------------
// NavigationLog laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn navlog_times_are_consistent(dwells in vec((0u64..1000, 0u64..1000), 1..10)) {
        let mut log = NavigationLog::new();
        let mut t = 0u64;
        for (i, (dwell, transit)) in dwells.iter().enumerate() {
            log.record_arrival(format!("s{i}"), Millis(t));
            t += dwell;
            log.record_departure(Millis(t));
            t += transit;
        }
        let total: u64 = dwells.iter().map(|(d, _)| d).sum();
        let transit: u64 = dwells[..dwells.len() - 1].iter().map(|(_, tr)| tr).sum();
        prop_assert_eq!(log.total_dwell(), total);
        prop_assert_eq!(log.total_transit(), transit);
        prop_assert_eq!(log.journey_time(), total + transit);
        prop_assert_eq!(log.hops(), dwells.len());
    }
}

// ---------------------------------------------------------------------------
// State access-mode laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn private_entries_never_server_visible(
        key in "[a-z]{1,8}",
        v in value(1),
        host in ident(),
    ) {
        let mut s = NapletState::new();
        s.set(&key, v);
        prop_assert!(s.server_view(&host).get(&key).is_err());
        prop_assert!(s.server_view(&host).visible_keys().is_empty());
    }

    #[test]
    fn protected_entries_visible_only_to_listed(
        key in "[a-z]{1,8}",
        v in value(1),
        listed in vec(ident(), 1..4),
        other in ident(),
    ) {
        prop_assume!(!listed.contains(&other));
        let mut s = NapletState::new();
        s.set_protected(&key, v, listed.clone());
        for h in &listed {
            prop_assert!(s.server_view(h).get(&key).is_ok());
        }
        prop_assert!(s.server_view(&other).get(&key).is_err());
    }
}

// ---------------------------------------------------------------------------
// Codec robustness: arbitrary bytes never panic the decoder
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..256)) {
        // decoding garbage must return Err or a value, never panic
        let _ = codec::from_bytes::<Value>(&bytes);
        let _ = codec::from_bytes::<NapletId>(&bytes);
        let _ = codec::from_bytes::<naplet_core::Naplet>(&bytes);
        let _ = codec::from_bytes::<naplet_core::Message>(&bytes);
        let _ = codec::from_bytes::<Vec<String>>(&bytes);
    }

    #[test]
    fn truncated_valid_encodings_error_cleanly(v in value(2), cut in any::<u16>()) {
        let bytes = codec::to_bytes(&v).unwrap();
        prop_assume!(!bytes.is_empty());
        let cut = (cut as usize) % bytes.len();
        // any strict prefix must fail (napcode values are not
        // self-delimiting prefixes of themselves)
        let result = codec::from_bytes::<Value>(&bytes[..cut]);
        if cut == 0 {
            // zero bytes can decode Value::Nil? no: Nil is variant tag 0,
            // which needs one byte — must fail
            prop_assert!(result.is_err());
        }
        // no panic is the main property; exact Err-ness at interior cuts
        // depends on varint boundaries
    }
}
